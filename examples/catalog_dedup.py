"""Catalog maintenance with similarity-aware relational operators.

A product catalog receives a feed of new items; before ingesting, the
pipeline must (1) drop feed items that duplicate existing catalog
entries, (2) de-duplicate the remainder of the feed against itself, and
(3) persist the updated index for the next run.  This is the
similarity-aware relational workflow the paper's conclusion points at
(intersection/difference over Hamming similarity), built from:

* ``hamming_intersect`` / ``hamming_difference`` — similarity
  semi-/anti-join of feed against catalog,
* ``hamming_distinct`` — similarity DISTINCT within the feed,
* ``DynamicHAIndex.save`` / ``load`` — index persistence.

Run:  python examples/catalog_dedup.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import CodeSet, DynamicHAIndex
from repro.core.relational import (
    hamming_difference,
    hamming_distinct,
    hamming_intersect,
)
from repro.hashing import HyperplaneHash

CATALOG_SIZE = 800
FEED_SIZE = 300
FEATURES = 120
SIGNATURE_BITS = 48
THRESHOLD = 4


def make_catalog_and_feed(seed: int = 3):
    """A catalog plus a feed that partially overlaps it."""
    rng = np.random.default_rng(seed)
    catalog = rng.normal(size=(CATALOG_SIZE, FEATURES))
    # A third of the feed are light edits of catalog items; the rest new.
    reused = rng.choice(CATALOG_SIZE, size=FEED_SIZE // 3, replace=False)
    edited = catalog[reused] + rng.normal(size=(len(reused), FEATURES)) * 0.02
    fresh = rng.normal(size=(FEED_SIZE - len(reused), FEATURES))
    feed = np.vstack([edited, fresh])
    return catalog, feed, len(reused)


def main() -> None:
    catalog_vectors, feed_vectors, planted_overlap = make_catalog_and_feed()
    print(f"catalog: {len(catalog_vectors)} items, "
          f"feed: {len(feed_vectors)} items "
          f"({planted_overlap} known near-duplicates of the catalog)")

    hasher = HyperplaneHash(SIGNATURE_BITS, seed=8).fit(catalog_vectors)
    catalog = CodeSet(
        hasher.encode(catalog_vectors).codes, SIGNATURE_BITS
    )
    feed = CodeSet(
        hasher.encode(feed_vectors).codes, SIGNATURE_BITS,
        ids=range(1000, 1000 + len(feed_vectors)),
    )

    # 1. Which feed items already exist (similarity intersection)?
    existing = hamming_intersect(feed, catalog, THRESHOLD)
    print(f"\nfeed items matching the catalog (h<={THRESHOLD}): "
          f"{len(existing)}")

    # 2. Which are genuinely new (similarity difference)?
    new_ids = hamming_difference(feed, catalog, THRESHOLD)
    assert sorted(existing + new_ids) == list(feed.ids)
    print(f"genuinely new feed items: {len(new_ids)}")

    # 3. De-duplicate the new items against each other.
    new_codes = feed.subset(
        [list(feed.ids).index(i) for i in new_ids]
    )
    canonical = hamming_distinct(new_codes, THRESHOLD)
    print(f"after similarity-DISTINCT within the feed: "
          f"{len(canonical)} items to ingest")

    # 4. Ingest and persist the updated catalog index.
    index = DynamicHAIndex.build(catalog)
    for item_id in canonical:
        code = feed[list(feed.ids).index(item_id)]
        index.insert(code, item_id)
    index.flush()
    with tempfile.TemporaryDirectory() as workdir:
        path = Path(workdir) / "catalog.hadx"
        index.save(path)
        reloaded = DynamicHAIndex.load(path)
        print(f"\npersisted index: {path.stat().st_size / 1024:.0f} KiB "
              f"on disk, {len(reloaded)} items after reload")
        assert len(reloaded) == len(catalog) + len(canonical)

    detected = len(existing)
    print(f"\nnear-duplicate screening caught {detected} items "
          f"(>= {planted_overlap} planted ones expected)")


if __name__ == "__main__":
    main()
