"""Near-duplicate document detection (the Manku et al. use case).

"Hamming search is also widely used to detect duplicate web pages in
applications, e.g., web mirroring, plagiarism, and spam detection"
(Section 1).  Documents are shingled into term-frequency vectors, a
simhash (random-hyperplane) signature is computed, and documents whose
signatures differ in at most h bits are flagged as near-duplicates.

This example synthesizes a corpus with planted near-duplicates
(mutated copies), finds them with a Hamming self-join over the
Dynamic HA-Index, and reports detection quality.

Run:  python examples/document_dedup.py
"""

from __future__ import annotations

import random

import numpy as np

from repro.core import CodeSet, DynamicHAIndex, self_join
from repro.hashing import HyperplaneHash

VOCABULARY = 400
BASE_DOCUMENTS = 600
DUPLICATES = 120
SIGNATURE_BITS = 64
THRESHOLD = 6


def make_corpus(seed: int = 5):
    """Term-frequency vectors plus planted near-duplicate pairs."""
    rng = np.random.default_rng(seed)
    stdlib_rng = random.Random(seed)
    # Base documents: sparse topic-ish term mixtures.
    documents = rng.gamma(0.3, 1.0, size=(BASE_DOCUMENTS, VOCABULARY))
    documents[documents < 1.0] = 0.0
    planted = []
    copies = []
    for copy_index in range(DUPLICATES):
        original = stdlib_rng.randrange(BASE_DOCUMENTS)
        mutated = documents[original].copy()
        # Light edit: change a handful of term frequencies.
        for _ in range(8):
            term = stdlib_rng.randrange(VOCABULARY)
            mutated[term] = max(0.0, mutated[term] + stdlib_rng.uniform(-1, 1))
        copies.append(mutated)
        planted.append((original, BASE_DOCUMENTS + copy_index))
    corpus = np.vstack([documents, np.vstack(copies)])
    return corpus, set(planted)


def main() -> None:
    corpus, planted = make_corpus()
    print(f"corpus: {corpus.shape[0]} documents "
          f"({DUPLICATES} planted near-duplicates)")

    # Simhash signatures: sign of random projections of the tf vectors.
    hasher = HyperplaneHash(SIGNATURE_BITS, seed=9).fit(corpus)
    signatures = hasher.encode(corpus)
    codes = CodeSet(signatures.codes, SIGNATURE_BITS)

    # Index once, self-join within the Hamming threshold.
    index = DynamicHAIndex.build(codes)
    print(f"indexed {len(index)} signatures "
          f"({index.num_distinct_codes} distinct)")

    flagged = set(self_join(codes, THRESHOLD))
    print(f"h-join with h={THRESHOLD} flagged {len(flagged)} pairs")

    found = planted & flagged
    precision = len(found) / len(flagged) if flagged else 1.0
    recall = len(found) / len(planted)
    print(f"planted-pair recall:    {recall:.2%}")
    print(f"flagged-pair precision: {precision:.2%} "
          "(non-planted pairs may still be genuinely similar)")

    # Show a few detections with their signature distances.
    print("\nsample detections:")
    for original, copy in sorted(found)[:5]:
        distance = (codes[original] ^ codes[copy]).bit_count()
        print(f"  doc {original} ~ doc {copy}  "
              f"(signature distance {distance})")


if __name__ == "__main__":
    main()
