"""Online serving: live queries against an index under write churn.

Builds a Dynamic HA-Index over a synthetic catalog, starts the
query service, then runs a writer thread streaming H-Inserts (new
catalog items arriving) while the main thread issues a skewed query
stream — the online scenario the paper's Algorithm 2 maintenance is
built for.  Ends by printing the ``ServiceStats`` block: batching,
cache hit rate, latency percentiles, epoch churn.

Run:  python examples/online_search.py
"""

from __future__ import annotations

import random
import threading

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.synthetic import random_codes
from repro.data.workloads import zipf_queries
from repro.service import HammingQueryService

BITS = 32
CATALOG_SIZE = 5_000
STREAMED_INSERTS = 200
QUERIES = 1_000
THRESHOLD = 3


def main() -> None:
    catalog = CodeSet(random_codes(CATALOG_SIZE, BITS, seed=7), BITS)
    index = DynamicHAIndex.build(catalog, rebuild_buffer=64)
    print(f"serving a {len(index)}-item catalog of {BITS}-bit codes")

    service = HammingQueryService(
        index, workers=4, max_batch=32,
        queue_limit=QUERIES + STREAMED_INSERTS, cache_capacity=2048,
    )

    def stream_new_items() -> None:
        rng = random.Random(42)
        for arrival in range(STREAMED_INSERTS):
            epoch = service.insert(
                rng.getrandbits(BITS), CATALOG_SIZE + arrival
            )
            if (arrival + 1) % 50 == 0:
                print(f"  writer: {arrival + 1} items streamed in "
                      f"(epoch {epoch})")

    writer = threading.Thread(target=stream_new_items, name="writer")

    queries = zipf_queries(catalog, QUERIES, seed=3)
    matches = 0
    with service:
        writer.start()
        for query in queries:
            result = service.select(query, THRESHOLD)
            matches += len(result.value)
        writer.join()
        final = service.select(queries[0], THRESHOLD)
        print(f"\n{QUERIES} zipf queries answered "
              f"({matches} total matches); final answer served at "
              f"epoch {final.epoch} of {service.epoch}")
        stats = service.stats()
    print()
    print(stats.render())

    # The served answers stay exact under churn: cross-check one query
    # against a consistent snapshot of the live index.
    snapshot = service.snapshot_index()
    assert sorted(final.value) == sorted(
        snapshot.search(queries[0], THRESHOLD)
    ), "served result must match the index at its epoch"
    print("\nsnapshot cross-check OK: served answers are exact")


if __name__ == "__main__":
    main()
