"""Distributed Hamming-join on the MapReduce runtime (Figure 5).

Runs the paper's full three-phase pipeline — sampling + hash learning +
pivot selection, global HA-Index construction, and the join — on a
simulated 16-worker cluster, for both join options, and compares them
against the PMH (broadcast MultiHashTable) comparator on shuffle volume
and modelled cluster time.

Run:  python examples/distributed_join.py
"""

from __future__ import annotations

from repro.data import flickr_like
from repro.distributed import (
    mapreduce_hamming_join,
    partition_balance,
    pmh_hamming_join,
)
from repro.mapreduce import Cluster, MapReduceRuntime
from repro.metrics import format_bytes

DATASET_SIZE = 1_500
THRESHOLD = 3
CODE_BITS = 32
WORKERS = 16


def describe(name: str, shuffle_bytes: int, seconds: float, pairs: int):
    print(f"  {name:14s} shuffle {format_bytes(shuffle_bytes):>10s}   "
          f"time {seconds:6.2f} s   pairs {pairs}")


def main() -> None:
    dataset = flickr_like(DATASET_SIZE, seed=17)
    records = list(zip(range(len(dataset)), dataset.vectors))
    print(f"self-joining {len(records)} tuples "
          f"({dataset.dimensions}-d) on {WORKERS} simulated workers, "
          f"h={THRESHOLD}\n")

    runtime = MapReduceRuntime(Cluster(WORKERS))

    option_a = mapreduce_hamming_join(
        runtime, records, records, THRESHOLD, num_bits=CODE_BITS,
        option="A", exclude_self_pairs=True,
    )
    option_b = mapreduce_hamming_join(
        runtime, records, records, THRESHOLD, num_bits=CODE_BITS,
        option="B", exclude_self_pairs=True,
    )
    pmh = pmh_hamming_join(
        runtime, records, records, THRESHOLD, num_bits=CODE_BITS,
        num_tables=10, exclude_self_pairs=True,
    )

    print("results:")
    describe("MRHA-Index-A", option_a.shuffle_bytes,
             option_a.total_seconds, len(option_a.pairs))
    describe("MRHA-Index-B", option_b.shuffle_bytes,
             option_b.total_seconds, len(option_b.pairs))
    describe("PMH-10", pmh.shuffle_bytes, pmh.total_seconds,
             len(pmh.pairs))

    assert option_a.pairs == option_b.pairs == pmh.pairs

    print("\nMRHA-Index-A phase breakdown:")
    print(f"  preprocessing (sample+hash+pivots): "
          f"{option_a.preprocess_seconds:.3f} s")
    print(f"  global index build:                 "
          f"{option_a.build_seconds:.3f} s")
    print(f"  join:                               "
          f"{option_a.join_seconds:.3f} s")
    print(f"  partition sizes: {option_a.partition_sizes} "
          f"(balance {partition_balance(option_a.partition_sizes):.2f})")

    savings = pmh.shuffle_bytes / max(option_b.shuffle_bytes, 1)
    print(f"\nOption B ships {savings:.1f}x less data than PMH-10 — the "
          "paper's Figure 7 effect.")


if __name__ == "__main__":
    main()
