"""Content-based image search: the paper's motivating application.

Search engines "use Hamming-distance search in their image content-based
search engines" (Section 1): each image is a high-dimensional feature
vector, a learned similarity hash maps it to a binary code, and a
Hamming range query retrieves visually similar images.

This example builds that pipeline on the NUS-WIDE-like generator
(225-d colour-moment-style features): learn Spectral Hashing on a
sample, encode the collection, index with the Dynamic HA-Index, then
answer similarity queries and compare against the exact vector-space
answer to show what the approximation trades away.

Run:  python examples/image_search.py
"""

from __future__ import annotations

import numpy as np

from repro.core import DynamicHAIndex, knn_select
from repro.data import nuswide_like
from repro.hashing import SpectralHash

COLLECTION_SIZE = 5_000
CODE_BITS = 32
NEIGHBORS = 10


def main() -> None:
    # 1. "Images" = feature vectors from the NUS-WIDE-like generator.
    collection = nuswide_like(COLLECTION_SIZE, seed=21)
    print(f"collection: {len(collection)} images, "
          f"{collection.dimensions}-d features")

    # 2. Learn the similarity hash on a 10% sample, as the paper's
    #    preprocessing phase does, then encode everything.
    sample = collection.sample(0.1, seed=1)
    hasher = SpectralHash(CODE_BITS).fit(sample.vectors)
    codes = collection.encode(hasher)
    print(f"encoded to {CODE_BITS}-bit spectral codes "
          f"({len(set(codes.codes))} distinct)")

    # 3. Index the codes.
    index = DynamicHAIndex.build(codes)
    stats = index.stats()
    print(f"DHA-Index: {stats.nodes} nodes, "
          f"{stats.memory_bytes / 1024:.0f} KiB modelled")

    # 4. Query: find images similar to image #42.
    probe_id = 42
    probe_code = codes[probe_id]
    for threshold in (2, 4, 6):
        matches = index.search(probe_code, threshold)
        print(f"h-select with h={threshold}: {len(matches)} similar images")

    # 5. kNN flavour: the 10 nearest by Hamming distance.
    nearest = knn_select(probe_code, index, NEIGHBORS)
    print(f"\n{NEIGHBORS} nearest by code distance: "
          + ", ".join(f"#{i}(d={d})" for i, d in nearest))

    # 6. How good is the approximation?  Compare against the true
    #    nearest neighbours in feature space.
    probe_vector = collection.vectors[probe_id]
    true_distances = np.linalg.norm(
        collection.vectors - probe_vector, axis=1
    )
    true_nearest = set(np.argsort(true_distances)[:NEIGHBORS].tolist())
    found = {i for i, _ in nearest}
    overlap = len(true_nearest & found)
    print(f"overlap with exact feature-space {NEIGHBORS}-NN: "
          f"{overlap}/{NEIGHBORS}")

    # The returned images are still *near* even when not the exact kNN:
    returned_mean = float(
        np.mean([true_distances[i] for i in found if i != probe_id])
    )
    background_mean = float(np.mean(true_distances))
    print(f"mean feature distance of results {returned_mean:.2f} vs. "
          f"collection average {background_mean:.2f}")


if __name__ == "__main__":
    main()
