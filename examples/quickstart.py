"""Quickstart: the paper's running example, end to end.

Builds the Dynamic HA-Index over Table 2a of the paper, runs the
Example 1 Hamming-select and Hamming-join, and shows maintenance
(insert/delete) plus kNN-select — the whole centralized API in one file.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import (
    CodeSet,
    DynamicHAIndex,
    hamming_join,
    hamming_select,
    knn_select,
)
from repro.core.bitvector import code_to_string

# Table 2a of the paper: dataset S, tuples t0..t7.
TABLE_S = [
    "001 001 010",  # t0
    "001 011 101",  # t1
    "011 001 100",  # t2
    "101 001 010",  # t3
    "101 110 110",  # t4
    "101 011 101",  # t5
    "101 101 010",  # t6
    "111 001 100",  # t7
]

# Table 2b: dataset R, tuples r0..r2.
TABLE_R = ["101 100 010", "101 010 010", "110 000 010"]


def main() -> None:
    table_s = CodeSet.from_strings(TABLE_S)
    table_r = CodeSet.from_strings(TABLE_R)

    # --- Hamming-select (Definition 1, Example 1) -----------------------
    query = table_r[0]  # tq = "101100010"
    threshold = 3
    matches = sorted(hamming_select(query, table_s, threshold))
    print(f"h-select(tq={code_to_string(query, 9)}, S) with h={threshold}:")
    print(f"  matching tuples: {['t%d' % i for i in matches]}")
    assert matches == [0, 3, 4, 6], "paper's Example 1 output"

    # --- The same query through a Dynamic HA-Index ----------------------
    index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
    print(f"\nDHA-Index over S: {len(index)} tuples, "
          f"levels {index.level_sizes()}")
    assert sorted(index.search(query, threshold)) == matches

    # --- Maintenance: delete t3, re-query, insert it back ---------------
    index.delete(table_s[3], 3)
    without_t3 = sorted(index.search(query, threshold))
    print(f"after deleting t3: {['t%d' % i for i in without_t3]}")
    index.insert(table_s[3], 3)
    assert sorted(index.search(query, threshold)) == matches

    # --- Hamming-join (Definition 2, Example 1) --------------------------
    pairs = sorted(hamming_join(table_r, table_s, threshold))
    print(f"\nh-join(R, S) with h={threshold}:")
    for r_id, s_id in pairs:
        print(f"  (r{r_id}, t{s_id})")
    assert (2, 3) in pairs  # the paper's (r2, t3)

    # --- kNN-select over the index ---------------------------------------
    nearest = knn_select(query, index, k=3)
    print(f"\n3 nearest neighbours of tq: "
          + ", ".join(f"t{i} (distance {d})" for i, d in nearest))


if __name__ == "__main__":
    main()
