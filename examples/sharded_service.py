"""Scatter-gather serving: Gray-range shards with partition pruning.

Builds a clustered catalog (the layout Gray-order partitioning
thrives on), splits it into four shards by the paper's §5.1 equi-depth
Gray-rank pivots, and serves a query stream two ways — with the
scatter-gather planner pruning shards whose Gray range provably cannot
intersect each query's Hamming ball, and with pruning disabled
(broadcast).  Both must return identical answers; the difference is
how many shards each query *visits*, which in a distributed deployment
is the number of network RPCs.  Ends with the ``ShardStats`` block and
a cross-check against a single monolithic index.

Run:  python examples/sharded_service.py
"""

from __future__ import annotations

import random

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.synthetic import random_codes
from repro.data.workloads import cluster_codes
from repro.service import HammingQueryService, ShardedQueryService

BITS = 32
CATALOG_SIZE = 4_000
CLUSTERS = 4
SHARDS = 4
QUERIES = 300
THRESHOLD = 3


def make_queries(catalog: CodeSet) -> list[int]:
    rng = random.Random(5)
    picks = [catalog[rng.randrange(len(catalog))] for _ in range(QUERIES)]
    # Half exact members, half near-misses one bit-flip away.
    return [
        code ^ (1 << rng.randrange(BITS)) if flip % 2 else code
        for flip, code in enumerate(picks)
    ]


def sweep(service: ShardedQueryService, queries: list[int]) -> list:
    tickets = [
        service.submit("select", query, THRESHOLD) for query in queries
    ]
    return [tuple(ticket.result().value) for ticket in tickets]


def main() -> None:
    base = CodeSet(random_codes(CATALOG_SIZE, BITS, seed=9), BITS)
    catalog = cluster_codes(base, CLUSTERS)
    queries = make_queries(catalog)
    print(
        f"catalog: {len(catalog)} codes in {CLUSTERS} clusters, "
        f"{SHARDS} Gray-range shards"
    )

    answers = {}
    for label, pruning in (("pruned", True), ("broadcast", False)):
        service = ShardedQueryService(
            catalog, num_shards=SHARDS, pruning=pruning,
            workers=2, max_batch=32, queue_limit=QUERIES + 8,
        )
        with service:
            answers[label] = sweep(service, queries)
            stats = service.shard_stats()
        print(
            f"  {label:9s}: {stats.mean_contacted:.2f} shards/query, "
            f"{stats.pruning_ratio * 100:.0f}% visits avoided"
        )
        if pruning:
            print()
            print(stats.render())
            print()

    assert answers["pruned"] == answers["broadcast"], (
        "pruning must never change results"
    )

    # Cross-check the scatter-gather against one monolithic index.
    single = HammingQueryService(
        DynamicHAIndex.build(catalog), workers=1, cache_capacity=0
    )
    with single:
        for query, got in zip(queries, answers["pruned"]):
            expected = sorted(single.select(query, THRESHOLD).value)
            assert list(got) == expected
    print(
        f"{QUERIES} queries: sharded answers are byte-identical to the "
        "single index, pruned or broadcast"
    )


if __name__ == "__main__":
    main()
