"""Tests for the distance-computation accounting (`last_search_ops`).

The paper's central claim is structural — the HA-Index "avoids
unnecessary Hamming-distance computations" — so every index reports how
many XOR/popcount evaluations its last search performed.  These tests
pin the semantics of that counter and the claim itself.
"""

from __future__ import annotations


from repro.baselines.hengine import HEngineIndex
from repro.baselines.multi_hash import MultiHashTableIndex
from repro.baselines.nested_loops import NestedLoopsIndex
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.radix_tree import RadixTreeIndex
from repro.core.select import INDEX_FAMILIES
from repro.core.static_ha import StaticHAIndex


class TestCounterSemantics:
    def test_nested_loops_counts_full_scan(self, random_codeset):
        index = NestedLoopsIndex.build(random_codeset)
        index.search(0, 3)
        assert index.last_search_ops == len(random_codeset)

    def test_multihash_counts_verifications_only(self, random_codeset):
        index = MultiHashTableIndex.build(random_codeset, num_tables=4)
        index.search(random_codeset[0], 3)
        assert 0 < index.last_search_ops < len(random_codeset)

    def test_hengine_counts_verifications(self, clustered_codeset):
        index = HEngineIndex.build(clustered_codeset)
        index.search(clustered_codeset[0], 3)
        assert 0 < index.last_search_ops <= len(clustered_codeset)

    def test_radix_counts_edges_examined(self, table_s):
        index = RadixTreeIndex.build(table_s)
        index.search(table_s[0], 0)
        # At threshold 0 only the matching path plus sibling tests.
        assert 0 < index.last_search_ops <= index.stats().edges

    def test_static_counts_memo_misses(self, table_s):
        index = StaticHAIndex.build(table_s, segment_bits=3)
        index.search(table_s[0], table_s.length)
        # At full threshold everything qualifies, but sharing caps the
        # XOR count at the number of distinct (layer, value) nodes.
        distinct_segments = index.stats().code_bits // 3
        assert index.last_search_ops == distinct_segments

    def test_dha_counts_node_tests(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset)
        index.search(clustered_codeset[0], 3)
        total_nodes = index.stats().nodes
        assert 0 < index.last_search_ops <= total_nodes

    def test_counter_resets_each_query(self, random_codeset):
        index = DynamicHAIndex.build(random_codeset)
        index.search(random_codeset[0], 6)
        wide = index.last_search_ops
        index.search(random_codeset[0], 0)
        narrow = index.last_search_ops
        assert narrow < wide


class TestSharingClaims:
    def test_every_index_beats_linear_scan_at_small_h(
        self, clustered_codeset
    ):
        """The whole point of indexing: fewer XORs than scanning."""
        queries = [clustered_codeset[i] for i in (0, 10, 20)]
        n = len(clustered_codeset)
        for name, builder in INDEX_FAMILIES.items():
            if name == "Nested-Loops":
                continue
            index = builder(clustered_codeset)
            for query in queries:
                index.search(query, 2)
                assert index.last_search_ops < n, name

    def test_static_sharing_beats_unshared_segments(
        self, clustered_codeset
    ):
        """Memoized distinct segments compute fewer XORs than the paths
        they cover (Figure 2's N6/N11 sharing)."""
        index = StaticHAIndex.build(clustered_codeset, segment_bits=8)
        index.search(clustered_codeset[3], 32)
        shared_ops = index.last_search_ops
        # Without sharing, every path recomputes all 4 segments.
        unshared_ops = index.stats().edges
        assert shared_ops < unshared_ops

    def test_dha_prunes_with_threshold(self, clustered_codeset):
        """Smaller thresholds prune more of the HA-Index (Prop. 1)."""
        index = DynamicHAIndex.build(clustered_codeset)
        ops = []
        for threshold in (0, 4, 8):
            index.search(clustered_codeset[7], threshold)
            ops.append(index.last_search_ops)
        assert ops == sorted(ops)
        assert ops[0] < ops[-1]

    def test_dha_full_qualification_short_circuits(self, clustered_codeset):
        """At huge thresholds whole subtrees qualify outright, so the
        search does *fewer* distance tests than at moderate ones."""
        index = DynamicHAIndex.build(clustered_codeset)
        index.search(clustered_codeset[7], 8)
        moderate_ops = index.last_search_ops
        index.search(clustered_codeset[7], 32)
        full_ops = index.last_search_ops
        assert full_ops < moderate_ops

    def test_dha_ops_sublinear_on_clustered_codes(self, clustered_codeset):
        """On duplicate-heavy data the DHA tests far fewer nodes than
        there are tuples."""
        index = DynamicHAIndex.build(clustered_codeset)
        index.search(clustered_codeset[0], 3)
        assert index.last_search_ops < len(clustered_codeset) / 2
