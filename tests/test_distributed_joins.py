"""Integration tests for the distributed joins: MRHA A/B, PMH, PGBJ."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.core.join import nested_loops_join
from repro.data.synthetic import nuswide_like
from repro.distributed.hamming_join import (
    mapreduce_hamming_join,
)
from repro.distributed.pgbj import pgbj_knn_join
from repro.distributed.pmh import pmh_hamming_join
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.metrics import exact_knn_join, knn_precision_recall


@pytest.fixture(scope="module")
def workload():
    dataset = nuswide_like(300, seed=8)
    records = list(zip(range(len(dataset)), dataset.vectors))
    return records


def _fresh_runtime(workers: int = 4) -> MapReduceRuntime:
    return MapReduceRuntime(Cluster(workers))


def _reference_pairs(runtime, report):
    """Recompute the join centrally with the pipeline's own hash."""
    hasher = runtime.cluster.cached("hamming.hash")
    return hasher


class TestMRHAJoin:
    def test_option_a_matches_centralized(self, workload):
        runtime = _fresh_runtime()
        report = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150,
        )
        hasher = runtime.cluster.cached("hamming.hash")
        vectors = np.asarray([v for _, v in workload])
        codes = hasher.encode(vectors)
        expected = sorted(nested_loops_join(codes, codes, 3))
        assert sorted(report.pairs) == expected

    def test_option_b_matches_option_a(self, workload):
        runtime = _fresh_runtime()
        a = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150,
        )
        b = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="B", sample_size=150,
        )
        assert sorted(a.pairs) == sorted(b.pairs)

    def test_option_b_mapreduce_id_recovery(self, workload):
        """Tiny in-memory limit forces the MapReduce hash-join path."""
        runtime = _fresh_runtime()
        a = mapreduce_hamming_join(
            runtime, workload, workload, threshold=2, num_bits=20,
            option="A", sample_size=150,
        )
        b = mapreduce_hamming_join(
            runtime, workload, workload, threshold=2, num_bits=20,
            option="B", sample_size=150, in_memory_limit=1,
        )
        assert sorted(a.pairs) == sorted(b.pairs)

    def test_option_b_broadcast_smaller(self, workload):
        runtime = _fresh_runtime()
        a = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150,
        )
        b = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="B", sample_size=150,
        )
        assert b.broadcast_bytes < a.broadcast_bytes

    def test_exclude_self_pairs(self, workload):
        runtime = _fresh_runtime()
        report = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150, exclude_self_pairs=True,
        )
        assert all(a < b for a, b in report.pairs)
        assert report.pairs == sorted(set(report.pairs))

    def test_rejects_unknown_option(self, workload):
        with pytest.raises(InvalidParameterError):
            mapreduce_hamming_join(
                _fresh_runtime(), workload, workload, threshold=1,
                option="C",
            )

    def test_report_phases_populated(self, workload):
        runtime = _fresh_runtime()
        report = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150,
        )
        assert report.learn_hash_seconds > 0
        assert report.build_seconds > 0
        assert report.join_seconds > 0
        assert report.total_seconds >= (
            report.preprocess_seconds + report.build_seconds
        )
        assert report.shuffle_bytes > 0
        assert sum(report.partition_sizes) == len(workload)

    def test_asymmetric_r_and_s(self):
        r_data = nuswide_like(120, seed=1)
        s_data = nuswide_like(250, seed=2)
        r_records = list(zip(range(len(r_data)), r_data.vectors))
        s_records = [
            (1000 + i, v) for i, v in enumerate(s_data.vectors)
        ]
        runtime = _fresh_runtime()
        report = mapreduce_hamming_join(
            runtime, r_records, s_records, threshold=3, num_bits=20,
            option="A", sample_size=150,
        )
        hasher = runtime.cluster.cached("hamming.hash")
        r_codes = hasher.encode(r_data.vectors)
        s_codes = hasher.encode(s_data.vectors).with_ids(
            [s_id for s_id, _ in s_records]
        )
        expected = sorted(nested_loops_join(r_codes, s_codes, 3))
        assert sorted(report.pairs) == expected


class TestPMH:
    def test_matches_mrha(self, workload):
        runtime = _fresh_runtime()
        mrha = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150, exclude_self_pairs=True, seed=3,
        )
        pmh = pmh_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            sample_size=150, exclude_self_pairs=True, seed=3,
        )
        assert pmh.pairs == mrha.pairs

    def test_shuffles_more_than_mrha(self, workload):
        """PMH ships the replicated multi-table structure (Figure 7)."""
        runtime = _fresh_runtime()
        mrha = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150, seed=3,
        )
        pmh = pmh_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            num_tables=10, sample_size=150, seed=3,
        )
        assert pmh.shuffle_bytes > mrha.shuffle_bytes

    def test_report_fields(self, workload):
        runtime = _fresh_runtime()
        report = pmh_hamming_join(
            runtime, workload, workload, threshold=2, num_bits=20,
            sample_size=150,
        )
        assert report.total_seconds > 0
        assert report.shuffle_bytes > 0


class TestPGBJ:
    def test_exact_on_clustered_data(self, workload):
        runtime = _fresh_runtime()
        report = pgbj_knn_join(
            runtime, workload, workload, k=5, sample_size=150,
            bound_slack=3.0,
        )
        truth = exact_knn_join(workload, workload, 5)
        precision, recall = knn_precision_recall(report.neighbors, truth)
        assert recall > 0.95
        assert precision > 0.95

    def test_shuffles_vectors_heavily(self, workload):
        """PGBJ shuffle carries the d-dim vectors: far above MRHA."""
        runtime = _fresh_runtime()
        mrha = mapreduce_hamming_join(
            runtime, workload, workload, threshold=3, num_bits=20,
            option="A", sample_size=150,
        )
        pgbj = pgbj_knn_join(
            runtime, workload, workload, k=5, sample_size=150
        )
        assert pgbj.shuffle_bytes > 3 * mrha.shuffle_bytes

    def test_replication_factor_reported(self, workload):
        runtime = _fresh_runtime()
        report = pgbj_knn_join(
            runtime, workload, workload, k=5, sample_size=150
        )
        assert report.replication_factor >= 1.0

    def test_rejects_bad_k(self, workload):
        with pytest.raises(InvalidParameterError):
            pgbj_knn_join(_fresh_runtime(), workload, workload, k=0)

    def test_every_query_answered(self, workload):
        runtime = _fresh_runtime()
        report = pgbj_knn_join(
            runtime, workload, workload, k=3, sample_size=150,
            bound_slack=3.0,
        )
        assert set(report.neighbors) == {r_id for r_id, _ in workload}
        for neighbors in report.neighbors.values():
            assert len(neighbors) == 3
