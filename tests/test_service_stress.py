"""Concurrent correctness of the query service under reader/writer churn.

The contract under test: every query the service answers is *exactly*
the single-threaded oracle's answer for the epoch it was served against.
Writers apply H-Insert/H-Delete through the service (each mutation gets
a unique epoch, serialized by the traversal mutex); readers record
``(query, threshold, result, epoch)`` tuples; afterwards the mutation
log is replayed sequentially to reconstruct the exact (code, id) set at
every epoch and each recorded answer is checked against a brute-force
scan of that state.
"""

from __future__ import annotations

import random
import threading

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import ServiceOverloadError
from repro.data.synthetic import random_codes
from repro.service import HammingQueryService

pytestmark = pytest.mark.slow

BITS = 16
BASE_SIZE = 150
WRITERS = 3
READERS = 4
OPS_PER_WRITER = 40
QUERIES_PER_READER = 60
JOIN_TIMEOUT = 60.0


def _join_all(threads: list[threading.Thread]) -> None:
    for thread in threads:
        thread.join(timeout=JOIN_TIMEOUT)
    hung = [thread.name for thread in threads if thread.is_alive()]
    assert not hung, f"deadlocked threads: {hung}"


class TestReaderWriterConsistency:
    def test_results_match_oracle_at_served_epoch(self):
        base = CodeSet(random_codes(BASE_SIZE, BITS, seed=11), BITS)
        index = DynamicHAIndex.build(base, rebuild_buffer=8)
        service = HammingQueryService(
            index,
            workers=4,
            max_batch=16,
            queue_limit=10_000,
            cache_capacity=256,
        )
        # Epoch -> (op, code, tuple_id).  Epochs are unique (assigned
        # under the service's mutex), so plain dict writes are safe.
        mutation_log: dict[int, tuple[str, int, int]] = {}
        observations: list[tuple[int, int, tuple, int]] = []
        observation_lock = threading.Lock()
        failures: list[BaseException] = []

        def writer(slot: int) -> None:
            rng = random.Random(100 + slot)
            owned: list[tuple[int, int]] = []
            try:
                for step in range(OPS_PER_WRITER):
                    if owned and rng.random() < 0.4:
                        code, tuple_id = owned.pop(
                            rng.randrange(len(owned))
                        )
                        epoch = service.delete(code, tuple_id)
                        mutation_log[epoch] = ("delete", code, tuple_id)
                    else:
                        code = rng.getrandbits(BITS)
                        tuple_id = 10_000 * (slot + 1) + step
                        epoch = service.insert(code, tuple_id)
                        mutation_log[epoch] = ("insert", code, tuple_id)
                        owned.append((code, tuple_id))
            except BaseException as error:  # pragma: no cover
                failures.append(error)

        def reader(slot: int) -> None:
            rng = random.Random(200 + slot)
            # A small hot pool plus fresh random codes: exercises both
            # the cache-hit path and cold traversals.
            pool = [base[rng.randrange(len(base))] for _ in range(6)]
            try:
                for _ in range(QUERIES_PER_READER):
                    if rng.random() < 0.5:
                        query = pool[rng.randrange(len(pool))]
                    else:
                        query = rng.getrandbits(BITS)
                    threshold = rng.randrange(4)
                    result = service.select(query, threshold)
                    with observation_lock:
                        observations.append(
                            (query, threshold,
                             tuple(result.value), result.epoch)
                        )
            except BaseException as error:  # pragma: no cover
                failures.append(error)

        threads = [
            threading.Thread(target=writer, args=(slot,), name=f"w{slot}")
            for slot in range(WRITERS)
        ] + [
            threading.Thread(target=reader, args=(slot,), name=f"r{slot}")
            for slot in range(READERS)
        ]
        for thread in threads:
            thread.start()
        _join_all(threads)
        service.close()
        assert not failures, failures

        stats = service.stats()
        assert stats.served == READERS * QUERIES_PER_READER
        assert stats.rejected == 0 and stats.timed_out == 0
        assert stats.epoch == len(mutation_log)
        assert sorted(mutation_log) == list(
            range(1, len(mutation_log) + 1)
        ), "every mutation must get a unique consecutive epoch"

        # Replay the log into per-epoch states, then check every answer.
        state = {
            (code, tuple_id)
            for code, tuple_id in zip(base.codes, base.ids)
        }
        states = [set(state)]
        for epoch in range(1, len(mutation_log) + 1):
            op, code, tuple_id = mutation_log[epoch]
            if op == "insert":
                state.add((code, tuple_id))
            else:
                state.discard((code, tuple_id))
            states.append(set(state))
        for query, threshold, result, epoch in observations:
            expected = sorted(
                tuple_id
                for code, tuple_id in states[epoch]
                if (code ^ query).bit_count() <= threshold
            )
            assert sorted(result) == expected, (
                f"query {query:#x} h={threshold} at epoch {epoch}: "
                f"served {sorted(result)} != oracle {expected}"
            )

    def test_refresh_under_concurrent_readers(self):
        base = CodeSet(random_codes(BASE_SIZE, BITS, seed=3), BITS)
        replacement = CodeSet(
            random_codes(BASE_SIZE, BITS, seed=4), BITS
        )
        service = HammingQueryService(
            DynamicHAIndex.build(base),
            workers=4,
            max_batch=8,
            queue_limit=10_000,
        )
        base_state = set(zip(base.codes, base.ids))
        replacement_state = set(zip(replacement.codes, replacement.ids))
        observations: list[tuple[int, int, tuple, int]] = []
        observation_lock = threading.Lock()
        failures: list[BaseException] = []

        def reader(slot: int) -> None:
            rng = random.Random(slot)
            try:
                for _ in range(80):
                    query = rng.getrandbits(BITS)
                    result = service.select(query, 2)
                    with observation_lock:
                        observations.append(
                            (query, 2, tuple(result.value), result.epoch)
                        )
            except BaseException as error:  # pragma: no cover
                failures.append(error)

        threads = [
            threading.Thread(target=reader, args=(slot,), name=f"r{slot}")
            for slot in range(READERS)
        ]
        for thread in threads:
            thread.start()
        service.refresh(replacement)  # copy-on-swap mid-stream
        _join_all(threads)
        service.close()
        assert not failures, failures
        assert service.stats().refreshes == 1

        for query, threshold, result, epoch in observations:
            source = base_state if epoch == 0 else replacement_state
            expected = sorted(
                tuple_id
                for code, tuple_id in source
                if (code ^ query).bit_count() <= threshold
            )
            assert sorted(result) == expected

    def test_backpressure_storm_rejects_cleanly(self):
        base = CodeSet(random_codes(64, BITS, seed=9), BITS)
        service = HammingQueryService(
            DynamicHAIndex.build(base),
            workers=2,
            max_batch=4,
            queue_limit=8,
            cache_capacity=0,  # force every query through the index
        )
        outcomes = {"served": 0, "rejected": 0}
        outcome_lock = threading.Lock()
        failures: list[BaseException] = []

        def client(slot: int) -> None:
            rng = random.Random(slot)
            try:
                for _ in range(40):
                    query = rng.getrandbits(BITS)
                    try:
                        ticket = service.submit("select", query, 2)
                    except ServiceOverloadError as overload:
                        assert overload.retry_after_seconds >= 0
                        with outcome_lock:
                            outcomes["rejected"] += 1
                        continue
                    ticket.result(timeout=JOIN_TIMEOUT)
                    with outcome_lock:
                        outcomes["served"] += 1
            except BaseException as error:  # pragma: no cover
                failures.append(error)

        threads = [
            threading.Thread(target=client, args=(slot,), name=f"c{slot}")
            for slot in range(6)
        ]
        for thread in threads:
            thread.start()
        _join_all(threads)
        service.close()
        assert not failures, failures

        stats = service.stats()
        # Conservation: every submission was either served or rejected
        # with retry-after — nothing vanished, nothing deadlocked.
        assert outcomes["served"] + outcomes["rejected"] == 6 * 40
        assert stats.served == outcomes["served"]
        assert stats.rejected == outcomes["rejected"]


@pytest.mark.parametrize("cache_capacity", [0, 256])
def test_cache_on_and_off_agree_under_churn(cache_capacity):
    """The cache must never change an answer, only its cost."""
    base = CodeSet(random_codes(100, BITS, seed=21), BITS)
    service = HammingQueryService(
        DynamicHAIndex.build(base, rebuild_buffer=4),
        workers=2,
        max_batch=8,
        queue_limit=1000,
        cache_capacity=cache_capacity,
    )
    rng = random.Random(77)
    with service:
        for step in range(60):
            if step % 7 == 3:
                service.insert(rng.getrandbits(BITS), 5000 + step)
            query = base[rng.randrange(len(base))]
            result = service.select(query, 2)
            snapshot = service.snapshot_index()
            assert sorted(result.value) == sorted(snapshot.search(query, 2))
