"""Unit tests for the Static HA-Index of Section 4.3."""

from __future__ import annotations

import pytest

from repro.core.bitvector import CodeSet
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.static_ha import StaticHAIndex

from .conftest import EXAMPLE_QUERY, EXAMPLE_SELECT_IDS
from .helpers import assert_search_exact, brute_force_select


class TestBuildAndSearch:
    def test_paper_example(self, table_s):
        # Figure 2 uses 3-bit segments over the 9-bit running example.
        index = StaticHAIndex.build(table_s, segment_bits=3)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS

    def test_segment_layout_figure2(self, table_s):
        index = StaticHAIndex.build(table_s, segment_bits=3)
        assert index.num_segments == 3
        assert index.segment_bits == 3

    def test_uneven_last_segment(self):
        codeset = CodeSet([0b1111111], 7)
        index = StaticHAIndex.build(codeset, segment_bits=3)
        assert index.num_segments == 3  # widths 3, 3, 1
        assert index.search(0b1111111, 0) == [0]
        assert index.search(0b1111110, 1) == [0]

    def test_segment_wider_than_code_clamps(self):
        codeset = CodeSet([0b101], 3)
        index = StaticHAIndex.build(codeset, segment_bits=64)
        assert index.num_segments == 1
        assert index.search(0b101, 0) == [0]

    def test_rejects_bad_segment_bits(self):
        with pytest.raises(InvalidParameterError):
            StaticHAIndex(8, segment_bits=0)

    def test_exact_on_random_codes(self, random_codeset, query_rng):
        index = StaticHAIndex.build(random_codeset)
        queries = [query_rng.getrandbits(32) for _ in range(10)]
        assert_search_exact(index, random_codeset, queries, [0, 2, 4, 7])

    def test_exact_on_clustered_codes(self, clustered_codeset, query_rng):
        index = StaticHAIndex.build(clustered_codeset, segment_bits=4)
        queries = [clustered_codeset[i] for i in (5, 50, 500)]
        assert_search_exact(index, clustered_codeset, queries, [1, 3, 6])

    def test_duplicates(self):
        codeset = CodeSet([9, 9, 9], 4, ids=[4, 5, 6])
        index = StaticHAIndex.build(codeset, segment_bits=2)
        assert sorted(index.search(9, 0)) == [4, 5, 6]


class TestMaintenance:
    def test_update_roundtrip(self, table_s):
        index = StaticHAIndex.build(table_s, segment_bits=3)
        index.delete(table_s[3], 3)
        assert 3 not in index.search(EXAMPLE_QUERY, 3)
        index.insert(table_s[3], 3)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS

    def test_delete_absent_raises(self, table_s):
        index = StaticHAIndex.build(table_s)
        with pytest.raises(IndexStateError):
            index.delete(0b111111111, 0)
        with pytest.raises(IndexStateError):
            index.delete(table_s[0], 99)

    def test_delete_prunes_empty_paths(self):
        codeset = CodeSet([0b1100, 0b0011], 4, ids=[0, 1])
        index = StaticHAIndex.build(codeset, segment_bits=2)
        index.delete(0b1100, 0)
        stats = index.stats()
        assert stats.entries == 1
        assert index.search(0b1100, 0) == []

    def test_interleaved_updates_stay_exact(
        self, clustered_codeset, query_rng
    ):
        index = StaticHAIndex.build(clustered_codeset, segment_bits=8)
        codes = list(clustered_codeset.codes)
        removed = set()
        for _ in range(80):
            victim = query_rng.randrange(len(codes))
            if victim in removed:
                index.insert(codes[victim], victim)
                removed.discard(victim)
            else:
                index.delete(codes[victim], victim)
                removed.add(victim)
        live = clustered_codeset.subset(
            [i for i in range(len(codes)) if i not in removed]
        )
        query = codes[0]
        assert sorted(index.search(query, 4)) == brute_force_select(
            live, query, 4
        )


class TestSharing:
    def test_shared_segments_counted_once(self):
        """Distinct (layer, value) code bits are stored once (Figure 2)."""
        # t2 = 011 001 100 and t7 = 111 001 100 share segments 2 and 3.
        codeset = CodeSet.from_strings(["011001100", "111001100"])
        stats = StaticHAIndex.build(codeset, segment_bits=3).stats()
        # Layers hold {011, 111}, {001}, {100}: 4 distinct segments.
        assert stats.code_bits == 4 * 3

    def test_memory_below_replicating_baselines(self, clustered_codeset):
        from repro.baselines.multi_hash import MultiHashTableIndex

        sha = StaticHAIndex.build(clustered_codeset).stats()
        mh4 = MultiHashTableIndex.build(
            clustered_codeset, num_tables=4
        ).stats()
        assert sha.memory_bytes < mh4.memory_bytes
