"""Unit tests for the FLSS / FLSSeq masked-pattern algebra."""

from __future__ import annotations

import pytest

from repro.core.bitvector import code_from_string
from repro.core.errors import CodeLengthError, InvalidParameterError
from repro.core.pattern import (
    MaskedPattern,
    common_of_patterns,
    common_pattern,
)


class TestConstruction:
    def test_from_string_paper_flsseq(self):
        # U = "...0.1.1." is an FLSSeq of t0 = "001001010" (Def. 4).
        pattern = MaskedPattern.from_string("...0.1.1.")
        assert pattern.length == 9
        assert pattern.effective_bits == 3
        assert pattern.matches(code_from_string("001001010"))

    def test_from_string_with_middle_dot(self):
        pattern = MaskedPattern.from_string("1·0")
        assert str(pattern) == "1.0"

    def test_from_string_rejects_garbage(self):
        with pytest.raises(InvalidParameterError):
            MaskedPattern.from_string("1x0")

    def test_full_and_empty(self):
        full = MaskedPattern.full(0b101, 3)
        assert full.is_complete
        empty = MaskedPattern.empty(3)
        assert empty.effective_bits == 0

    def test_full_rejects_overflow(self):
        with pytest.raises(CodeLengthError):
            MaskedPattern.full(8, 3)

    def test_bits_outside_mask_rejected(self):
        with pytest.raises(InvalidParameterError):
            MaskedPattern(bits=0b100, mask=0b001, length=3)

    def test_str_roundtrip(self):
        for text in ("101", "..1", "1.0.1", "....."):
            assert str(MaskedPattern.from_string(text)) == text


class TestRelations:
    def test_matches_is_bitmatch(self):
        pattern = MaskedPattern.from_string("001......")
        assert pattern.matches(code_from_string("001001010"))  # t0
        assert pattern.matches(code_from_string("001011101"))  # t1
        assert not pattern.matches(code_from_string("101001010"))  # t3

    def test_generalizes(self):
        coarse = MaskedPattern.from_string("1....")
        fine = MaskedPattern.from_string("1.0..")
        assert coarse.generalizes(fine)
        assert not fine.generalizes(coarse)

    def test_generalizes_requires_agreement(self):
        a = MaskedPattern.from_string("1....")
        b = MaskedPattern.from_string("0.0..")
        assert not a.generalizes(b)

    def test_generalizes_different_lengths(self):
        assert not MaskedPattern.from_string("1.").generalizes(
            MaskedPattern.from_string("1..")
        )

    def test_empty_generalizes_everything(self):
        empty = MaskedPattern.empty(5)
        assert empty.generalizes(MaskedPattern.full(17, 5))

    def test_is_contiguous_flss_vs_flsseq(self):
        # Definition 3 (FLSS): contiguous fixed run.
        assert MaskedPattern.from_string("..110..").is_contiguous()
        # Definition 4 (FLSSeq): arbitrary positions.
        assert not MaskedPattern.from_string("1..0...").is_contiguous()
        assert MaskedPattern.empty(4).is_contiguous()
        assert MaskedPattern.full(0, 4).is_contiguous()


class TestDistance:
    def test_paper_distance_example(self):
        # "if one FLSSeq is U-hat = '...0.1.1.' and the query binary code
        # is '001001010', the Hamming distance is 2" -- the paper's
        # Section 4.1 text (with its own bit values).
        pattern = MaskedPattern.from_string("...0.1.1.")
        query = code_from_string("001001010")
        # Effective positions (0-indexed from left): 3, 5, 7 and their
        # pattern values 0, 1, 1 against query bits 0, 1, 1 -> distance 0;
        # the distance counts only effective-bit differences.
        assert pattern.distance(query) == 0
        other = code_from_string("001111000")
        assert pattern.distance(other) == 2

    def test_distance_complete_pattern_is_hamming(self):
        pattern = MaskedPattern.full(0b1010, 4)
        assert pattern.distance(0b0101) == 4

    def test_distance_to_pattern_shared_mask(self):
        a = MaskedPattern.from_string("10..")
        b = MaskedPattern.from_string("1.1.")
        # Shared effective position: only the first bit -> equal -> 0.
        assert a.distance_to_pattern(b) == 0

    def test_distance_to_pattern_length_mismatch(self):
        with pytest.raises(CodeLengthError):
            MaskedPattern.from_string("1.").distance_to_pattern(
                MaskedPattern.from_string("1..")
            )


class TestCombineAndResidual:
    def test_combine_disjoint(self):
        a = MaskedPattern.from_string("10...")
        b = MaskedPattern.from_string("..01.")
        combined = a.combine(b)
        assert str(combined) == "1001."

    def test_combine_rejects_overlap(self):
        a = MaskedPattern.from_string("1....")
        b = MaskedPattern.from_string("0....")
        with pytest.raises(InvalidParameterError):
            a.combine(b)

    def test_residual_reconstructs_code(self):
        pattern = MaskedPattern.from_string("0.1.0")
        code = code_from_string("00110")
        assert pattern.matches(code)
        reconstructed = pattern.combine(pattern.residual(code))
        assert reconstructed.is_complete
        assert reconstructed.bits == code

    def test_distance_splits_across_residual(self):
        pattern = MaskedPattern.from_string("01...")
        code = code_from_string("01101")
        query = code_from_string("11010")
        residual = pattern.residual(code)
        total = pattern.distance(query) + residual.distance(query)
        assert total == (code ^ query).bit_count()


class TestCommonPatterns:
    def test_common_pattern_of_codes(self):
        codes = [code_from_string("001001010"), code_from_string("001011101")]
        common = common_pattern(codes, 9)
        # Agreement on positions where both codes coincide.
        for code in codes:
            assert common.matches(code)
        assert common.effective_bits == 5  # 0010_1/0... shared bits

    def test_common_pattern_empty_input(self):
        with pytest.raises(InvalidParameterError):
            common_pattern([], 4)

    def test_common_pattern_single_code_is_complete(self):
        common = common_pattern([0b101], 3)
        assert common.is_complete
        assert common.bits == 0b101

    def test_common_of_patterns_generalizes_inputs(self):
        a = MaskedPattern.from_string("00.1.")
        b = MaskedPattern.from_string("0.01.")
        common = common_of_patterns([a, b])
        assert common.generalizes(a)
        assert common.generalizes(b)
        assert str(common) == "0..1."

    def test_common_of_patterns_disagreement_drops_position(self):
        a = MaskedPattern.from_string("01")
        b = MaskedPattern.from_string("00")
        assert str(common_of_patterns([a, b])) == "0."

    def test_common_of_patterns_empty(self):
        with pytest.raises(InvalidParameterError):
            common_of_patterns([])

    def test_common_of_patterns_length_mismatch(self):
        with pytest.raises(CodeLengthError):
            common_of_patterns(
                [MaskedPattern.empty(3), MaskedPattern.empty(4)]
            )

    def test_downward_closure(self):
        """Proposition 1: pattern distance lower-bounds code distance."""
        codes = [0b110010, 0b110110, 0b100010]
        common = common_pattern(codes, 6)
        for query in range(64):
            for code in codes:
                assert common.distance(query) <= (code ^ query).bit_count()
