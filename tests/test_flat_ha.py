"""Tests for the compiled flat H-Search kernel (FlatHAIndex).

The flat kernel is a read-only, array-backed compilation of a
DynamicHAIndex.  Everything here checks *exact* equivalence with the
node-walking plane: same result sets, same ``last_search_ops``, same
behaviour around the insert buffer and after invalidating mutations.
"""

from __future__ import annotations

import concurrent.futures as futures
import pickle
import random

import numpy as np
import pytest

from repro.core.bitvector import CodeSet, popcount64
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.flat_ha import FlatHAIndex, _expand_ranges
from repro.core.join import hamming_join, nested_loops_join, self_join
from repro.data.synthetic import random_codes

from .helpers import brute_force_select

THRESHOLDS = list(range(9))


def _clustered(n: int, bits: int, seed: int) -> CodeSet:
    """Clustered codes so subtree-qualifies and pruning both fire."""
    rng = random.Random(seed)
    centers = [rng.getrandbits(bits) for _ in range(max(4, n // 100))]
    codes = []
    for _ in range(n):
        noise = 0
        for _ in range(rng.randint(0, 4)):
            noise |= 1 << rng.randrange(bits)
        codes.append(rng.choice(centers) ^ noise)
    return CodeSet(codes, bits)


def _probes(codes: CodeSet, count: int, seed: int) -> list[int]:
    rng = random.Random(seed)
    half = count // 2
    members = [codes[rng.randrange(len(codes))] for _ in range(half)]
    randoms = [rng.getrandbits(codes.length) for _ in range(count - half)]
    return members + randoms


def _assert_planes_agree(index: DynamicHAIndex, flat: FlatHAIndex,
                         queries, thresholds=THRESHOLDS) -> None:
    for threshold in thresholds:
        batched = flat.search_batch(queries, threshold)
        codes_batched = flat.search_codes_batch(queries, threshold)
        for query, batch_ids, batch_codes in zip(
            queries, batched, codes_batched
        ):
            expected = sorted(index.search(query, threshold))
            node_ops = index.last_search_ops
            got = sorted(flat.search(query, threshold))
            assert got == expected
            assert flat.last_search_ops == node_ops
            assert sorted(batch_ids) == expected
            assert sorted(flat.search_codes(query, threshold)) == sorted(
                index.search_codes(query, threshold)
            )
            assert sorted(batch_codes) == sorted(
                flat.search_codes(query, threshold)
            )
            assert flat.count_within(query, threshold) == (
                index.count_within(query, threshold)
            )
            assert flat.contains_within(query, threshold) == (
                index.contains_within(query, threshold)
            )
            assert sorted(flat.search_with_distances(query, threshold)) == (
                sorted(index.search_with_distances(query, threshold))
            )


class TestEquivalence:
    @pytest.mark.parametrize("bits", [16, 32, 64])
    def test_narrow_codes_match_node_walk(self, bits):
        codes = _clustered(1500, bits, seed=bits)
        index = DynamicHAIndex.build(codes)
        _assert_planes_agree(index, index.compile(),
                             _probes(codes, 10, seed=5))

    @pytest.mark.parametrize("bits", [96, 128])
    def test_wide_codes_match_node_walk(self, bits):
        codes = _clustered(800, bits, seed=bits)
        index = DynamicHAIndex.build(codes)
        _assert_planes_agree(index, index.compile(),
                             _probes(codes, 8, seed=9))

    def test_with_buffered_inserts(self):
        codes = _clustered(1200, 32, seed=3)
        index = DynamicHAIndex.build(codes)
        rng = random.Random(11)
        extra = [rng.getrandbits(32) for _ in range(30)]
        for offset, code in enumerate(extra):
            index.insert(code, len(codes) + offset)
        flat = index.compile()
        everything = CodeSet(
            list(codes.codes) + extra, 32,
            ids=list(codes.ids) + list(
                range(len(codes), len(codes) + len(extra))
            ),
        )
        queries = _probes(codes, 8, seed=21) + extra[:4]
        _assert_planes_agree(index, flat, queries)
        for query in queries[:6]:
            assert sorted(flat.search(query, 3)) == brute_force_select(
                everything, query, 3
            )

    def test_batch_ops_accounting(self):
        codes = _clustered(1000, 32, seed=8)
        index = DynamicHAIndex.build(codes)
        flat = index.compile()
        queries = _probes(codes, 16, seed=2)
        singles = 0
        for query in queries:
            flat.search(query, 3)
            singles += flat.last_search_ops
        flat.search_batch(queries, 3)
        assert flat.last_search_ops == singles

    def test_duplicates_and_ids(self):
        codes = CodeSet([7, 7, 7, 1, 9, 9], 8, ids=[10, 11, 12, 13, 14, 15])
        flat = DynamicHAIndex.build(codes, window=2).compile()
        assert sorted(flat.search(7, 0)) == [10, 11, 12]
        assert flat.count_within(9, 0) == 2

    def test_empty_index(self):
        flat = DynamicHAIndex.build(CodeSet([], 16)).compile()
        assert flat.search(0, 8) == []
        assert flat.search_batch([0, 1], 4) == [[], []]
        assert flat.count_within(0, 8) == 0
        assert not flat.contains_within(0, 8)

    def test_merged_index_compiles(self):
        left = DynamicHAIndex.build(_clustered(400, 32, seed=1))
        right_codes = CodeSet(
            random_codes(400, 32, seed=2), 32,
            ids=list(range(1000, 1400)),
        )
        right = DynamicHAIndex.build(right_codes)
        merged = DynamicHAIndex.merge([left, right])
        _assert_planes_agree(
            merged, merged.compile(),
            _probes(right_codes, 6, seed=4), thresholds=[0, 1, 3, 5],
        )

    def test_threshold_above_code_length_clamps(self):
        codes = _clustered(300, 16, seed=6)
        index = DynamicHAIndex.build(codes)
        flat = index.compile()
        assert sorted(flat.search(codes[0], 999)) == sorted(
            index.search(codes[0], 999)
        )


class TestCompileLifecycle:
    def test_compile_is_cached(self):
        index = DynamicHAIndex.build(_clustered(300, 32, seed=1))
        assert index.compile() is index.compile()

    def test_force_recompile(self):
        index = DynamicHAIndex.build(_clustered(300, 32, seed=1))
        first = index.compile()
        assert index.compile(force=True) is not first

    def test_buffered_insert_invalidates(self):
        # Satellite: a buffered H-Insert must be visible through the
        # compiled plane on the next search/search_batch/count_within.
        codes = _clustered(600, 32, seed=2)
        index = DynamicHAIndex.build(codes)
        stale = index.compile()
        fresh_code = codes[0] ^ 0b11
        index.insert(fresh_code, 9999)
        flat = index.compile()
        assert flat is not stale
        assert 9999 in flat.search(fresh_code, 0)
        assert 9999 in flat.search_batch([fresh_code], 0)[0]
        assert flat.count_within(fresh_code, 0) == (
            index.count_within(fresh_code, 0)
        )

    def test_buffered_delete_invalidates(self):
        codes = _clustered(600, 32, seed=2)
        index = DynamicHAIndex.build(codes)
        index.compile()
        victim_id = codes.ids[0]
        index.delete(codes[0], victim_id)
        flat = index.compile()
        assert victim_id not in flat.search(codes[0], 0)
        assert flat.count_within(codes[0], 0) == (
            index.count_within(codes[0], 0)
        )

    def test_buffer_only_mutation_reuses_flat_arrays(self):
        # A new-code insert lands in the rebuild buffer without touching
        # the tree, so compile() only re-snapshots the buffer.
        index = DynamicHAIndex.build(_clustered(600, 32, seed=4))
        first = index.compile()
        index.insert(random.Random(0).getrandbits(32), 7777)
        second = index.compile()
        assert second is not first
        assert second._bits is first._bits

    def test_read_only_mutators_raise(self):
        flat = DynamicHAIndex.build(_clustered(200, 32, seed=1)).compile()
        with pytest.raises(IndexStateError):
            flat.insert(1, 1)
        with pytest.raises(IndexStateError):
            flat.delete(1, 1)

    def test_keep_ids_false(self):
        codes = _clustered(400, 32, seed=3)
        stripped = DynamicHAIndex.build(codes).strip_ids()
        flat = stripped.compile()
        query = codes[0]
        with pytest.raises(IndexStateError):
            flat.search(query, 2)
        assert sorted(flat.search_codes(query, 2)) == sorted(
            stripped.search_codes(query, 2)
        )

    def test_pickle_round_trip(self):
        codes = _clustered(500, 32, seed=5)
        flat = DynamicHAIndex.build(codes).compile()
        clone = pickle.loads(pickle.dumps(flat))
        for query in _probes(codes, 4, seed=1):
            assert clone.search(query, 3) == flat.search(query, 3)

    def test_build_classmethod(self):
        codes = _clustered(300, 32, seed=9)
        flat = FlatHAIndex.build(codes)
        assert isinstance(flat, FlatHAIndex)
        query = codes[0]
        assert sorted(flat.search(query, 2)) == brute_force_select(
            codes, query, 2
        )

    def test_stats_and_introspection(self):
        index = DynamicHAIndex.build(_clustered(500, 32, seed=7))
        flat = index.compile()
        assert flat.num_nodes == sum(flat.level_sizes())
        assert flat.num_levels == len(flat.level_sizes())
        assert flat.stats().nodes > 0
        assert len(flat) == len(index)


class TestVectorHelpers:
    def test_expand_ranges(self):
        starts = np.array([5, 0, 9], dtype=np.int64)
        counts = np.array([3, 0, 2], dtype=np.int64)
        assert _expand_ranges(starts, counts).tolist() == [5, 6, 7, 9, 10]

    def test_expand_ranges_empty(self):
        empty = np.array([], dtype=np.int64)
        assert _expand_ranges(empty, empty).size == 0

    def test_popcount64_fallback_table(self, monkeypatch):
        # Satellite: the byte-table fallback must match bit_count even
        # when numpy lacks np.bitwise_count (numpy < 2.0).
        import repro.core.bitvector as bv

        values = np.array(
            [0, 1, 0xFFFF_FFFF_FFFF_FFFF, 0x8000_0000_0000_0001, 12345],
            dtype=np.uint64,
        )
        expected = [int(v).bit_count() for v in values.tolist()]
        assert popcount64(values).tolist() == expected
        monkeypatch.setattr(bv, "_HAS_BITWISE_COUNT", False)
        assert bv.popcount64(values).tolist() == expected


class TestJoins:
    @pytest.fixture(scope="class")
    def join_inputs(self):
        left = _clustered(500, 32, seed=31)
        right = CodeSet(
            random_codes(400, 32, seed=32), 32,
            ids=list(range(5000, 5400)),
        )
        return left, right

    def test_hamming_join_engines_match_oracle(self, join_inputs):
        left, right = join_inputs
        oracle = sorted(nested_loops_join(left, right, 3))
        for engine in ("nodes", "flat"):
            assert sorted(
                hamming_join(left, right, 3, engine=engine)
            ) == oracle

    def test_hamming_join_parallel(self, join_inputs):
        left, right = join_inputs
        oracle = sorted(nested_loops_join(left, right, 3))
        got = hamming_join(
            left, right, 3, engine="flat", parallel=True, workers=2
        )
        assert sorted(got) == oracle

    def test_self_join_engines_match_oracle(self, join_inputs):
        left, _ = join_inputs
        oracle = sorted(
            pair for pair in nested_loops_join(left, left, 2)
            if pair[0] < pair[1]
        )
        for kwargs in (
            {"engine": "nodes"},
            {"engine": "flat"},
            {"engine": "flat", "parallel": True, "workers": 2},
        ):
            assert sorted(self_join(left, 2, **kwargs)) == oracle

    def test_invalid_engine_rejected(self, join_inputs):
        left, right = join_inputs
        with pytest.raises(InvalidParameterError):
            hamming_join(left, right, 2, engine="gpu")

    def test_parallel_thread_fallback(self, join_inputs, monkeypatch):
        # When the process pool cannot start, the probe falls back to
        # threads and still returns the exact pair set.
        left, right = join_inputs

        def broken_pool(*args, **kwargs):
            raise OSError("no process pool in this environment")

        monkeypatch.setattr(
            futures, "ProcessPoolExecutor", broken_pool
        )
        got = hamming_join(
            left, right, 3, engine="flat", parallel=True, workers=2
        )
        assert sorted(got) == sorted(nested_loops_join(left, right, 3))


class TestServiceKernel:
    @pytest.mark.parametrize("batch_kernel", [True, False])
    def test_batched_service_matches_oracle(self, batch_kernel):
        from repro.service import HammingQueryService

        codes = _clustered(800, 32, seed=13)
        queries = _probes(codes, 40, seed=14)
        service = HammingQueryService(
            DynamicHAIndex.build(codes),
            workers=2,
            max_batch=16,
            queue_limit=len(queries) + 8,
            cache_capacity=64,
            batch_kernel=batch_kernel,
        )
        with service:
            tickets = [
                service.submit("select", query, 3) for query in queries
            ]
            results = [ticket.result() for ticket in tickets]
        for query, result in zip(queries, results):
            assert sorted(result.value) == brute_force_select(
                codes, query, 3
            )
