"""End-to-end integration tests across subsystem boundaries.

Each test walks a full user journey: raw vectors -> learned hash ->
binary codes -> index -> query (or MapReduce pipeline), checking results
against an independent oracle computed in the original space or by
brute force over codes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.join import nested_loops_join
from repro.core.knn import exact_knn_codes, knn_select
from repro.core.select import INDEX_FAMILIES
from repro.data.containers import Dataset
from repro.data.scaling import scale_dataset
from repro.data.synthetic import dbpedia_like, flickr_like, nuswide_like
from repro.distributed.hamming_join import mapreduce_hamming_join
from repro.hashing.spectral import SpectralHash
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime
from repro.metrics import exact_knn_join, knn_precision_recall


@pytest.mark.parametrize(
    "generator", [nuswide_like, flickr_like, dbpedia_like]
)
def test_vectors_to_select_pipeline(generator):
    """Hash a paper-like dataset and answer selects on every index."""
    dataset = generator(250, seed=9)
    hasher = SpectralHash(24)
    codes = dataset.encode(hasher.fit(dataset.vectors))
    query = codes[13]
    expected = sorted(
        tuple_id
        for code, tuple_id in zip(codes.codes, codes.ids)
        if (code ^ query).bit_count() <= 3
    )
    for name, builder in INDEX_FAMILIES.items():
        index = builder(codes)
        assert sorted(index.search(query, 3)) == expected, name


def test_semantic_quality_of_hamming_search():
    """Hamming neighbours under spectral hashing are near in R^d.

    The average original-space distance of returned neighbours must be
    well below the dataset's average pairwise distance — the reason the
    whole hash-then-Hamming pipeline works at all.
    """
    dataset = nuswide_like(500, seed=10)
    hasher = SpectralHash(32)
    codes = dataset.encode(hasher.fit(dataset.vectors))
    index = DynamicHAIndex.build(codes)
    rng = np.random.default_rng(0)
    neighbor_distances = []
    for probe in rng.choice(len(dataset), size=20, replace=False):
        matches = index.search(codes[int(probe)], 4)
        for match in matches:
            if match != probe:
                neighbor_distances.append(
                    np.linalg.norm(
                        dataset.vectors[int(probe)]
                        - dataset.vectors[match]
                    )
                )
    background = []
    for _ in range(200):
        a, b = rng.choice(len(dataset), size=2, replace=False)
        background.append(
            np.linalg.norm(dataset.vectors[a] - dataset.vectors[b])
        )
    assert len(neighbor_distances) >= 10, "queries found some neighbours"
    assert np.mean(neighbor_distances) < 0.8 * np.mean(background)


def test_approximate_knn_vs_exact_knn_in_vector_space():
    """The paper's kNN recipe: code kNN approximates true kNN."""
    dataset = flickr_like(400, seed=11)
    hasher = SpectralHash(32)
    codes = dataset.encode(hasher.fit(dataset.vectors))
    index = DynamicHAIndex.build(codes)
    records = list(zip(range(len(dataset)), dataset.vectors))
    truth = exact_knn_join(records[:10], records, 10)
    predicted = {}
    for probe in range(10):
        predicted[probe] = knn_select(codes[probe], index, 10)
    _, recall = knn_precision_recall(predicted, truth)
    # Approximate but far above random (10/400 = 0.025).  The paper's own
    # Figure 10b observes that "the recall value is low" for the
    # hash-based pipeline; what matters is the gap over chance.
    assert recall > 0.15


def test_scaled_dataset_pipeline():
    """The paper's x-s scaling feeds the pipeline without surprises."""
    base = nuswide_like(80, seed=12)
    grown = scale_dataset(base, 3)
    hasher = SpectralHash(20)
    codes = grown.encode(hasher.fit(grown.vectors))
    index = DynamicHAIndex.build(codes)
    assert len(index) == 240
    query = codes[0]
    expected = sorted(
        tuple_id
        for code, tuple_id in zip(codes.codes, codes.ids)
        if (code ^ query).bit_count() <= 2
    )
    assert sorted(index.search(query, 2)) == expected


def test_mapreduce_join_agrees_with_centralized_join():
    """Figure 5 pipeline vs. single-node nested loops, same hash."""
    dataset = dbpedia_like(220, seed=13)
    records = list(zip(range(len(dataset)), dataset.vectors))
    runtime = MapReduceRuntime(Cluster(5))
    report = mapreduce_hamming_join(
        runtime, records, records, threshold=3, num_bits=20,
        option="auto", sample_size=120,
    )
    assert report.option == "A"  # small R resolves to option A
    hasher = runtime.cluster.cached("hamming.hash")
    codes = hasher.encode(dataset.vectors)
    expected = sorted(nested_loops_join(codes, codes, 3))
    assert sorted(report.pairs) == expected


def test_dataset_container_roundtrip_through_everything():
    """Dataset -> sample -> hash -> codes -> index -> knn, ids intact."""
    dataset = Dataset(
        np.random.default_rng(3).normal(size=(120, 8)),
        name="roundtrip",
        ids=range(500, 620),
    )
    sample = dataset.sample(0.5, seed=1)
    hasher = SpectralHash(16).fit(sample.vectors)
    codes = dataset.encode(hasher)
    assert codes.ids == dataset.ids
    index = DynamicHAIndex.build(codes)
    results = knn_select(codes[0], index, 5)
    expected = exact_knn_codes(codes[0], codes.codes, codes.ids, 5)
    assert results == expected
    assert all(500 <= tuple_id < 620 for tuple_id, _ in results)
