"""Regenerate the committed snapshot-format fixture (``store_v1/``).

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/make_snapshot_fixture.py

Only regenerate for a *deliberate, versioned* format change — the whole
point of the fixture is that bytes written by older builds keep
loading.  ``test_store.py::TestFormatCompatibility`` recovers the
directory and checks the answers below.
"""

from __future__ import annotations

import json
import shutil
import zlib
from pathlib import Path

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.synthetic import random_codes
from repro.store import DurableIndexStore

HERE = Path(__file__).parent
CODE_LENGTH = 24
SEED = 20260807


def main() -> None:
    target = HERE / "store_v1"
    shutil.rmtree(target, ignore_errors=True)

    codes = CodeSet(random_codes(120, CODE_LENGTH, seed=SEED), CODE_LENGTH)
    index = DynamicHAIndex.build(codes)
    store = DurableIndexStore(target)
    store.initialize(index)
    # A short WAL tail so recovery exercises replay, not just the map.
    mutations = [
        ("insert", 0xABCDEF, 9001),
        ("insert", 0x123456, 9002),
        ("delete", codes.codes[0], codes.ids[0]),
        ("insert", 0x0F0F0F, 9003),
    ]
    for kind, code, tuple_id in mutations:
        if kind == "insert":
            store.append_insert(code, tuple_id)
            index.insert(code, tuple_id)
        else:
            store.append_delete(code, tuple_id)
            index.delete(code, tuple_id)
    store.close()

    probes = []
    for code, threshold in [
        (0xABCDEF, 0),
        (codes.codes[1], 2),
        (0x0F0F0F, 4),
    ]:
        probes.append(
            {
                "code": code,
                "threshold": threshold,
                "ids": sorted(index.search(code, threshold)),
            }
        )
    pairs = sorted(index.code_id_pairs())
    expected = {
        "format_version": 1,
        "code_length": CODE_LENGTH,
        "last_seq": len(mutations),
        "size": len(index),
        "pairs_crc32": zlib.crc32(repr(pairs).encode()) & 0xFFFFFFFF,
        "probes": probes,
    }
    (target / "expected.json").write_text(
        json.dumps(expected, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {target} (last_seq={expected['last_seq']}, "
          f"size={expected['size']})")


if __name__ == "__main__":
    main()
