"""Smoke tests: every shipped example must run clean end to end."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_are_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


@pytest.mark.parametrize(
    "example", EXAMPLES, ids=[path.stem for path in EXAMPLES]
)
def test_example_runs_clean(example):
    completed = subprocess.run(
        [sys.executable, str(example)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples narrate their work"


def test_quickstart_reproduces_example1():
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert "'t0', 't3', 't4', 't6'" in completed.stdout
    assert "(r2, t3)" in completed.stdout
