"""Differential and behavioral tests for the sharded serving plane.

The load-bearing property: scatter-gather over Gray-range shards must
be *indistinguishable* from the single-index service — byte-identical
select/probe/knn/join results at every shard count — while contacting
strictly fewer shards than a broadcast whenever the pruning bound is
non-vacuous.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import (
    CodeLengthError,
    InvalidParameterError,
    ServiceClosedError,
)
from repro.core.join import nested_loops_join
from repro.data.workloads import cluster_codes
from repro.mapreduce.faults import ChaosPolicy
from repro.obs import REGISTRY, reset
from repro.service import HammingQueryService, ShardedQueryService

LENGTH = 16
THRESHOLDS = (0, 2, 4)


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def make_codes(n=240, clusters=4, seed=2) -> CodeSet:
    rng = random.Random(seed)
    base = CodeSet([rng.getrandbits(LENGTH) for _ in range(n)], LENGTH)
    return cluster_codes(base, clusters)


def make_queries(codes: CodeSet, count=30, seed=5) -> list[int]:
    rng = random.Random(seed)
    members = [codes[rng.randrange(len(codes))] for _ in range(count)]
    flipped = [
        query ^ (1 << rng.randrange(LENGTH)) for query in members[: count // 2]
    ]
    return members + flipped


def sharded_service(codes, **kwargs) -> ShardedQueryService:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("cache_capacity", 0)
    return ShardedQueryService(codes, **kwargs)


class TestDifferential:
    """Byte-identical results versus the single-index service."""

    @pytest.mark.parametrize("num_shards", [1, 4, 7])
    def test_select_probe_knn_match_single_index(self, num_shards):
        codes = make_codes()
        queries = make_queries(codes)
        single = HammingQueryService(
            DynamicHAIndex.build(codes), workers=1, cache_capacity=0
        )
        sharded = sharded_service(codes, num_shards=num_shards)
        with single, sharded:
            for query in queries:
                for threshold in THRESHOLDS:
                    expected = single.select(query, threshold).value
                    got = sharded.select(query, threshold).value
                    assert sorted(expected) == list(got)
                    assert (
                        single.probe(query, threshold).value
                        == sharded.probe(query, threshold).value
                    )
                for k in (1, 5, 17):
                    assert (
                        single.knn(query, k).value
                        == sharded.knn(query, k).value
                    )

    @pytest.mark.parametrize("num_shards", [1, 4, 7])
    def test_join_matches_nested_loops_oracle(self, num_shards):
        codes = make_codes(n=120)
        rng = random.Random(9)
        outer = CodeSet(
            [rng.getrandbits(LENGTH) for _ in range(40)]
            + [codes[i] for i in range(0, 40, 4)],
            LENGTH,
        )
        sharded = sharded_service(codes, num_shards=num_shards)
        with sharded:
            got = sharded.join(outer, 2)
        assert got == sorted(nested_loops_join(outer, codes, 2))

    def test_batched_selects_match_blocking_selects(self):
        codes = make_codes()
        queries = make_queries(codes)
        reference = sharded_service(codes, num_shards=4)
        batched = sharded_service(codes, num_shards=4, max_batch=16)
        with reference, batched:
            tickets = [
                batched.submit("select", query, 2) for query in queries
            ]
            for query, ticket in zip(queries, tickets):
                assert (
                    ticket.result().value
                    == reference.select(query, 2).value
                )


class TestPruning:
    def test_contacts_strictly_fewer_shards_than_broadcast(self):
        """Acceptance: the shards_contacted metric must show a strict
        win over broadcast when the bound is non-vacuous."""
        codes = make_codes()
        queries = make_queries(codes)
        totals = {}
        for label, pruning in (("pruned", True), ("broadcast", False)):
            reset()
            REGISTRY.enabled = True
            service = sharded_service(codes, num_shards=4, pruning=pruning)
            with service:
                for query in queries:
                    service.select(query, 2)
                stats = service.shard_stats()
            totals[label] = REGISTRY.counter("shards_contacted_total").value
            if pruning:
                assert stats.broadcasts < stats.planned
        assert totals["pruned"] < totals["broadcast"]

    def test_pruned_results_equal_broadcast_results(self):
        codes = make_codes()
        queries = make_queries(codes)
        pruned = sharded_service(codes, num_shards=4)
        broadcast = sharded_service(codes, num_shards=4, pruning=False)
        with pruned, broadcast:
            for query in queries:
                assert (
                    pruned.select(query, 3).value
                    == broadcast.select(query, 3).value
                )

    def test_metrics_published_per_plan(self):
        REGISTRY.enabled = True
        codes = make_codes()
        service = sharded_service(codes, num_shards=4)
        with service:
            service.select(codes[0], 1)
        snapshot = REGISTRY.snapshot()
        assert "shards_contacted_total" in snapshot
        assert "shard_pruned_total" in snapshot
        assert "shards_contacted" in snapshot

    def test_single_shard_never_prunes(self):
        codes = make_codes()
        service = sharded_service(codes, num_shards=1)
        with service:
            result = service.select(codes[0], 2)
            stats = service.shard_stats()
        assert result.value
        assert stats.shards_pruned == 0
        assert stats.broadcasts == stats.planned


class TestMaintenance:
    def test_insert_routes_to_owning_shard_and_serves(self):
        codes = make_codes(n=60)
        service = sharded_service(codes, num_shards=4)
        with service:
            new_code = codes[0] ^ 1
            before = service.shard_sizes()
            service.insert(new_code, 999)
            after = service.shard_sizes()
            assert sum(after) == sum(before) + 1
            assert sum(a != b for a, b in zip(before, after)) == 1
            assert 999 in service.select(new_code, 0).value

    def test_delete_removes_from_owning_shard(self):
        codes = make_codes(n=60)
        service = sharded_service(codes, num_shards=4)
        with service:
            victim_code, victim_id = codes[3], codes.ids[3]
            assert victim_id in service.select(victim_code, 0).value
            service.delete(victim_code, victim_id)
            assert victim_id not in service.select(victim_code, 0).value

    def test_insert_invalidates_cache_only_for_contacted_plans(self):
        """A write to a shard the cached plan pruned keeps the entry."""
        codes = CodeSet([0x0000, 0xFFFF], LENGTH)
        service = sharded_service(
            codes, num_shards=2, cache_capacity=64
        )
        with service:
            service.select(0x0000, 1)
            hits_before = service.stats().cache.hits
            service.select(0x0000, 1)  # cache hit
            assert service.stats().cache.hits == hits_before + 1
            # Write lands on the far shard (code ~0xFFFF side), whose
            # shard the 0x0000 plan pruned: entry must survive.
            service.insert(0xFFFE, 77)
            service.select(0x0000, 1)
            assert service.stats().cache.hits == hits_before + 2
            # Write to the contacted shard: entry must be invalidated.
            service.insert(0x0001, 78)
            result = service.select(0x0000, 1)
            assert service.stats().cache.hits == hits_before + 2
            assert 78 in result.value

    def test_refresh_swaps_dataset_and_bumps_epochs(self):
        codes = make_codes(n=60)
        replacement = make_codes(n=80, seed=12)
        service = sharded_service(codes, num_shards=4)
        with service:
            old_epoch = service.epoch
            service.refresh(replacement)
            assert service.epoch > old_epoch
            assert len(service) == 80

    def test_refresh_rejects_wrong_length(self):
        service = sharded_service(make_codes(n=20), num_shards=2)
        with service:
            with pytest.raises(InvalidParameterError):
                service.refresh(CodeSet([1, 2], LENGTH + 1))


class TestReplication:
    def test_chaos_never_changes_results(self):
        codes = make_codes()
        queries = make_queries(codes)
        plain = sharded_service(codes, num_shards=4)
        chaotic = sharded_service(
            codes,
            num_shards=4,
            replication=3,
            chaos=ChaosPolicy(seed=11, crash_prob=0.4, straggler_prob=0.3),
        )
        with plain, chaotic:
            for query in queries:
                for threshold in THRESHOLDS:
                    assert (
                        plain.select(query, threshold).value
                        == chaotic.select(query, threshold).value
                    )
            stats = chaotic.shard_stats()
        assert stats.failovers > 0
        assert stats.hedges > 0

    def test_writes_reach_every_replica(self):
        codes = make_codes(n=40)
        service = sharded_service(codes, num_shards=2, replication=2)
        with service:
            service.insert(codes[0] ^ 1, 500)
            for shard in service._shards:
                sizes = {len(replica) for replica in shard.replicas}
                assert len(sizes) == 1, "replicas diverged"

    def test_replication_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            sharded_service(make_codes(n=10), replication=0)


class TestServiceSurface:
    def test_closed_service_rejects_queries(self):
        service = sharded_service(make_codes(n=20), num_shards=2)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.select(1, 1)

    def test_rejects_oversized_query(self):
        service = sharded_service(make_codes(n=20), num_shards=2)
        with service:
            with pytest.raises(CodeLengthError):
                service.select(1 << LENGTH, 1)

    def test_rejects_unknown_kind_and_bad_params(self):
        service = sharded_service(make_codes(n=20), num_shards=2)
        with service:
            with pytest.raises(InvalidParameterError):
                service.submit("scan", 1, 1)
            with pytest.raises(InvalidParameterError):
                service.submit("select", 1, -1)
            with pytest.raises(InvalidParameterError):
                service.submit("knn", 1, 0)

    def test_stats_render_mentions_shards(self):
        service = sharded_service(make_codes(n=40), num_shards=4)
        with service:
            service.select(1, 1)
            text = service.shard_stats().render()
        assert "shards" in text
        assert "pruning" in text

    def test_publish_metrics_exports_shard_gauges(self):
        REGISTRY.enabled = True
        service = sharded_service(make_codes(n=40), num_shards=4)
        with service:
            service.select(1, 1)
            service.publish_metrics()
        snapshot = REGISTRY.snapshot()
        assert "shard_service_size" in snapshot
        assert "shard_service_pruned" in snapshot
