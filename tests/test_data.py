"""Unit tests for dataset containers, generators and paper-style scaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.data.containers import Dataset
from repro.data.scaling import scale_dataset, shift_to_next_larger
from repro.data.synthetic import (
    DBPEDIA_DIMENSIONS,
    FLICKR_DIMENSIONS,
    NUSWIDE_DIMENSIONS,
    PAPER_DATASETS,
    dbpedia_like,
    flickr_like,
    nuswide_like,
    random_codes,
)
from repro.hashing.hyperplane import HyperplaneHash


class TestDataset:
    def test_basic_properties(self):
        ds = Dataset(np.zeros((5, 3)), name="toy")
        assert len(ds) == 5
        assert ds.dimensions == 3
        assert ds.ids == (0, 1, 2, 3, 4)

    def test_rejects_non_matrix(self):
        with pytest.raises(InvalidParameterError):
            Dataset(np.zeros(5))

    def test_custom_ids(self):
        ds = Dataset(np.zeros((2, 2)), ids=[7, 9])
        assert ds.ids == (7, 9)
        with pytest.raises(InvalidParameterError):
            Dataset(np.zeros((2, 2)), ids=[1])

    def test_encode_caches_codes(self):
        ds = Dataset(np.random.default_rng(0).normal(size=(20, 4)))
        hasher = HyperplaneHash(8, seed=1).fit(ds.vectors)
        codes = ds.encode(hasher)
        assert ds.codes is codes
        assert codes.ids == ds.ids

    def test_codes_before_encode_raises(self):
        with pytest.raises(InvalidParameterError):
            Dataset(np.zeros((2, 2))).codes

    def test_sample_fraction(self):
        ds = Dataset(np.arange(100, dtype=float).reshape(50, 2))
        sample = ds.sample(0.2, seed=3)
        assert len(sample) == 10
        # Sampled ids refer to original rows.
        for row, tuple_id in zip(sample.vectors, sample.ids):
            assert np.array_equal(row, ds.vectors[tuple_id])

    def test_sample_rejects_bad_fraction(self):
        ds = Dataset(np.zeros((5, 2)))
        with pytest.raises(InvalidParameterError):
            ds.sample(0.0)
        with pytest.raises(InvalidParameterError):
            ds.sample(1.5)

    def test_take(self):
        ds = Dataset(np.zeros((10, 2)))
        assert len(ds.take(3)) == 3
        assert len(ds.take(99)) == 10
        with pytest.raises(InvalidParameterError):
            ds.take(-1)


class TestSyntheticGenerators:
    def test_paper_dimensionalities(self):
        assert nuswide_like(10).dimensions == NUSWIDE_DIMENSIONS == 225
        assert flickr_like(10).dimensions == FLICKR_DIMENSIONS == 512
        assert dbpedia_like(10).dimensions == DBPEDIA_DIMENSIONS == 250

    def test_registry_names(self):
        assert set(PAPER_DATASETS) == {"NUS-WIDE", "Flickr", "DBPedia"}

    def test_deterministic_by_seed(self):
        a = nuswide_like(20, seed=5).vectors
        b = nuswide_like(20, seed=5).vectors
        assert np.array_equal(a, b)
        c = nuswide_like(20, seed=6).vectors
        assert not np.array_equal(a, c)

    def test_dbpedia_rows_on_simplex(self):
        ds = dbpedia_like(15)
        sums = ds.vectors.sum(axis=1)
        assert np.allclose(sums, 1.0)
        assert (ds.vectors >= 0).all()

    def test_dbpedia_rows_sparse_topics(self):
        """LDA-like rows concentrate mass on a few topics."""
        ds = dbpedia_like(15)
        top10 = np.sort(ds.vectors, axis=1)[:, -10:].sum(axis=1)
        assert (top10 > 0.5).mean() > 0.8

    def test_image_generators_are_clustered(self):
        """Mixture data has lower NN distances than uniform noise."""
        ds = nuswide_like(200, seed=1)
        rng = np.random.default_rng(0)
        uniform = rng.uniform(-1, 1, size=ds.vectors.shape)

        def mean_nn(matrix):
            total = 0.0
            for i in range(0, 50):
                distances = np.linalg.norm(matrix - matrix[i], axis=1)
                distances[i] = np.inf
                total += distances.min()
            return total / 50

        assert mean_nn(ds.vectors) < mean_nn(uniform)

    def test_rejects_bad_size(self):
        with pytest.raises(InvalidParameterError):
            nuswide_like(0)
        with pytest.raises(InvalidParameterError):
            dbpedia_like(0)


class TestRandomCodes:
    def test_length_bound(self):
        codes = random_codes(100, 12, seed=0)
        assert len(codes) == 100
        assert all(0 <= code < (1 << 12) for code in codes)

    def test_distinct(self):
        codes = random_codes(200, 10, seed=1, distinct=True)
        assert len(set(codes)) == 200

    def test_distinct_overflow_raises(self):
        with pytest.raises(InvalidParameterError):
            random_codes(20, 4, distinct=True)

    def test_distinct_long_codes(self):
        codes = random_codes(50, 48, seed=2, distinct=True)
        assert len(set(codes)) == 50


class TestScaling:
    def test_shift_replaces_with_next_larger(self):
        matrix = np.array([[1.0], [3.0], [2.0]])
        shifted = shift_to_next_larger(matrix)
        assert shifted.tolist() == [[2.0], [3.0], [3.0]]

    def test_column_max_maps_to_itself(self):
        matrix = np.array([[5.0, 1.0], [2.0, 4.0]])
        shifted = shift_to_next_larger(matrix)
        assert shifted[0, 0] == 5.0  # already the max
        assert shifted[1, 1] == 4.0

    def test_scale_factor_grows_dataset(self):
        ds = nuswide_like(30, seed=2)
        grown = scale_dataset(ds, 4)
        assert len(grown) == 120
        assert grown.dimensions == ds.dimensions
        assert grown.name.endswith("-x4")

    def test_scale_one_is_identity(self):
        ds = nuswide_like(10)
        assert scale_dataset(ds, 1) is ds

    def test_scale_preserves_distribution_shape(self):
        """Per-dimension mean and std stay close (same distribution)."""
        ds = flickr_like(100, seed=3)
        grown = scale_dataset(ds, 5)
        original_mean = ds.vectors.mean(axis=0)
        grown_mean = grown.vectors.mean(axis=0)
        spread = ds.vectors.std(axis=0) + 1e-9
        assert np.abs(original_mean - grown_mean).max() < spread.max()

    def test_copies_are_distinct_tuples(self):
        ds = nuswide_like(20, seed=4)
        grown = scale_dataset(ds, 2)
        original = grown.vectors[:20]
        copy = grown.vectors[20:]
        assert not np.array_equal(original, copy)

    def test_rejects_bad_factor(self):
        with pytest.raises(InvalidParameterError):
            scale_dataset(nuswide_like(5), 0)

    def test_shift_rejects_non_matrix(self):
        with pytest.raises(InvalidParameterError):
            shift_to_next_larger(np.zeros(4))
