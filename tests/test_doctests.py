"""Run the doctest examples embedded in public docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro.core.bitvector
import repro.core.select

MODULES_WITH_EXAMPLES = [
    repro.core.bitvector,
    repro.core.select,
]


@pytest.mark.parametrize(
    "module",
    MODULES_WITH_EXAMPLES,
    ids=[module.__name__ for module in MODULES_WITH_EXAMPLES],
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module.__name__} lost its examples"
    assert results.failed == 0
