"""Unit tests for the Dynamic HA-Index (Sections 4.4-4.6)."""

from __future__ import annotations

import pickle

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.data.synthetic import random_codes

from .conftest import EXAMPLE_QUERY, EXAMPLE_SELECT_IDS
from .helpers import assert_search_exact, brute_force_select


class TestHBuild:
    def test_paper_example_search(self, table_s):
        index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS

    def test_trace_query_of_table3(self, table_s):
        # Table 3: query "010001011" with h = 3 returns exactly t0.
        index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
        assert index.search(0b010001011, 3) == [0]

    def test_invariants_after_build(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset)
        index.check_invariants()

    def test_parent_generalizes_children_everywhere(self, random_codeset):
        DynamicHAIndex.build(random_codeset).check_invariants()

    def test_level_sizes_shrink_upwards(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset, window=4)
        sizes = index.level_sizes()
        assert sizes, "index has at least one level"
        # Leaves (deepest level) dominate the node population.
        assert sizes[-1] == max(sizes)

    def test_full_code_space_example4(self):
        # Example 4: all 3-bit codes; the index stays logarithmically flat.
        codeset = CodeSet(list(range(8)), 3)
        index = DynamicHAIndex.build(codeset, window=2, max_depth=4)
        index.check_invariants()
        stats = index.stats(include_leaves=False)
        assert stats.nodes <= 8  # Example 4 predicts ~2 log2(8) = 6
        for query in range(8):
            assert sorted(index.search(query, 1)) == brute_force_select(
                codeset, query, 1
            )

    def test_duplicates_grouped_into_one_leaf(self):
        codeset = CodeSet([7, 7, 7, 1], 3, ids=[10, 11, 12, 13])
        index = DynamicHAIndex.build(codeset, window=2)
        assert index.num_distinct_codes == 2
        assert sorted(index.search(7, 0)) == [10, 11, 12]

    def test_empty_build(self):
        index = DynamicHAIndex.build(CodeSet([], 8))
        assert len(index) == 0
        assert index.search(0, 8) == []

    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            DynamicHAIndex(8, window=1)
        with pytest.raises(InvalidParameterError):
            DynamicHAIndex(8, max_depth=0)
        with pytest.raises(InvalidParameterError):
            DynamicHAIndex(8, rebuild_buffer=0)


class TestHSearch:
    def test_exact_on_random_codes(self, random_codeset, query_rng):
        index = DynamicHAIndex.build(random_codeset)
        queries = [query_rng.getrandbits(32) for _ in range(10)]
        assert_search_exact(index, random_codeset, queries, [0, 1, 3, 6])

    def test_exact_on_clustered_codes(self, clustered_codeset, query_rng):
        index = DynamicHAIndex.build(clustered_codeset)
        queries = [clustered_codeset[i] for i in (3, 333, 999)]
        assert_search_exact(index, clustered_codeset, queries, [2, 4, 8])

    def test_exact_across_window_and_depth(self, clustered_codeset):
        query = clustered_codeset[17]
        expected = brute_force_select(clustered_codeset, query, 4)
        for window in (2, 4, 16, 64):
            for depth in (1, 3, 7):
                index = DynamicHAIndex.build(
                    clustered_codeset, window=window, max_depth=depth
                )
                assert sorted(index.search(query, 4)) == expected

    def test_search_with_distances(self, table_s):
        index = DynamicHAIndex.build(table_s)
        pairs = dict(index.search_with_distances(EXAMPLE_QUERY, 3))
        assert set(pairs) == set(EXAMPLE_SELECT_IDS)
        for tuple_id, distance in pairs.items():
            code = table_s[tuple_id]
            assert distance == (code ^ EXAMPLE_QUERY).bit_count()

    def test_search_codes(self, table_s):
        index = DynamicHAIndex.build(table_s)
        codes = sorted(index.search_codes(EXAMPLE_QUERY, 3))
        expected = sorted({table_s[i] for i in EXAMPLE_SELECT_IDS})
        assert codes == expected

    def test_threshold_zero(self, random_codeset):
        index = DynamicHAIndex.build(random_codeset)
        code = random_codeset[5]
        expected = brute_force_select(random_codeset, code, 0)
        assert sorted(index.search(code, 0)) == expected


class TestMaintenance:
    def test_insert_existing_code_joins_leaf(self, table_s):
        index = DynamicHAIndex.build(table_s)
        index.insert(table_s[0], 99)
        assert sorted(index.search(table_s[0], 0)) == [0, 99]
        index.check_invariants()

    def test_insert_new_code_buffers_then_merges(self):
        codeset = CodeSet(random_codes(64, 16, seed=1), 16)
        index = DynamicHAIndex.build(codeset, rebuild_buffer=4)
        fresh = [60001, 60002, 60003, 60004]
        for offset, code in enumerate(fresh):
            index.insert(code, 1000 + offset)
        # Buffer reached its limit: everything merged into the structure.
        assert index._buffer == []
        index.check_invariants()
        for offset, code in enumerate(fresh):
            assert 1000 + offset in index.search(code, 0)

    def test_buffered_inserts_visible_before_merge(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        index.insert(0b000000001, 50)
        assert 50 in index.search(0b000000001, 0)
        assert 50 in [i for i, _ in index.search_with_distances(0, 1)]
        assert 0b000000001 in index.search_codes(0, 1)

    def test_buffered_inserts_visible_on_every_read_path(self, table_s):
        # Regression: a search issued between insert() and flush() must
        # see the buffered code through *all* read entry points, not
        # just search().
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        fresh_code, fresh_id = 0b000010001, 61
        index.insert(fresh_code, fresh_id)
        assert index._buffer, "test requires the insert to stay buffered"
        assert fresh_id in index.search(fresh_code, 0)
        assert fresh_code in index.search_codes(fresh_code, 0)
        assert (fresh_id, 0) in index.search_with_distances(fresh_code, 0)
        assert index.count_within(fresh_code, 0) == 1
        assert index.contains_within(fresh_code, 0)
        assert fresh_id in index.ids_for_code(fresh_code)
        assert (fresh_code, fresh_id) in list(index.code_id_pairs())

    def test_interleaved_insert_delete_search_never_flushes(self, table_s):
        # Interleave insert/delete/search with the buffer never merging;
        # every intermediate state must match the brute-force oracle.
        index = DynamicHAIndex.build(table_s, rebuild_buffer=10_000)
        live = {
            (code, tuple_id)
            for code, tuple_id in zip(table_s.codes, table_s.ids)
        }
        script = [
            ("insert", 0b000000001, 100),
            ("insert", 0b000000011, 101),
            ("delete", table_s[2], 2),      # structural delete
            ("insert", 0b000000001, 102),   # duplicate buffered code
            ("delete", 0b000000011, 101),   # delete straight from buffer
            ("insert", 0b110110110, 103),
            ("delete", table_s[5], 5),
            ("delete", 0b000000001, 100),
        ]
        for operation, code, tuple_id in script:
            if operation == "insert":
                index.insert(code, tuple_id)
                live.add((code, tuple_id))
            else:
                index.delete(code, tuple_id)
                live.discard((code, tuple_id))
            for query in (code, EXAMPLE_QUERY, 0b000000000):
                for threshold in (0, 2, 4):
                    expected = sorted(
                        i for c, i in live
                        if (c ^ query).bit_count() <= threshold
                    )
                    assert sorted(index.search(query, threshold)) == expected
                    assert index.count_within(query, threshold) == len(
                        expected
                    )
                    assert index.contains_within(query, threshold) == bool(
                        expected
                    )
        assert index._buffer, "script should leave codes in the buffer"
        assert len(index) == len(live)

    def test_mutation_count_tracks_inserts_and_deletes(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        assert index.mutation_count == 0
        index.insert(0b000000001, 50)
        index.insert(table_s[0], 51)
        index.delete(table_s[0], 51)
        assert index.mutation_count == 3
        with pytest.raises(IndexStateError):
            index.delete(0b000000001, 999)
        assert index.mutation_count == 3  # failed deletes do not count

    def test_snapshot_is_independent(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        index.insert(0b000000001, 50)
        copy = index.snapshot()
        copy.insert(0b111111110, 60)
        index.delete(0b000000001, 50)
        assert 60 not in index.search(0b111111110, 0)
        assert 50 in copy.search(0b000000001, 0)
        copy.check_invariants()

    def test_delete_from_structure(self, table_s):
        index = DynamicHAIndex.build(table_s)
        index.delete(table_s[3], 3)
        assert 3 not in index.search(EXAMPLE_QUERY, 3)
        index.check_invariants()

    def test_delete_from_buffer(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        index.insert(0b000000111, 77)
        index.delete(0b000000111, 77)
        assert 77 not in index.search(0b000000111, 0)

    def test_delete_absent_raises(self, table_s):
        index = DynamicHAIndex.build(table_s)
        with pytest.raises(IndexStateError):
            index.delete(0b101010101, 123)

    def test_delete_last_tuple_of_code_removes_leaf(self, table_s):
        index = DynamicHAIndex.build(table_s)
        index.delete(table_s[0], 0)
        assert index.search(table_s[0], 0) == []
        assert index.num_distinct_codes == 7
        index.check_invariants()

    def test_flush_forces_merge(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        index.insert(0b111111111, 88)
        index.flush()
        assert index._buffer == []
        assert 88 in index.search(0b111111111, 0)
        index.check_invariants()

    def test_heavy_churn_stays_exact(self, clustered_codeset, query_rng):
        index = DynamicHAIndex.build(clustered_codeset, rebuild_buffer=32)
        codes = list(clustered_codeset.codes)
        removed: set[int] = set()
        for _ in range(300):
            victim = query_rng.randrange(len(codes))
            if victim in removed:
                index.insert(codes[victim], victim)
                removed.discard(victim)
            else:
                index.delete(codes[victim], victim)
                removed.add(victim)
        live = clustered_codeset.subset(
            [i for i in range(len(codes)) if i not in removed]
        )
        for query in (codes[0], query_rng.getrandbits(32)):
            assert sorted(index.search(query, 5)) == brute_force_select(
                live, query, 5
            )


class TestLeafLessVariant:
    def test_keep_ids_false_blocks_tuple_operations(self, table_s):
        index = DynamicHAIndex.build(table_s, keep_ids=False)
        with pytest.raises(IndexStateError):
            index.search(EXAMPLE_QUERY, 3)
        with pytest.raises(IndexStateError):
            index.insert(1, 1)
        with pytest.raises(IndexStateError):
            index.delete(table_s[0], 0)

    def test_search_codes_still_exact(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset, keep_ids=False)
        query = clustered_codeset[7]
        expected = sorted(
            {
                code
                for code in clustered_codeset.codes
                if (code ^ query).bit_count() <= 4
            }
        )
        assert sorted(index.search_codes(query, 4)) == expected

    def test_strip_ids_matches_keep_ids_false(self, table_s):
        full = DynamicHAIndex.build(table_s)
        stripped = full.strip_ids()
        assert not stripped.keeps_ids
        assert sorted(stripped.search_codes(EXAMPLE_QUERY, 3)) == sorted(
            full.search_codes(EXAMPLE_QUERY, 3)
        )
        # The original keeps its ids.
        assert sorted(full.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS

    def test_stripped_is_smaller(self, clustered_codeset):
        full = DynamicHAIndex.build(clustered_codeset)
        stripped = full.strip_ids()
        assert len(pickle.dumps(stripped)) < len(pickle.dumps(full))


class TestSerialization:
    def test_pickle_roundtrip_search(self, clustered_codeset, query_rng):
        index = DynamicHAIndex.build(clustered_codeset)
        clone = pickle.loads(pickle.dumps(index))
        clone.check_invariants()
        for _ in range(5):
            query = query_rng.getrandbits(32)
            assert sorted(clone.search(query, 4)) == sorted(
                index.search(query, 4)
            )

    def test_pickle_roundtrip_mutable(self, table_s):
        clone = pickle.loads(pickle.dumps(DynamicHAIndex.build(table_s)))
        clone.insert(0b111000111, 55)
        clone.delete(0b111000111, 55)
        clone.check_invariants()

    def test_pickle_preserves_buffer(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        index.insert(0b000000011, 66)
        clone = pickle.loads(pickle.dumps(index))
        assert 66 in clone.search(0b000000011, 0)

    def test_compact_wire_format(self, random_codeset):
        """The pickled index is in the same ballpark as the raw codes."""
        index = DynamicHAIndex.build(random_codeset)
        raw = len(pickle.dumps((random_codeset.codes, random_codeset.ids)))
        assert len(pickle.dumps(index)) < 4 * raw


class TestMerge:
    def _split_build(self, codeset: CodeSet, pieces: int):
        chunks = []
        size = (len(codeset) + pieces - 1) // pieces
        for start in range(0, len(codeset), size):
            indices = range(start, min(start + size, len(codeset)))
            chunks.append(
                DynamicHAIndex.build(codeset.subset(list(indices)))
            )
        return chunks

    def test_merge_equals_monolithic_search(self, clustered_codeset):
        locals_ = self._split_build(clustered_codeset, 4)
        merged = DynamicHAIndex.merge(locals_)
        assert len(merged) == len(clustered_codeset)
        query = clustered_codeset[11]
        assert sorted(merged.search(query, 4)) == brute_force_select(
            clustered_codeset, query, 4
        )

    def test_merge_is_read_only(self, table_s):
        merged = DynamicHAIndex.merge([DynamicHAIndex.build(table_s)])
        with pytest.raises(IndexStateError):
            merged.insert(1, 1)
        with pytest.raises(IndexStateError):
            merged.delete(table_s[0], 0)

    def test_merge_duplicate_codes_across_locals(self):
        a = DynamicHAIndex.build(CodeSet([5, 9], 4, ids=[0, 1]))
        b = DynamicHAIndex.build(CodeSet([5, 12], 4, ids=[2, 3]))
        merged = DynamicHAIndex.merge([a, b])
        assert sorted(merged.search(5, 0)) == [0, 2]
        assert sorted(merged.ids_for_code(5)) == [0, 2]

    def test_merge_rejects_mixed_lengths(self):
        a = DynamicHAIndex.build(CodeSet([1], 4))
        b = DynamicHAIndex.build(CodeSet([1], 5))
        with pytest.raises(IndexStateError):
            DynamicHAIndex.merge([a, b])

    def test_merge_rejects_empty_list(self):
        with pytest.raises(InvalidParameterError):
            DynamicHAIndex.merge([])

    def test_merge_survives_pickle(self, clustered_codeset):
        locals_ = self._split_build(clustered_codeset, 3)
        merged = DynamicHAIndex.merge(locals_)
        clone = pickle.loads(pickle.dumps(merged))
        query = clustered_codeset[42]
        assert sorted(clone.search(query, 3)) == brute_force_select(
            clustered_codeset, query, 3
        )


class TestAccessors:
    def test_ids_for_code(self, table_s):
        index = DynamicHAIndex.build(table_s)
        assert index.ids_for_code(table_s[2]) == [2]
        assert index.ids_for_code(0b111111111) == []

    def test_code_id_pairs_cover_everything(self, table_s):
        index = DynamicHAIndex.build(table_s)
        pairs = sorted(index.code_id_pairs(), key=lambda p: p[1])
        assert pairs == [
            (code, tuple_id)
            for tuple_id, code in sorted(
                zip(table_s.ids, table_s.codes)
            )
        ]

    def test_stats_leaf_split(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset)
        full = index.stats()
        internal = index.stats(include_leaves=False)
        assert internal.nodes < full.nodes
        assert internal.entries == 0
        assert internal.memory_bytes < full.memory_bytes


class TestContainsWithin:
    def test_agrees_with_search(self, clustered_codeset, query_rng):
        index = DynamicHAIndex.build(clustered_codeset)
        for _ in range(20):
            query = query_rng.getrandbits(32)
            for threshold in (0, 2, 5):
                assert index.contains_within(query, threshold) == bool(
                    index.search(query, threshold)
                )

    def test_sees_buffered_inserts(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        assert not index.contains_within(0b000000001, 0)
        index.insert(0b000000001, 44)
        assert index.contains_within(0b000000001, 0)

    def test_early_exit_does_less_work(self, clustered_codeset):
        """Existence probing is cheaper than a full search when matches
        are plentiful (it stops at the first leaf)."""
        import time

        index = DynamicHAIndex.build(clustered_codeset)
        query = clustered_codeset[0]
        started = time.perf_counter()
        for _ in range(50):
            index.contains_within(query, 8)
        probe_time = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(50):
            index.search(query, 8)
        search_time = time.perf_counter() - started
        assert probe_time < search_time * 1.2


class TestCountWithin:
    def test_matches_search_length(self, clustered_codeset, query_rng):
        index = DynamicHAIndex.build(clustered_codeset)
        for _ in range(15):
            query = query_rng.getrandbits(32)
            for threshold in (0, 3, 8, 16, 32):
                assert index.count_within(query, threshold) == len(
                    index.search(query, threshold)
                )

    def test_full_threshold_counts_everything(self, table_s):
        index = DynamicHAIndex.build(table_s)
        assert index.count_within(0, table_s.length) == len(table_s)

    def test_counts_duplicates(self):
        codes = CodeSet([5, 5, 5, 9], 4, ids=[0, 1, 2, 3])
        index = DynamicHAIndex.build(codes)
        assert index.count_within(5, 0) == 3

    def test_counts_buffered_inserts(self, table_s):
        index = DynamicHAIndex.build(table_s, rebuild_buffer=100)
        index.insert(0b000000011, 55)
        assert index.count_within(0b000000011, 0) == 1

    def test_counts_after_merge_with_duplicates(self):
        a = DynamicHAIndex.build(CodeSet([5, 9], 4, ids=[0, 1]))
        b = DynamicHAIndex.build(CodeSet([5, 12], 4, ids=[2, 3]))
        merged = DynamicHAIndex.merge([a, b])
        assert merged.count_within(5, 0) == 2
        assert merged.count_within(0, 4) == 4

    def test_cheaper_than_materializing(self, clustered_codeset):
        """Counting skips fully-qualifying subtrees via frequencies."""
        index = DynamicHAIndex.build(clustered_codeset)
        query = clustered_codeset[0]
        index.search(query, 30)
        search_ops = index.last_search_ops
        import time

        started = time.perf_counter()
        for _ in range(20):
            index.count_within(query, 30)
        count_time = time.perf_counter() - started
        started = time.perf_counter()
        for _ in range(20):
            index.search(query, 30)
        search_time = time.perf_counter() - started
        assert count_time < search_time
