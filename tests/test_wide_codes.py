"""Tests for codes longer than 64 bits (multi-word support).

The paper evaluates 32- and 64-bit codes, but richer hashes (e.g.
128-bit GIST signatures) are common; the pattern algebra and all tree
indexes operate on Python ints of any width, and the vectorized scan
paths switch to a multi-word kernel.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import (
    CodeSet,
    batch_hamming_wide,
    pack_codes_wide,
)
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.select import INDEX_FAMILIES, hamming_select
from repro.data.synthetic import random_codes

WIDE_LENGTH = 128


@pytest.fixture(scope="module")
def wide_codeset() -> CodeSet:
    return CodeSet(
        random_codes(800, WIDE_LENGTH, seed=31), WIDE_LENGTH
    )


def _oracle(codeset: CodeSet, query: int, threshold: int) -> list[int]:
    return sorted(
        i
        for i, code in enumerate(codeset.codes)
        if (code ^ query).bit_count() <= threshold
    )


class TestWidePacking:
    def test_pack_and_distances(self):
        codes = [0, (1 << 100) | 1, (1 << 128) - 1]
        packed = pack_codes_wide(codes, 128)
        assert packed.shape == (3, 2)
        distances = batch_hamming_wide(packed, 0)
        assert distances.tolist() == [0, 2, 128]

    def test_wide_matches_scalar(self, wide_codeset):
        rng = random.Random(4)
        query = rng.getrandbits(WIDE_LENGTH)
        distances = batch_hamming_wide(wide_codeset.packed_wide(), query)
        expected = [
            (code ^ query).bit_count() for code in wide_codeset.codes
        ]
        assert distances.tolist() == expected

    def test_codeset_packed_wide_boundary_lengths(self):
        for length in (63, 64, 65, 127, 129):
            codeset = CodeSet(random_codes(10, length, seed=1), length)
            packed = codeset.packed_wide()
            assert packed.shape == (10, (length + 63) // 64)


class TestWideSelect:
    def test_hamming_select_on_wide_codeset(self, wide_codeset):
        query = wide_codeset[5]
        got = sorted(hamming_select(query, wide_codeset, 40))
        assert got == _oracle(wide_codeset, query, 40)

    @pytest.mark.parametrize("family", sorted(INDEX_FAMILIES))
    def test_every_family_handles_wide_codes(self, family, wide_codeset):
        index = INDEX_FAMILIES[family](wide_codeset)
        rng = random.Random(9)
        query = rng.getrandbits(WIDE_LENGTH)
        for threshold in (30, 50):
            got = sorted(index.search(query, threshold))
            assert got == _oracle(wide_codeset, query, threshold), family

    def test_wide_dha_maintenance(self, wide_codeset):
        index = DynamicHAIndex.build(wide_codeset)
        index.check_invariants()
        code = wide_codeset[0]
        index.delete(code, 0)
        assert 0 not in index.search(code, 0)
        index.insert(code, 0)
        assert 0 in index.search(code, 0)

    def test_wide_dha_pickle(self, wide_codeset):
        import pickle

        index = DynamicHAIndex.build(wide_codeset)
        clone = pickle.loads(pickle.dumps(index))
        query = wide_codeset[3]
        assert sorted(clone.search(query, 45)) == sorted(
            index.search(query, 45)
        )
