"""Differential fuzzing: every query engine agrees on random corpora.

Each seeded case draws a random corpus (varying code width, forced
duplicate codes, a batch of buffered inserts and a batch of deletes)
and checks that the node-walk Dynamic HA-Index, the compiled flat
kernel, the native compiled-backend kernel, the Static HA-Index, the
Multi-Index Hashing engine, and the nested-loops oracle return
identical answers for h-select, h-join, and kNN — and that all three
HA-Search planes account for exactly the same number of distance
computations.  A dedicated lane replays the native plane with the
compiled backend force-disabled, proving the numpy fallback
byte-identical (order included).  The Manku multi-hash baselines
(MH-4/MH-10) join the select sweep at thresholds beyond their design
point, exercising the pigeonhole probing fallback against the oracle.
The weighted plane gets its own sweep of > 200 seeded cases: both
weighted strategies (native lower-bound sweep and unweighted re-rank)
against a pure-python integer-scaled weighted oracle — spread,
continuous, and partially-zero weight vectors, mutations included —
plus a lane proving uniform 1.0 weights degenerate byte-identically
to the unweighted plane.  The parametrization spans > 400 cases in
total, so a regression in any engine's traversal, buffer handling, or
delete path surfaces as a concrete seed to replay.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.multi_hash import MultiHashTableIndex
from repro.baselines.nested_loops import NestedLoopsIndex
from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.join import hamming_join, nested_loops_join, self_join
from repro.core.knn import knn_select, knn_select_batch
from repro.core.native import force_backend
from repro.core.select import hamming_select, hamming_select_batch
from repro.core.static_ha import StaticHAIndex
from repro.core.weighted import (
    SCALE,
    WeightedHammingIndex,
    Weights,
    uniform_weights,
    weighted_knn,
    weighted_select,
)
from repro.engines.mih import MIHIndex

WIDTHS = (16, 32, 64, 96)
SELECT_SEEDS = range(25)
KNN_SEEDS = range(13)
JOIN_SEEDS = range(13)
WEIGHTED_SELECT_SEEDS = range(26)
WEIGHTED_KNN_SEEDS = range(13)
UNIFORM_SEEDS = range(13)


def _random_codes(
    rng: random.Random, width: int, n: int
) -> list[int]:
    codes = [rng.getrandbits(width) for _ in range(n)]
    # Force duplicate codes: distinct tuples sharing one leaf exercise
    # the frequency bookkeeping and the id-list fan-out.
    for _ in range(max(1, n // 6)):
        codes[rng.randrange(n)] = codes[rng.randrange(n)]
    return codes


def _mutated_engines(rng: random.Random, width: int):
    """(logical pairs, dha, flat, native, sha, mih) after random edits.

    Builds every engine over a base corpus, then applies the same
    insert and delete batches to each: inserts stay small enough to
    remain in the Dynamic HA-Index's temporary buffer, and deletes hit
    both tree-resident and buffered tuples (and, in the MIH engine,
    exercise the swap-remove row store).
    """
    n = rng.randrange(40, 161)
    base = _random_codes(rng, width, n)
    logical = list(zip(base, range(n)))
    dha = DynamicHAIndex.build(CodeSet(base, width))
    sha = StaticHAIndex.build(CodeSet(base, width))
    mih = MIHIndex.build(CodeSet(base, width))

    inserts = [
        (rng.getrandbits(width), n + position)
        for position in range(rng.randrange(0, 6))
    ]
    for code, tuple_id in inserts:
        dha.insert(code, tuple_id)
        sha.insert(code, tuple_id)
        mih.insert(code, tuple_id)
        logical.append((code, tuple_id))
    victims = rng.sample(logical, k=min(len(logical), rng.randrange(0, 6)))
    for code, tuple_id in victims:
        dha.delete(code, tuple_id)
        sha.delete(code, tuple_id)
        mih.delete(code, tuple_id)
        logical.remove((code, tuple_id))

    return logical, dha, dha.compile(), dha.compile_native(), sha, mih


def _oracle_select(
    logical: list[tuple[int, int]], query: int, threshold: int
) -> list[int]:
    return sorted(
        tuple_id
        for code, tuple_id in logical
        if (code ^ query).bit_count() <= threshold
    )


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", SELECT_SEEDS)
def test_select_engines_agree(width: int, seed: int) -> None:
    rng = random.Random(seed * 1009 + width)
    logical, dha, flat, native, sha, mih = _mutated_engines(rng, width)
    queries = [code for code, _ in rng.sample(logical, k=3)]
    queries.append(rng.getrandbits(width))
    # Low thresholds exercise pruning; width // 2 pushes deep into
    # cover-shortcut territory (a top-level covered node once diverged
    # only there, with identical answers but differing op counts).
    cases = [
        (query, threshold)
        for query in queries
        for threshold in (
            rng.randrange(0, max(2, width // 4)), width // 2
        )
    ]
    for query, threshold in cases:
        expected = _oracle_select(logical, query, threshold)
        assert sorted(dha.search(query, threshold)) == expected
        assert sorted(flat.search(query, threshold)) == expected
        assert sorted(sha.search(query, threshold)) == expected
        assert sorted(mih.search(query, threshold)) == expected
        # The compiled kernel replays the node walk level by level, so
        # its op accounting must be *identical*, not merely similar.
        assert dha.last_search_ops == flat.last_search_ops
        # The native sweep (compiled backend or numpy fallback alike)
        # replays the same traversal, emissions and counts included.
        assert native.search(query, threshold) == flat.search(
            query, threshold
        )
        assert native.last_search_ops == flat.last_search_ops
        assert native.count_within(query, threshold) == len(expected)
        assert native.contains_within(query, threshold) == bool(expected)
        assert (
            native.search_batch([query], threshold)[0]
            == flat.search_batch([query], threshold)[0]
        )
        assert native.search_with_distances(
            query, threshold
        ) == flat.search_with_distances(query, threshold)
        # The static index memoizes per-(layer, value) XORs, so each
        # layer charges at most one op per distinct segment value —
        # bounded by the corpus size per layer.
        assert 0 < sha.last_search_ops <= sha.num_segments * len(logical)
        # MIH verifies a candidate set; it can never verify more rows
        # than the corpus holds.
        assert 0 <= mih.last_search_ops <= len(logical)


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", range(8))
def test_multi_hash_baselines_agree(width: int, seed: int) -> None:
    """MH-4/MH-10 match the oracle beyond their design threshold.

    ``MultiHashTableIndex`` is designed for small thresholds; above the
    design point its pigeonhole probing widens (or degrades to a scan),
    which is exactly the path this sweep pins against the oracle.
    """
    rng = random.Random(seed * 4007 + width)
    n = rng.randrange(40, 121)
    codes = _random_codes(rng, width, n)
    logical = list(zip(codes, range(n)))
    codeset = CodeSet(codes, width)
    mh4 = MultiHashTableIndex.build(codeset, num_tables=4)
    mh10 = MultiHashTableIndex.build(codeset, num_tables=10)
    queries = [rng.choice(codes), rng.getrandbits(width)]
    # Thresholds straddling the design point, up to well beyond it.
    for threshold in (0, 3, width // 4, width // 2):
        for query in queries:
            expected = _oracle_select(logical, query, threshold)
            assert sorted(mh4.search(query, threshold)) == expected
            assert sorted(mh10.search(query, threshold)) == expected


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", KNN_SEEDS)
def test_knn_engines_agree(width: int, seed: int) -> None:
    rng = random.Random(seed * 2003 + width)
    logical, dha, flat, native, sha, mih = _mutated_engines(rng, width)
    query = rng.getrandbits(width)
    k = rng.randrange(1, 12)
    exact = sorted(
        (code ^ query).bit_count() for code, _ in logical
    )[:k]
    for engine in (dha, flat, native, sha, mih):
        got = knn_select(query, engine, k)
        assert len(got) == min(k, len(logical))
        # Ties at the cut-off distance make the id set ambiguous, so
        # the distance multiset is the engine-independent invariant.
        assert sorted(distance for _, distance in got) == exact
        by_id = {tuple_id: code for code, tuple_id in logical}
        for tuple_id, distance in got:
            assert (by_id[tuple_id] ^ query).bit_count() == distance
    # The MIH native progressive-radius kNN and the expanding-threshold
    # loop over the DHA-Index rank by (distance, id), so their answers
    # are byte-identical, ties included.
    assert knn_select(query, mih, k) == knn_select(query, dha, k)
    # The fused batch kNN runs the same threshold schedule through one
    # shared sweep per round; answers are byte-identical per query.
    batch_queries = [query, rng.getrandbits(width), query]
    for engine in (flat, native):
        assert knn_select_batch(batch_queries, engine, k) == [
            knn_select(q, engine, k) for q in batch_queries
        ]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", JOIN_SEEDS)
def test_join_engines_agree(width: int, seed: int) -> None:
    rng = random.Random(seed * 3001 + width)
    left = CodeSet(_random_codes(rng, width, rng.randrange(30, 90)), width)
    right = CodeSet(_random_codes(rng, width, rng.randrange(30, 90)), width)
    threshold = rng.randrange(0, max(2, width // 6))
    expected = sorted(nested_loops_join(left, right, threshold))
    for engine in ("nodes", "flat", "native", "mih"):
        got = sorted(hamming_join(left, right, threshold, engine=engine))
        assert got == expected, (
            f"h-join({engine}) diverged from the nested-loops oracle "
            f"at width={width} seed={seed} h={threshold}"
        )


@pytest.mark.parametrize("width", (16, 64))
@pytest.mark.parametrize("seed", range(6))
def test_self_join_engines_agree(width: int, seed: int) -> None:
    """Self-join pairs match across the DHA, flat, and MIH probes."""
    rng = random.Random(seed * 5003 + width)
    codes = CodeSet(
        _random_codes(rng, width, rng.randrange(30, 90)), width
    )
    threshold = rng.randrange(0, max(2, width // 6))
    expected = sorted(self_join(codes, threshold, engine="nodes"))
    for engine in ("flat", "native", "mih"):
        got = sorted(self_join(codes, threshold, engine=engine))
        assert got == expected, (
            f"self-join({engine}) diverged at width={width} "
            f"seed={seed} h={threshold}"
        )


@pytest.mark.parametrize("width", WIDTHS)
def test_select_front_end_matches_index_planes(width: int) -> None:
    """``hamming_select`` agrees across CodeSet scan and every index."""
    rng = random.Random(width * 77)
    codes = _random_codes(rng, width, 120)
    codeset = CodeSet(codes, width)
    query = rng.getrandbits(width)
    threshold = width // 5
    expected = sorted(hamming_select(query, codeset, threshold))
    for builder in (
        NestedLoopsIndex.build,
        DynamicHAIndex.build,
        StaticHAIndex.build,
        MIHIndex.build,
        lambda cs: DynamicHAIndex.build(cs).compile_native(),
    ):
        index = builder(codeset)
        assert sorted(hamming_select(query, index, threshold)) == expected
    batch = [query, codes[0], rng.getrandbits(width)]
    for target in (codeset, DynamicHAIndex.build(codeset).compile_native()):
        assert hamming_select_batch(batch, target, threshold) == [
            hamming_select(q, target, threshold) for q in batch
        ]


@pytest.mark.parametrize("width", (16, 32, 64))
@pytest.mark.parametrize("seed", range(10))
def test_native_numpy_fallback_byte_identical(
    width: int, seed: int
) -> None:
    """Force-disabling the compiled backend changes nothing, byte for byte.

    The native plane's numpy fallback must reproduce the compiled
    sweep's answers *in order* — result lists, distances, codes, batch
    splits, counts, and the exact op accounting — across a mutated
    corpus (buffered inserts and deletes included).  Any divergence
    pins a concrete (seed, width) pair to replay.
    """
    rng = random.Random(seed * 6011 + width)
    logical, _, _, native, _, _ = _mutated_engines(rng, width)
    queries = [code for code, _ in rng.sample(logical, k=2)]
    queries.append(rng.getrandbits(width))
    thresholds = sorted({0, 1, rng.randrange(0, max(2, width // 3))})

    def snapshot() -> list:
        observed = []
        for threshold in thresholds:
            observed.append(native.search_batch(queries, threshold))
            observed.append(
                native.search_with_distances_batch(queries, threshold)
            )
            observed.append(native.search_codes_batch(queries, threshold))
            for query in queries:
                observed.append(native.search(query, threshold))
                observed.append(native.last_search_ops)
                observed.append(
                    native.search_with_distances(query, threshold)
                )
                observed.append(native.search_codes(query, threshold))
                observed.append(native.count_within(query, threshold))
                observed.append(native.contains_within(query, threshold))
        return observed

    compiled = snapshot()
    with force_backend("numpy"):
        assert native.backend == "numpy"
        assert snapshot() == compiled


# -- the weighted plane vs a pure-python integer oracle -----------------


def _random_weight_values(rng: random.Random, width: int) -> list[float]:
    """Spread, continuous, or partially-zero per-bit weight vectors."""
    kind = rng.randrange(3)
    if kind == 0:
        return [
            rng.choice((0.25, 0.5, 1.0, 2.0, 4.0)) for _ in range(width)
        ]
    if kind == 1:
        return [rng.uniform(0.05, 3.0) for _ in range(width)]
    return [
        0.0 if rng.random() < 0.2 else rng.uniform(0.1, 2.0)
        for _ in range(width)
    ]


def _weighted_pair(rng: random.Random, width: int, weights: Weights):
    """(logical pairs, native index, rerank index) after random edits.

    Mutations go through the weighted wrapper (exercising its
    delegation and the buffered-insert scan); the re-rank twin wraps
    the same mutated DHA-Index afterwards, so both strategies answer
    over an identical corpus.
    """
    n = rng.randrange(40, 161)
    base = _random_codes(rng, width, n)
    logical = list(zip(base, range(n)))
    dha = DynamicHAIndex.build(CodeSet(base, width))
    native = WeightedHammingIndex(dha, weights=weights, strategy="native")
    for position in range(rng.randrange(0, 6)):
        code, tuple_id = rng.getrandbits(width), n + position
        native.insert(code, tuple_id)
        logical.append((code, tuple_id))
    victims = rng.sample(
        logical, k=min(len(logical), rng.randrange(0, 6))
    )
    for code, tuple_id in victims:
        native.delete(code, tuple_id)
        logical.remove((code, tuple_id))
    rerank = WeightedHammingIndex(dha, weights=weights, strategy="rerank")
    return logical, native, rerank


def _weighted_oracle_pairs(
    logical: list[tuple[int, int]], weights: Weights, query: int
) -> list[tuple[int, int]]:
    """Every (tuple id, scaled weighted distance), the python bit loop."""
    return [
        (tuple_id, weights.distance_scaled(code, query))
        for code, tuple_id in logical
    ]


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", WEIGHTED_SELECT_SEEDS)
def test_weighted_select_matches_oracle(width: int, seed: int) -> None:
    """Both weighted strategies are byte-identical to the oracle.

    Result ids *and* reported distances must equal the pure-python
    integer-scaled scan exactly — no float epsilon anywhere — across
    random thresholds and thresholds pinned to an exact pairwise
    distance (boundary inclusion).
    """
    rng = random.Random(seed * 7013 + width)
    weights = Weights(_random_weight_values(rng, width))
    logical, native, rerank = _weighted_pair(rng, width, weights)
    queries = [code for code, _ in rng.sample(logical, k=2)]
    queries.append(rng.getrandbits(width))
    scan = CodeSet(
        [code for code, _ in logical],
        width,
        ids=[tuple_id for _, tuple_id in logical],
    )
    for query in queries:
        scored = _weighted_oracle_pairs(logical, weights, query)
        boundary = rng.choice(scored)[1] / SCALE
        thresholds = (
            rng.uniform(0.0, max(1.0, width / 4)), boundary, 0.0
        )
        for threshold in thresholds:
            t_scaled = int(round(threshold * SCALE))
            expected = sorted(
                (tuple_id, scaled / SCALE)
                for tuple_id, scaled in scored
                if scaled <= t_scaled
            )
            expected_ids = [tuple_id for tuple_id, _ in expected]
            for index in (native, rerank):
                assert sorted(index.search(query, threshold)) \
                    == expected_ids
                assert sorted(
                    index.search_with_distances(query, threshold)
                ) == expected
                assert sorted(
                    index.search_batch([query], threshold)[0]
                ) == expected_ids
                assert index.contains_within(query, threshold) \
                    == bool(expected)
            # The CodeSet scan front-end shares the same integers.
            assert sorted(
                weighted_select(query, scan, threshold, weights)
            ) == expected_ids


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", WEIGHTED_KNN_SEEDS)
def test_weighted_knn_matches_oracle(width: int, seed: int) -> None:
    """Weighted kNN ranks by exact (distance, id) under both strategies."""
    rng = random.Random(seed * 8017 + width)
    weights = Weights(_random_weight_values(rng, width))
    logical, native, rerank = _weighted_pair(rng, width, weights)
    k = rng.randrange(1, 12)
    for query in (logical[0][0], rng.getrandbits(width)):
        scored = sorted(
            (scaled, tuple_id)
            for tuple_id, scaled
            in _weighted_oracle_pairs(logical, weights, query)
        )
        expected = [
            (tuple_id, scaled / SCALE)
            for scaled, tuple_id in scored[:k]
        ]
        assert native.knn_search(query, k) == expected
        assert rerank.knn_search(query, k) == expected
        assert weighted_knn(query, native, k, weights) == expected
        assert knn_select(
            query, native.inner, k, weights=weights.values
        ) == expected


@pytest.mark.parametrize("width", WIDTHS)
@pytest.mark.parametrize("seed", UNIFORM_SEEDS)
def test_uniform_weights_degenerate_exactly(
    width: int, seed: int
) -> None:
    """Uniform 1.0 weights reproduce the unweighted plane bit for bit.

    1.0 quantizes to exactly ``SCALE``, so every weighted distance is
    ``SCALE * hamming`` — same result sets, same distances (numeric
    equality of the fixed-point floats against the integer answers),
    same kNN ranking including tie-breaks.
    """
    rng = random.Random(seed * 9029 + width)
    logical, dha, flat, native, _, _ = _mutated_engines(rng, width)
    weighted = WeightedHammingIndex(
        dha, weights=uniform_weights(width), strategy="native"
    )
    rerank = WeightedHammingIndex(
        dha, weights=uniform_weights(width), strategy="rerank"
    )
    queries = [logical[0][0], rng.getrandbits(width)]
    for query in queries:
        for threshold in (0, 1, width // 4, width // 2):
            expected = sorted(flat.search(query, threshold))
            exact = sorted(flat.search_with_distances(query, threshold))
            for index in (weighted, rerank):
                assert sorted(index.search(query, threshold)) == expected
                # (id, float) pairs compare numerically equal to the
                # unweighted (id, int) pairs — 3.0 == 3 exactly.
                assert sorted(
                    index.search_with_distances(query, threshold)
                ) == exact
        k = rng.randrange(1, 8)
        assert weighted.knn_search(query, k) \
            == knn_select(query, dha, k)
        assert rerank.knn_search(query, k) \
            == knn_select(query, native, k)
