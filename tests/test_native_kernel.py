"""Unit tests for the tiered native H-Search backend plane.

:mod:`repro.core.native` compiles the flat kernel's level-major sweep
to a real machine-code backend (numba when importable, a
runtime-compiled C library otherwise) with the numpy sweeps as the
always-available fallback.  These tests pin the selection machinery
(``REPRO_NATIVE``, :func:`force_backend`), the lifecycle corners
(pickling, rebuffered clones, tracing delegation, multi-word codes),
and the capacity/retry behaviour of the batch sweep.  Byte-identical
*answer* agreement across backends is covered by the differential
suite; here we exercise the plumbing around it.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.core import native
from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.engines import build_index, get_engine
from repro.core.knn import knn_select
from repro.core.native_ha import NativeHAIndex

WIDTH = 32


def _corpus(seed: int, n: int = 200, width: int = WIDTH) -> CodeSet:
    rng = random.Random(seed)
    codes = [rng.getrandbits(width) for _ in range(n)]
    for _ in range(n // 5):
        codes[rng.randrange(n)] = codes[rng.randrange(n)]
    return CodeSet(codes, width)


class TestBackendSelection:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(native.ENV_VAR, raising=False)
        assert native.requested_backend() == "auto"

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv(native.ENV_VAR, " NumPy ")
        assert native.requested_backend() == "numpy"
        assert native.active_backend() == "numpy"

    def test_unknown_env_value_falls_back_to_auto(self, monkeypatch):
        monkeypatch.setenv(native.ENV_VAR, "turbo")
        assert native.requested_backend() == "auto"

    def test_force_backend_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(native.ENV_VAR, "numpy")
        with native.force_backend("auto"):
            assert native.requested_backend() == "auto"
        assert native.requested_backend() == "numpy"

    def test_force_backend_nests_and_restores(self):
        with native.force_backend("numpy"):
            with native.force_backend("auto"):
                assert native.requested_backend() == "auto"
            assert native.requested_backend() == "numpy"

    def test_force_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            with native.force_backend("turbo"):
                pass  # pragma: no cover

    def test_active_backend_is_a_valid_tier(self):
        assert native.active_backend() in ("numba", "cc", "numpy")

    def test_registry_resolves_native_and_aliases(self):
        assert get_engine("native").name == "native"
        assert get_engine("jit").name == "native"
        assert get_engine("compiled").name == "native"
        assert get_engine("native").batched
        index = build_index("native", _corpus(1, n=60))
        assert isinstance(index, NativeHAIndex)


class TestNativeIndexLifecycle:
    def test_matches_node_walk_with_exact_ops(self):
        codes = _corpus(2)
        dha = DynamicHAIndex.build(codes)
        nat = dha.compile_native()
        rng = random.Random(7)
        for threshold in (0, 1, 3, 6):
            query = rng.getrandbits(WIDTH)
            expected = sorted(dha.search(query, threshold))
            node_ops = dha.last_search_ops
            assert sorted(nat.search(query, threshold)) == expected
            assert nat.last_search_ops == node_ops

    def test_pickle_drops_backend_state(self):
        nat = DynamicHAIndex.build(_corpus(3)).compile_native()
        query = _corpus(3).codes[0]
        before = nat.search(query, 3)
        ops = nat.last_search_ops
        clone = pickle.loads(pickle.dumps(nat))
        # ctypes pointers / jitted dispatchers never cross the wire;
        # the receiver rebuilds its own state on first query.
        assert "_native_state" not in clone.__dict__
        assert clone.search(query, 3) == before
        assert clone.last_search_ops == ops
        assert clone.backend == nat.backend

    def test_rebuffered_clone_shares_tree_and_state(self):
        codes = _corpus(4)
        dha = DynamicHAIndex.build(codes)
        first = dha.compile_native()
        first.search(codes.codes[0], 2)  # materialize backend state
        new_code = 0xDEADBEEF & ((1 << WIDTH) - 1)
        dha.insert(new_code, 9001)  # stays in the insert buffer
        second = dha.compile_native()
        assert second is not first
        # Buffer-only growth reuses the flattened tree arrays (and with
        # them any bound native state) — only the buffer is resnapped.
        assert second._bits1 is first._bits1
        if first.backend != "numpy":
            assert second._native_state is first._native_state
        assert 9001 in second.search(new_code, 0)
        assert 9001 not in first.search(new_code, 0)

    def test_tracing_delegates_with_exact_spans(self):
        from repro.obs import last_trace, render_span_tree, trace

        codes = _corpus(5)
        nat = DynamicHAIndex.build(codes).compile_native()
        query = codes.codes[3]
        plain = nat.search(query, 3)
        with trace("h_select", engine="native", threshold=3):
            traced = nat.search(query, 3)
        tree = last_trace()
        assert traced == plain
        # Under tracing the instrumented numpy sweeps answer, labelled
        # as the native plane, and the per-level spans must sum to the
        # op counter exactly.
        assert tree.total_ops == nat.last_search_ops
        rendered = render_span_tree(tree)
        assert "engine=native" in rendered
        assert "h_search.level" in rendered

    def test_multiword_codes_fall_back_to_numpy(self):
        codes = _corpus(6, n=80, width=96)
        dha = DynamicHAIndex.build(codes)
        nat = dha.compile_native()
        assert nat.backend == "numpy"
        query = codes.codes[0]
        assert sorted(nat.search(query, 5)) == sorted(dha.search(query, 5))
        assert nat.last_search_ops == dha.last_search_ops

    def test_env_numpy_disables_native(self, monkeypatch):
        monkeypatch.setenv(native.ENV_VAR, "numpy")
        codes = _corpus(7, n=80)
        nat = DynamicHAIndex.build(codes).compile_native()
        assert nat.backend == "numpy"
        query = codes.codes[0]
        assert sorted(nat.search(query, 2)) == sorted(
            DynamicHAIndex.build(codes).search(query, 2)
        )


class TestBatchCapacity:
    def test_batch_retry_doubling_on_dense_answers(self):
        # Every tuple shares one code: each of the 64 queries emits all
        # 300 ids, so the first batch buffer (sized like one query's
        # worst case) must overflow and the retry-doubling loop engage.
        n = 300
        codes = CodeSet([0x1234ABCD] * n, WIDTH)
        nat = DynamicHAIndex.build(codes).compile_native()
        queries = [0x1234ABCD] * 64
        expected = list(range(n))
        for ids in nat.search_batch(queries, 0):
            assert sorted(ids) == expected
        pairs = nat.search_with_distances_batch(queries, 1)
        for per_query in pairs:
            assert sorted(tid for tid, _ in per_query) == expected
            assert all(distance == 0 for _, distance in per_query)

    def test_thresholds_beyond_code_length_clamp(self):
        codes = _corpus(8, n=90)
        nat = DynamicHAIndex.build(codes).compile_native()
        query = codes.codes[0]
        assert nat.count_within(query, WIDTH) == len(nat)
        assert nat.contains_within(query, WIDTH)
        assert sorted(nat.search(query, WIDTH)) == sorted(codes.ids)

    def test_empty_batch(self):
        nat = DynamicHAIndex.build(_corpus(9, n=40)).compile_native()
        assert nat.search_batch([], 3) == []
        assert nat.search_with_distances_batch([], 3) == []


class TestServiceFusing:
    def test_knn_misses_fuse_through_batch_kernel(self):
        from repro.service import HammingQueryService

        codes = _corpus(10)
        index = DynamicHAIndex.build(codes).compile_native()
        service = HammingQueryService(index, start=False)
        rng = random.Random(11)
        knn_queries = [rng.getrandbits(WIDTH) for _ in range(3)]
        select_query = rng.getrandbits(WIDTH)
        misses = [("knn", query, 5) for query in knn_queries]
        misses.append(("select", select_query, 2))
        results = dict(service._run_misses(index, misses))
        for query in knn_queries:
            assert results[("knn", query, 5)] == tuple(
                knn_select(query, index, 5)
            )
        assert results[("select", select_query, 2)] == tuple(
            index.search(select_query, 2)
        )
        service.close()

    def test_native_kernel_plane_survives_live_mutations(self):
        """``kernel="native"`` serves a mutable DHA through the
        compiled plane, and the mutation-count cache keying keeps the
        answers current across live inserts and deletes."""
        from repro.service import HammingQueryService

        codes = _corpus(12)
        index = DynamicHAIndex.build(codes)
        service = HammingQueryService(
            index, kernel="native", cache_capacity=0, start=False
        )
        rng = random.Random(13)
        queries = [rng.getrandbits(WIDTH) for _ in range(3)]
        misses = [("select", query, 3) for query in queries]
        before = dict(service._run_misses(index, misses))
        for query in queries:
            assert before[("select", query, 3)] == tuple(
                index.search(query, 3)
            )
        # A buffered insert at distance 0 from the first query must be
        # visible to the very next batch through the same plane.
        service.insert(queries[0], 9001)
        after = dict(service._run_misses(index, misses))
        assert 9001 in after[("select", queries[0], 3)]
        for query in queries:
            assert after[("select", query, 3)] == tuple(
                index.search(query, 3)
            )
        service.delete(queries[0], 9001)
        assert dict(service._run_misses(index, misses)) == before
        service.close()

    def test_service_rejects_unknown_kernel(self):
        from repro.core.errors import InvalidParameterError
        from repro.service import HammingQueryService

        index = DynamicHAIndex.build(_corpus(14))
        with pytest.raises(InvalidParameterError):
            HammingQueryService(index, kernel="jit", start=False)
