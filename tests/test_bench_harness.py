"""Tests for the benchmark harness and the EXPERIMENTS.md assembler."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks import collect_experiments, harness  # noqa: E402
from repro.core.bitvector import CodeSet  # noqa: E402
from repro.core.dynamic_ha import DynamicHAIndex  # noqa: E402
from repro.data.synthetic import random_codes  # noqa: E402


class TestRenderTable:
    def test_basic_shape(self):
        text = harness.render_table(
            "Title", ["a", "bb"], [[1, 2.5], ["x", 0.001]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert lines[1] == "====="
        assert "a" in lines[2] and "bb" in lines[2]
        assert "2.50" in text and "0.001" in text

    def test_note_appended(self):
        text = harness.render_table("T", ["c"], [[1]], note="a note")
        assert text.rstrip().endswith("a note")

    def test_wide_cells_align(self):
        text = harness.render_table(
            "T", ["col"], [["a-very-long-cell"], [1]]
        )
        rows = text.splitlines()
        assert len(rows[2]) == len(rows[3])  # header vs separator width


class TestWorkloadHelpers:
    def test_scaled_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert harness.scaled(30_000) == 64

    def test_scaled_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert harness.scaled(100) == 100

    def test_paper_dataset_cached(self):
        first = harness.paper_dataset("NUS-WIDE", 64)
        second = harness.paper_dataset("NUS-WIDE", 64)
        assert first is second

    def test_sample_queries_come_from_codes(self):
        codes = CodeSet(random_codes(50, 16, seed=1), 16)
        pool = set(codes.codes)
        for query in harness.sample_queries(codes, 10):
            assert query in pool

    def test_mean_search_ops(self):
        codes = CodeSet(random_codes(100, 16, seed=2), 16)
        index = DynamicHAIndex.build(codes)
        ops = harness.mean_search_ops(index, [codes[0], codes[1]], 2)
        assert ops > 0

    def test_record_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        harness.record("unit", "hello table\n")
        assert (tmp_path / "unit.txt").read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out

    def test_record_json_writes_file(self, tmp_path, monkeypatch):
        import json

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        path = harness.record_json("unit", {"a": 1})
        assert json.loads(path.read_text()) == {"a": 1}

    def test_profile_queries_accounts_ops(self):
        codes = CodeSet(random_codes(200, 16, seed=3), 16)
        index = DynamicHAIndex.build(codes)
        queries = [codes[0], codes[1], codes[2]]
        phases = harness.profile_queries(index, queries, 2)
        assert "h_search" in phases
        assert "h_search.level" in phases
        # Per-phase ops across the sweep sum to the per-query totals.
        total = sum(entry["ops"] for entry in phases.values())
        expected = harness.mean_search_ops(index, queries, 2) * len(queries)
        assert total == expected


class TestCollectExperiments:
    def test_build_mentions_every_exhibit(self):
        text = collect_experiments.build()
        for exhibit in (
            "Table 4", "Table 5", "Figure 6", "Figure 7",
            "Figure 8", "Figure 9", "Figure 10",
        ):
            assert exhibit in text

    def test_missing_table_noted(self, monkeypatch, tmp_path):
        monkeypatch.setattr(collect_experiments, "RESULTS", tmp_path)
        text = collect_experiments.build()
        assert "missing" in text

    def test_embeds_existing_results(self):
        if not (collect_experiments.RESULTS / "table4_nuswide.txt").exists():
            pytest.skip("bench results not generated yet")
        text = collect_experiments.build()
        assert "DHA-Index" in text

    def test_main_stdout(self, capsys):
        assert collect_experiments.main(["--stdout"]) == 0
        assert "EXPERIMENTS" in capsys.readouterr().out
