"""Tests for the batched MapReduce Hamming-select."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.data.synthetic import nuswide_like
from repro.distributed.hamming_select import mapreduce_hamming_select
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime


@pytest.fixture(scope="module")
def select_workload():
    dataset = nuswide_like(350, seed=61)
    records = list(zip(range(len(dataset)), dataset.vectors))
    queries = [(100 + i, dataset.vectors[i]) for i in range(6)]
    return records, queries


def _run(records, queries, threshold=3, workers=4):
    runtime = MapReduceRuntime(Cluster(workers))
    report = mapreduce_hamming_select(
        runtime, records, queries, threshold,
        num_bits=20, sample_size=150,
    )
    return runtime, report


class TestBatchSelect:
    def test_matches_centralized_select(self, select_workload):
        records, queries = select_workload
        runtime, report = _run(records, queries)
        hasher = runtime.cluster.cached("hamming.hash")
        dataset_codes = hasher.encode(
            np.asarray([v for _, v in records])
        )
        query_codes = hasher.encode(np.asarray([v for _, v in queries]))
        for (query_id, _), code in zip(queries, query_codes):
            expected = sorted(
                tuple_id
                for tuple_id, stored in zip(
                    [r_id for r_id, _ in records], dataset_codes.codes
                )
                if (stored ^ code).bit_count() <= 3
            )
            assert report.matches[query_id] == expected

    def test_every_query_answered(self, select_workload):
        records, queries = select_workload
        _, report = _run(records, queries)
        assert set(report.matches) == {query_id for query_id, _ in queries}

    def test_worker_count_does_not_change_answers(self, select_workload):
        records, queries = select_workload
        _, narrow = _run(records, queries, workers=2)
        _, wide = _run(records, queries, workers=8)
        assert narrow.matches == wide.matches

    def test_report_accounting(self, select_workload):
        records, queries = select_workload
        _, report = _run(records, queries)
        assert report.shuffle_bytes > 0
        assert report.total_seconds > 0

    def test_rejects_empty_queries(self, select_workload):
        records, _ = select_workload
        runtime = MapReduceRuntime(Cluster(2))
        with pytest.raises(InvalidParameterError):
            mapreduce_hamming_select(runtime, records, [], 3)

    def test_rejects_negative_threshold(self, select_workload):
        records, queries = select_workload
        runtime = MapReduceRuntime(Cluster(2))
        with pytest.raises(InvalidParameterError):
            mapreduce_hamming_select(runtime, records, queries, -1)
