"""Cross-component consistency: the distributed operators agree.

The batched Hamming-select and the Hamming-join are independent
pipelines over the same preprocessing (same sample seed -> same learned
hash -> same codes), so a self-join's pairs must be derivable from a
batch select of every tuple against the dataset.  Divergence would
indicate the pipelines see different code populations.
"""

from __future__ import annotations

import pytest

from repro.data.synthetic import nuswide_like
from repro.distributed.hamming_join import mapreduce_hamming_join
from repro.distributed.hamming_select import mapreduce_hamming_select
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime

THRESHOLD = 3
NUM_BITS = 20
SAMPLE = 120


@pytest.fixture(scope="module")
def consistent_runs():
    dataset = nuswide_like(240, seed=95)
    records = list(zip(range(len(dataset)), dataset.vectors))
    join_runtime = MapReduceRuntime(Cluster(4))
    join = mapreduce_hamming_join(
        join_runtime, records, records, THRESHOLD,
        num_bits=NUM_BITS, option="A", sample_size=SAMPLE, seed=0,
    )
    select_runtime = MapReduceRuntime(Cluster(4))
    select = mapreduce_hamming_select(
        select_runtime, records,
        [(record_id, vector) for record_id, vector in records],
        THRESHOLD, num_bits=NUM_BITS, sample_size=SAMPLE, seed=0,
    )
    return records, join, select


class TestJoinSelectAgreement:
    def test_same_hash_learned(self, consistent_runs):
        records, join, select = consistent_runs
        # Same seed + same records -> identical preprocessing output.
        assert len(join.pairs) > 0
        assert sum(len(v) for v in select.matches.values()) > 0

    def test_join_pairs_equal_select_matches(self, consistent_runs):
        records, join, select = consistent_runs
        from_select = {
            (r_id, s_id)
            for s_id, matched in select.matches.items()
            for r_id in matched
        }
        assert set(join.pairs) == from_select

    def test_select_is_reflexive(self, consistent_runs):
        """Every tuple matches itself at any non-negative threshold."""
        records, _, select = consistent_runs
        for record_id, _ in records:
            assert record_id in select.matches[record_id]

    def test_select_matches_symmetric(self, consistent_runs):
        """h-select of every tuple against the dataset is symmetric."""
        _, _, select = consistent_runs
        for query_id, matched in select.matches.items():
            for other in matched:
                assert query_id in select.matches[other]
