"""Differential and failure-path tests for the parallel scatter layer.

The contract under test: every pool backend — in-thread serial loop,
persistent thread pool, spawn-based process pool with memmap warm
starts — must be *observationally identical* to ``pool="serial"``:
byte-identical select/probe/knn/join answers, identical per-query op
counts, identical replica failover/hedge accounting under chaos, and
well-formed trace trees whose ``shard.dispatch`` children sit under
the scatter span in deterministic shard order.  On top of that, the
process pool's degradation paths (worker death, task timeout, stale
epochs, unpicklable engines) must fall back inline or raise typed
errors — never hang and never return wrong answers.
"""

from __future__ import annotations

import pickle
import random
import threading
import time

import pytest

from repro.core.bitvector import CodeSet
from repro.core.engines import ENGINES
from repro.core.errors import StoreError
from repro.data.workloads import cluster_codes
from repro.mapreduce.faults import ChaosPolicy
from repro.obs import reset
from repro.obs.trace import last_trace
from repro.service import (
    PoolTimeoutError,
    ShardedQueryService,
)
from repro.service.executor import (
    _TEST_SLEEP_OP,
    POOL_KINDS,
    ProcessShardExecutor,
    ShardTask,
    ThreadShardExecutor,
    default_pool_workers,
    make_executor,
    modelled_wall,
)

LENGTH = 16
PARALLEL_POOLS = ("thread", "process")


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


def make_codes(n=240, clusters=4, seed=2) -> CodeSet:
    rng = random.Random(seed)
    base = CodeSet([rng.getrandbits(LENGTH) for _ in range(n)], LENGTH)
    return cluster_codes(base, clusters)


def make_queries(codes: CodeSet, count=24, seed=5) -> list[int]:
    rng = random.Random(seed)
    members = [codes[rng.randrange(len(codes))] for _ in range(count)]
    return members + [
        query ^ (1 << rng.randrange(LENGTH)) for query in members[: count // 2]
    ]


def make_outer(codes: CodeSet, stride=23) -> CodeSet:
    outer_codes = codes.codes[::stride]
    return CodeSet(
        outer_codes,
        LENGTH,
        ids=[10_000 + i for i in range(len(outer_codes))],
    )


def pooled_service(codes, pool, **kwargs) -> ShardedQueryService:
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("cache_capacity", 0)
    kwargs.setdefault("pool_workers", 2)
    kwargs.setdefault("task_timeout", 60.0)
    return ShardedQueryService(codes, pool=pool, **kwargs)


def run_all_kinds(svc, codes, queries, outer):
    """One transcript of every query kind, as comparable values."""
    select = [svc.select(q, 3).value for q in queries]
    probe = [svc.probe(q ^ 1, 2).value for q in queries[::3]]
    knn = [svc.knn(q ^ 5, 5).value for q in queries[::5]]
    join = svc.join(outer, 2)
    return select, probe, knn, join


class TestPoolDifferential:
    """Parallel backends are byte-identical to the serial loop."""

    @pytest.mark.parametrize("pool", PARALLEL_POOLS)
    def test_all_query_kinds_match_serial(self, pool):
        codes = make_codes()
        queries = make_queries(codes)
        outer = make_outer(codes)
        with pooled_service(codes, "serial") as serial:
            expected = run_all_kinds(serial, codes, queries, outer)
        with pooled_service(codes, pool) as svc:
            got = run_all_kinds(svc, codes, queries, outer)
            stats = svc.shard_stats()
        assert got == expected
        assert stats.pool == pool
        assert stats.pool_workers == 2
        assert stats.pool_tasks > 0
        assert stats.pool_fallbacks == 0
        assert stats.pool_timeouts == 0

    @pytest.mark.parametrize("pool", PARALLEL_POOLS)
    def test_op_counts_match_serial(self, pool):
        """The pruning/op accounting story survives parallel dispatch:
        each backend performs exactly the same distance computations."""
        codes = make_codes()
        queries = make_queries(codes, count=12)

        def op_transcript(svc):
            transcript = []
            for query in queries:
                svc.select(query ^ 3, 3)
                transcript.append(last_trace().total_ops)
                svc.probe(query ^ 1, 2)
                transcript.append(last_trace().total_ops)
            return transcript

        with pooled_service(codes, "serial", trace_batches=True) as serial:
            expected = op_transcript(serial)
        with pooled_service(codes, pool, trace_batches=True) as svc:
            assert op_transcript(svc) == expected

    @pytest.mark.parametrize("pool", PARALLEL_POOLS)
    def test_chaos_failover_and_hedging_match_serial(self, pool):
        """Chaos-injected replication never changes answers, only
        routing.  The thread pool runs the exact serial replica walk,
        so its failover/hedge tallies must match the serial backend
        bit-for-bit; the process pool applies the same seeded seams to
        *worker* placement, where least-outstanding ordering legitimately
        reshuffles which candidates get probed — there we require the
        seams to fire without perturbing results."""
        codes = make_codes()
        queries = make_queries(codes)
        chaos = ChaosPolicy(seed=13, crash_prob=0.3, straggler_prob=0.3)
        with pooled_service(
            codes, "serial", replication=3, chaos=chaos
        ) as serial:
            expected = [serial.select(q ^ 1, 3).value for q in queries]
            ref = serial.shard_stats()
        assert ref.failovers > 0 and ref.hedges > 0
        with pooled_service(
            codes, pool, replication=3, chaos=chaos, pool_workers=3
        ) as svc:
            got = [svc.select(q ^ 1, 3).value for q in queries]
            stats = svc.shard_stats()
        assert got == expected
        if pool == "thread":
            assert (stats.failovers, stats.hedges) == (
                ref.failovers,
                ref.hedges,
            )
        else:
            assert stats.failovers > 0 and stats.hedges > 0

    @pytest.mark.parametrize("pool", PARALLEL_POOLS)
    def test_mutations_visible_through_pool(self, pool):
        """Epoch-tagged mutate broadcasts keep worker replicas exactly
        as fresh as the coordinator requires — an insert or delete is
        visible to the very next pooled scatter."""
        codes = make_codes()
        probe_code = codes[0] ^ 3
        with pooled_service(codes, pool) as svc:
            svc.insert(probe_code, 99_999)
            assert 99_999 in svc.select(probe_code, 0).value
            svc.delete(probe_code, 99_999)
            assert 99_999 not in svc.select(probe_code, 0).value
            svc.refresh(codes)
            assert 99_999 not in svc.select(probe_code, 0).value

    @pytest.mark.parametrize("pool", PARALLEL_POOLS)
    def test_set_pool_swaps_backend_live(self, pool):
        codes = make_codes()
        queries = make_queries(codes, count=8)
        outer = make_outer(codes)
        with pooled_service(codes, "serial") as svc:
            expected = run_all_kinds(svc, codes, queries, outer)
            svc.set_pool(pool, pool_workers=2, task_timeout=60.0)
            assert svc.pool == pool
            assert run_all_kinds(svc, codes, queries, outer) == expected
            svc.set_pool("serial")
            assert svc.pool == "serial"
            assert run_all_kinds(svc, codes, queries, outer) == expected

    def test_durable_store_process_warm_start(self, tmp_path):
        """Process workers warm-start each shard straight off the
        durable store's memmap snapshot + WAL tail (no pickling), and
        live mutations stay visible via epoch-tagged broadcasts."""
        codes = make_codes()
        data_dir = str(tmp_path / "shards")
        svc = ShardedQueryService(
            codes, num_shards=4, data_dir=data_dir, fsync=False,
            workers=1, cache_capacity=0,
        )
        queries = make_queries(codes, count=10)
        expected = [svc.select(q, 2).value for q in queries]
        svc.insert(codes[5] ^ 7, 77_777)
        svc.close()

        svc = ShardedQueryService.open(
            data_dir, fsync=False, pool="process", pool_workers=2,
            task_timeout=60.0, workers=1, cache_capacity=0,
        )
        try:
            assert [svc.select(q, 2).value for q in queries] == expected
            assert 77_777 in svc.select(codes[5] ^ 7, 0).value
            svc.insert(codes[9] ^ 9, 88_888)
            assert 88_888 in svc.select(codes[9] ^ 9, 0).value
            stats = svc.shard_stats()
            assert stats.pool == "process"
            assert stats.pool_fallbacks == 0
        finally:
            svc.close()


class TestEnginePickling:
    """Every registry engine either round-trips through pickle (so the
    process pool can ship it to workers) or the service refuses the
    process pool with a typed ``StoreError`` naming the engine."""

    @pytest.mark.parametrize("name", sorted(ENGINES))
    def test_engine_spec_pickle_round_trip(self, name):
        spec = ENGINES[name]
        codes = make_codes(n=120, clusters=3, seed=9)
        index = spec.builder(codes)
        queries = make_queries(codes, count=8, seed=11)
        try:
            payload = pickle.dumps(index, pickle.HIGHEST_PROTOCOL)
        except Exception:
            svc = ShardedQueryService(
                codes, num_shards=2, engine=name, workers=1,
                cache_capacity=0,
            )
            with svc:
                with pytest.raises(StoreError, match=name):
                    svc._worker_shard_specs()
            return
        clone = pickle.loads(payload)
        for query in queries:
            for threshold in (0, 2, 4):
                assert sorted(clone.search(query, threshold)) == sorted(
                    index.search(query, threshold)
                )

    @pytest.mark.parametrize("name", ["mih", "flat"])
    def test_non_dha_engine_serves_through_process_pool(self, name):
        """Pickle-mode shard shipping: non-DHA engines still answer
        byte-identically through spawned workers."""
        codes = make_codes()
        queries = make_queries(codes, count=10)
        with pooled_service(codes, "serial", engine=name) as serial:
            expected = [serial.select(q, 3).value for q in queries]
        with pooled_service(codes, "process", engine=name) as svc:
            assert [svc.select(q, 3).value for q in queries] == expected
            assert svc.shard_stats().pool_fallbacks == 0


class TestFailurePaths:
    """Timeouts, dead workers, and stale epochs degrade loudly."""

    def test_process_timeout_falls_back_inline(self):
        executor = ProcessShardExecutor(
            lambda: ({}, None), 2, task_timeout=0.5
        )
        try:
            tasks = [ShardTask(0, _TEST_SLEEP_OP, (30.0,), ())]
            values = executor.scatter(tasks, lambda task: "fell-back")
            assert values == ["fell-back"]
            tasks_n, fallbacks, timeouts = executor.counters()
            assert timeouts == 1
            assert fallbacks == 1
        finally:
            executor.close()

    def test_process_timeout_raises_without_fallback(self):
        executor = ProcessShardExecutor(
            lambda: ({}, None), 2, task_timeout=0.5, fallback=False
        )
        try:
            tasks = [ShardTask(0, _TEST_SLEEP_OP, (30.0,), ())]
            with pytest.raises(PoolTimeoutError):
                executor.scatter(tasks, lambda task: "unused")
        finally:
            executor.close()

    def test_thread_timeout_raises(self):
        executor = ThreadShardExecutor(2, task_timeout=0.3)
        try:
            tasks = [ShardTask(0, "noop", (), ())]
            with pytest.raises(PoolTimeoutError):
                executor.scatter(tasks, lambda task: time.sleep(30))
            assert executor.counters()[2] == 1
        finally:
            executor.close()

    def test_dead_worker_falls_back_inline(self):
        """A worker that dies mid-scatter is detected via EOF on its
        pipe; its tasks re-run inline and the answer is still right."""
        codes = make_codes()
        queries = make_queries(codes, count=6)
        with pooled_service(codes, "serial") as serial:
            expected = [serial.select(q, 3).value for q in queries]
        with pooled_service(codes, "process") as svc:
            executor = svc._executor
            for worker in executor._pool:
                worker.process.terminate()
                worker.process.join(timeout=10)
            got = [svc.select(q, 3).value for q in queries]
            stats = svc.shard_stats()
        assert got == expected
        assert stats.pool_fallbacks > 0


class TestSpanIntegrity:
    """Trace trees stay well-formed when the gather is concurrent."""

    @pytest.mark.parametrize("pool", POOL_KINDS)
    def test_dispatch_spans_attach_in_shard_order(self, pool):
        codes = make_codes()
        queries = make_queries(codes, count=10)
        with pooled_service(codes, pool, trace_batches=True) as svc:
            for query in queries:
                svc.select(query ^ 3, 3)
                trace = last_trace()
                scatters = trace.find("shard.scatter")
                assert scatters, "select must emit a scatter span"
                for scatter in scatters:
                    assert scatter.attrs["pool"] == pool
                    dispatches = [
                        child
                        for child in scatter.children
                        if child.name == "shard.dispatch"
                    ]
                    shards = [d.attrs["shard"] for d in dispatches]
                    assert shards == sorted(shards)
                    for dispatch in dispatches:
                        assert dispatch.attrs["pool"] == pool
                assert trace.find("shard.gather")

    def test_counters_atomic_under_concurrent_batches(self):
        """Hammer one thread-pooled service from many client threads;
        the pool task counter must equal the sum of per-scatter task
        counts (no lost updates) and latency stats must stay sane."""
        codes = make_codes()
        queries = make_queries(codes)
        svc = pooled_service(codes, "thread", workers=4)
        errors: list[Exception] = []

        def client(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(20):
                    query = queries[rng.randrange(len(queries))]
                    svc.select(query, rng.choice((1, 2, 3)))
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(seed,))
            for seed in range(6)
        ]
        with svc:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = svc.shard_stats()
            service = svc.stats()
        assert not errors
        # Micro-batching may coalesce several queries into one shard
        # task, so tasks is bounded by (never exceeds) contacted visits;
        # a lost counter update would break the lower bound of 1/visit
        # per scatter.
        assert 0 < stats.pool_tasks <= stats.shards_contacted
        assert service.executed > 0
        assert service.latency["p50_ms"] <= service.latency["p99_ms"]


class TestExecutorConstruction:
    def test_default_pool_workers_bounds(self):
        assert default_pool_workers(1) == 1
        assert default_pool_workers(0) == 1
        cores = max(1, __import__("os").cpu_count() or 1)
        assert default_pool_workers(64) == min(64, cores)

    def test_make_executor_rejects_unknown_pool(self):
        with pytest.raises(Exception):
            make_executor("fiber", workers=2)

    def test_process_pool_requires_spec_factory(self):
        with pytest.raises(Exception):
            make_executor("process", workers=2)

    def test_stats_render_includes_pool_line(self):
        codes = make_codes()
        with pooled_service(codes, "thread") as svc:
            svc.select(codes[0], 2)
            rendered = svc.shard_stats().render()
        assert "pool:" in rendered
        assert "thread x 2" in rendered


class TestPoolSeconds:
    """Busy/critical-path accounting behind the modelled-wall metric."""

    def test_modelled_wall_schedule(self):
        assert modelled_wall([], 4) == 0.0
        assert modelled_wall([2.0, 3.0], 1) == 5.0
        # Submission order, earliest-free worker: the long task pins one
        # worker while the four short ones chain on the other.
        assert modelled_wall([4.0, 1.0, 1.0, 1.0, 1.0], 2) == 4.0
        assert modelled_wall([1.0, 1.0, 1.0, 1.0], 4) == 1.0

    @pytest.mark.parametrize("pool", POOL_KINDS)
    def test_seconds_accumulate(self, pool):
        codes = make_codes()
        queries = make_queries(codes, count=12)
        with pooled_service(codes, pool) as svc:
            for query in queries:
                svc.select(query, 3)
            stats = svc.shard_stats()
        assert stats.pool_busy_seconds > 0.0
        assert stats.pool_critical_seconds > 0.0
        # The schedule can never beat perfect speedup or lose to serial.
        width = max(1, stats.pool_workers)
        assert stats.pool_critical_seconds <= stats.pool_busy_seconds + 1e-9
        assert (
            stats.pool_critical_seconds
            >= stats.pool_busy_seconds / width - 1e-9
        )
        if pool == "serial":
            assert stats.pool_critical_seconds == pytest.approx(
                stats.pool_busy_seconds
            )
        assert "busy" in stats.render()
