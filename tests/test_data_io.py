"""Tests for dataset / code-set persistence and CSV import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.data.containers import Dataset
from repro.data.io import (
    export_matches_csv,
    export_pairs_csv,
    load_codes,
    load_dataset,
    load_vectors_csv,
    save_codes,
    save_dataset,
)
from repro.data.synthetic import random_codes


class TestDatasetRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = Dataset(
            np.random.default_rng(1).normal(size=(20, 5)),
            name="roundtrip",
            ids=range(100, 120),
        )
        path = tmp_path / "data.npz"
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert loaded.name == "roundtrip"
        assert loaded.ids == original.ids
        assert np.array_equal(loaded.vectors, original.vectors)

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(InvalidParameterError):
            load_dataset(path)


class TestCodesRoundtrip:
    def test_roundtrip_short_codes(self, tmp_path):
        codes = CodeSet(random_codes(50, 24, seed=2), 24, ids=range(50))
        path = tmp_path / "codes.npz"
        save_codes(codes, path)
        assert load_codes(path) == codes

    def test_roundtrip_wide_codes(self, tmp_path):
        codes = CodeSet(random_codes(30, 130, seed=3), 130)
        path = tmp_path / "wide.npz"
        save_codes(codes, path)
        loaded = load_codes(path)
        assert loaded.length == 130
        assert loaded.codes == codes.codes

    def test_rejects_dataset_file(self, tmp_path):
        dataset = Dataset(np.zeros((2, 2)))
        path = tmp_path / "data.npz"
        save_dataset(dataset, path)
        with pytest.raises(InvalidParameterError):
            load_codes(path)


class TestCsv:
    def test_load_plain_matrix(self, tmp_path):
        path = tmp_path / "plain.csv"
        path.write_text("1.0,2.0\n3.0,4.0\n")
        dataset = load_vectors_csv(path)
        assert dataset.vectors.tolist() == [[1.0, 2.0], [3.0, 4.0]]
        assert dataset.name == "plain"

    def test_load_with_header_and_ids(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("id,x,y\n7,1.5,2.5\n9,3.5,4.5\n")
        dataset = load_vectors_csv(path, has_header=True, id_column=0)
        assert dataset.ids == (7, 9)
        assert dataset.vectors.tolist() == [[1.5, 2.5], [3.5, 4.5]]

    def test_load_custom_delimiter(self, tmp_path):
        path = tmp_path / "tabs.tsv"
        path.write_text("1\t2\n")
        dataset = load_vectors_csv(path, delimiter="\t")
        assert dataset.dimensions == 2

    def test_load_empty_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(InvalidParameterError):
            load_vectors_csv(path)

    def test_export_pairs(self, tmp_path):
        path = tmp_path / "pairs.csv"
        written = export_pairs_csv([(1, 2), (3, 4)], path)
        assert written == 2
        assert path.read_text().splitlines() == [
            "left_id,right_id", "1,2", "3,4",
        ]

    def test_export_matches(self, tmp_path):
        path = tmp_path / "matches.csv"
        written = export_matches_csv({2: [5], 1: [3, 4]}, path)
        assert written == 3
        lines = path.read_text().splitlines()
        assert lines[0] == "query_id,match_id"
        assert lines[1:] == ["1,3", "1,4", "2,5"]

    def test_csv_to_pipeline(self, tmp_path):
        """CSV -> Dataset -> hash -> index, end to end."""
        from repro.core.dynamic_ha import DynamicHAIndex
        from repro.hashing.hyperplane import HyperplaneHash

        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(40, 6))
        path = tmp_path / "features.csv"
        path.write_text(
            "\n".join(",".join(f"{v:.6f}" for v in row) for row in matrix)
        )
        dataset = load_vectors_csv(path)
        codes = dataset.encode(HyperplaneHash(16, seed=1).fit(dataset.vectors))
        index = DynamicHAIndex.build(codes)
        assert len(index) == 40
