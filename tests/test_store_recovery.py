"""Kill-point and corruption crash-loop tests for the durable store.

The fast lane subsamples kill steps so the default suite stays quick;
the ``slow`` lane runs the full matrix — every gated I/O step, with and
without torn trailing writes, plus the seeded corruption scenarios —
and enforces the >= 200-scenario acceptance bar: recovery never raises
and the recovered index always answers exactly like the never-crashed
oracle.
"""

from __future__ import annotations

import pytest

from repro.store.faults import KillPointInjector, SimulatedCrash
from repro.store.harness import (
    build_oracle,
    enumerate_steps,
    make_script,
    run_crash_loop,
    run_script,
    verify_recovery,
)


class TestHarnessPieces:
    def test_clean_run_matches_oracle(self, tmp_path):
        script = make_script(seed=3)
        acknowledged = run_script(tmp_path / "d", script)
        assert acknowledged == len(script.ops)
        failures: list[str] = []
        verify_recovery(
            tmp_path / "d",
            script,
            label="clean",
            failures=failures,
            acknowledged=acknowledged,
        )
        assert failures == []

    def test_oracle_prefix_sizes(self):
        script = make_script(seed=1)
        full = build_oracle(script, len(script.ops))
        empty = build_oracle(script, 0)
        assert len(empty) == len(script.base)
        inserts = sum(1 for op in script.ops if op[0] == "insert")
        deletes = len(script.ops) - inserts
        assert len(full) == len(script.base) + inserts - deletes

    def test_injector_crashes_at_requested_step(self, tmp_path):
        script = make_script(seed=2)
        sites = enumerate_steps(script, tmp_path)
        assert "wal.fsync" in sites
        assert any(site.startswith("snapshot.") for site in sites)
        injector = KillPointInjector(kill_step=5)
        with pytest.raises(SimulatedCrash) as crash:
            run_script(tmp_path / "d", script, injector)
        assert crash.value.step == 5
        assert crash.value.site == sites[5]

    def test_every_fsync_and_rename_site_is_gated(self, tmp_path):
        sites = set(enumerate_steps(make_script(seed=0), tmp_path))
        assert {
            "wal.record",
            "wal.fsync",
            "wal.header",
            "wal.header_fsync",
            "snapshot.write",
            "snapshot.fsync",
            "snapshot.rename",
        } <= sites
        assert any(site.startswith("prune.unlink") for site in sites)


class TestCrashLoopFast:
    """Strided smoke lane: bounded subset of the full matrix."""

    def test_strided_kill_points_and_corruption(self, tmp_path):
        report = run_crash_loop(
            tmp_path,
            seed=11,
            kill_stride=7,
            corruption_flips=9,
            truncations=2,
        )
        assert report.kill_points >= 20
        assert report.corruptions >= 10
        assert report.ok, "\n".join(report.failures)


@pytest.mark.slow
class TestCrashLoopFull:
    """The full >= 200-scenario acceptance matrix."""

    def test_every_kill_point_and_corruption(self, tmp_path):
        report = run_crash_loop(tmp_path, seed=0)
        assert report.scenarios >= 200, report.scenarios
        assert report.kill_points >= 150
        assert report.corruptions >= 40
        assert report.ok, "\n".join(report.failures)

    def test_second_seed(self, tmp_path):
        report = run_crash_loop(
            tmp_path,
            seed=1,
            kill_stride=3,
            corruption_flips=12,
            truncations=4,
        )
        assert report.ok, "\n".join(report.failures)
