"""Unit tests for the MapReduce substrate."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    InvalidParameterError,
    JobConfigurationError,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    BROADCAST_BYTES,
    MAP_INPUT_RECORDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_BYTES,
    SHUFFLE_RECORDS,
    Counters,
)
from repro.mapreduce.hashjoin import mapreduce_hash_join
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioner import RangePartitioner, hash_partitioner
from repro.mapreduce.runtime import MapReduceRuntime, _wall_clock
from repro.mapreduce.types import InputSplit, make_splits, record_bytes


def _word_count_jobs():
    def mapper(key, value, context):
        for word in value.split():
            yield word, 1

    def reducer(key, values, context):
        yield key, sum(values)

    return mapper, reducer


class TestTypes:
    def test_record_bytes_positive_and_monotone(self):
        small = record_bytes((1, "a"))
        large = record_bytes((1, "a" * 1000))
        assert 0 < small < large

    def test_make_splits_balanced(self):
        splits = make_splits([(i, i) for i in range(10)], 3)
        sizes = sorted(len(split) for split in splits)
        assert sizes == [3, 3, 4]
        assert sorted(
            record for split in splits for record in split
        ) == [(i, i) for i in range(10)]

    def test_make_splits_more_splits_than_records(self):
        splits = make_splits([(0, 0)], 4)
        assert len(splits) == 1

    def test_make_splits_empty(self):
        assert len(make_splits([], 4)) == 1

    def test_split_repr(self):
        assert "n=2" in repr(InputSplit(0, [(1, 1), (2, 2)]))


class TestCounters:
    def test_add_and_get(self):
        counters = Counters()
        counters.add("x", 5)
        counters.add("x")
        assert counters.get("x") == 6
        assert counters.get("missing") == 0

    def test_merge(self):
        a, b = Counters(), Counters()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.as_dict() == {"x": 3, "y": 3}

    def test_total_shuffle_includes_broadcast(self):
        counters = Counters()
        counters.add(SHUFFLE_BYTES, 10)
        counters.add(BROADCAST_BYTES, 7)
        assert counters.total_shuffle_bytes == 17


class TestPartitioners:
    def test_hash_partitioner_int_identity_mod(self):
        assert hash_partitioner(13, 4) == 1

    def test_hash_partitioner_stable_for_strings(self):
        assert hash_partitioner("abc", 7) == hash_partitioner("abc", 7)

    def test_range_partitioner_boundaries(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner.num_partitions == 3
        assert partitioner(5, 3) == 0
        assert partitioner(10, 3) == 1
        assert partitioner(19, 3) == 1
        assert partitioner(25, 3) == 2

    def test_range_partitioner_clamps_to_num_partitions(self):
        partitioner = RangePartitioner([10, 20])
        assert partitioner(25, 2) == 1

    def test_range_partitioner_rejects_unsorted(self):
        with pytest.raises(InvalidParameterError):
            RangePartitioner([5, 3])

    def test_range_partitioner_allows_duplicates(self):
        partitioner = RangePartitioner([5, 5])
        assert partitioner(5, 3) == 2  # lands after both boundaries


class TestCluster:
    def test_broadcast_and_fetch(self):
        cluster = Cluster(4)
        cluster.broadcast("pi", 3.14)
        assert cluster.cached("pi") == 3.14

    def test_broadcast_charges_per_worker(self):
        cluster = Cluster(4)
        cluster.broadcast("obj", "x" * 100)
        single = Cluster(1)
        single.broadcast("obj", "x" * 100)
        assert cluster.counters.get(BROADCAST_BYTES) == 4 * single.counters.get(
            BROADCAST_BYTES
        )

    def test_missing_cache_raises(self):
        with pytest.raises(InvalidParameterError):
            Cluster(2).cached("nope")

    def test_rejects_zero_workers(self):
        with pytest.raises(InvalidParameterError):
            Cluster(0)

    def test_clear_cache(self):
        cluster = Cluster(2)
        cluster.broadcast("a", 1)
        cluster.clear_cache()
        with pytest.raises(InvalidParameterError):
            cluster.cached("a")


class TestJobSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(JobConfigurationError):
            MapReduceJob(name="")

    def test_rejects_bad_reducers(self):
        with pytest.raises(JobConfigurationError):
            MapReduceJob(name="x", num_reducers=0)


class TestRuntime:
    def test_word_count(self):
        mapper, reducer = _word_count_jobs()
        runtime = MapReduceRuntime(Cluster(3))
        job = MapReduceJob(name="wc", mapper=mapper, reducer=reducer)
        result = runtime.run(
            job, [(0, "a b a"), (1, "b c"), (2, "a")]
        )
        assert dict(result.output) == {"a": 3, "b": 2, "c": 1}

    def test_combiner_reduces_shuffle(self):
        mapper, reducer = _word_count_jobs()
        records = [(i, "w w w w") for i in range(8)]
        plain = MapReduceRuntime(Cluster(2)).run(
            MapReduceJob(name="p", mapper=mapper, reducer=reducer), records
        )
        combined = MapReduceRuntime(Cluster(2)).run(
            MapReduceJob(
                name="c", mapper=mapper, reducer=reducer, combiner=reducer
            ),
            records,
        )
        assert dict(combined.output) == dict(plain.output)
        assert combined.counters.get(SHUFFLE_RECORDS) < plain.counters.get(
            SHUFFLE_RECORDS
        )
        assert combined.counters.get(SHUFFLE_BYTES) < plain.counters.get(
            SHUFFLE_BYTES
        )

    def test_counters_populated(self):
        mapper, reducer = _word_count_jobs()
        runtime = MapReduceRuntime(Cluster(2))
        result = runtime.run(
            MapReduceJob(name="wc", mapper=mapper, reducer=reducer),
            [(0, "x y"), (1, "z")],
        )
        assert result.counters.get(MAP_INPUT_RECORDS) == 2
        assert result.counters.get(SHUFFLE_RECORDS) == 3
        assert result.counters.get(REDUCE_OUTPUT_RECORDS) == 3
        assert result.shuffle_bytes > 0

    def test_cluster_accumulates_counters(self):
        mapper, reducer = _word_count_jobs()
        cluster = Cluster(2)
        runtime = MapReduceRuntime(cluster)
        job = MapReduceJob(name="wc", mapper=mapper, reducer=reducer)
        runtime.run(job, [(0, "x")])
        runtime.run(job, [(0, "x")])
        assert cluster.counters.get(MAP_INPUT_RECORDS) == 2

    def test_distributed_cache_visible_in_tasks(self):
        cluster = Cluster(2)
        cluster.broadcast("factor", 10)

        def mapper(key, value, context):
            yield key, value * context.cached("factor")

        runtime = MapReduceRuntime(cluster)
        result = runtime.run(
            MapReduceJob(name="scale", mapper=mapper), [(0, 1), (1, 2)]
        )
        assert sorted(value for _, value in result.output) == [10, 20]

    def test_custom_partitioner_routes_keys(self):
        seen_groups = []

        def reducer(key, values, context):
            seen_groups.append((key, sorted(values)))
            return ()

        runtime = MapReduceRuntime(Cluster(2))
        job = MapReduceJob(
            name="route",
            reducer=reducer,
            partitioner=lambda key, n: 0,
            num_reducers=2,
        )
        runtime.run(job, [(1, "a"), (2, "b"), (1, "c")])
        assert sorted(seen_groups) == [(1, ["a", "c"]), (2, ["b"])]

    def test_prebuilt_splits_accepted(self):
        mapper, reducer = _word_count_jobs()
        runtime = MapReduceRuntime(Cluster(2))
        splits = [InputSplit(0, [(0, "a")]), InputSplit(1, [(1, "a")])]
        result = runtime.run(
            MapReduceJob(name="wc", mapper=mapper, reducer=reducer), splits
        )
        assert dict(result.output) == {"a": 2}
        assert len(result.map_task_seconds) == 2

    def test_simulated_time_includes_overhead(self):
        from repro.mapreduce.runtime import JOB_OVERHEAD_SECONDS

        runtime = MapReduceRuntime(Cluster(2))
        result = runtime.run(MapReduceJob(name="noop"), [])
        assert result.simulated_seconds >= JOB_OVERHEAD_SECONDS

    def test_shuffle_transfer_time_modelled(self):
        """Shuffled bytes add bandwidth-modelled transfer time."""
        cluster = Cluster(2, bandwidth_bytes_per_second=1000.0)
        runtime = MapReduceRuntime(cluster)

        def mapper(key, value, context):
            yield key, value

        result = runtime.run(
            MapReduceJob(name="move", mapper=mapper), [(0, "x" * 500)]
        )
        expected = result.counters.get(SHUFFLE_BYTES) / 1000.0
        assert result.shuffle_transfer_seconds == pytest.approx(expected)
        assert result.simulated_seconds > expected

    def test_wall_clock_is_max_over_workers(self):
        # Tasks [3, 1, 1, 1] on 2 workers round-robin: w0 = 3+1, w1 = 1+1.
        assert _wall_clock([3.0, 1.0, 1.0, 1.0], 2) == 4.0
        assert _wall_clock([], 4) == 0.0

    def test_skew_shows_in_wall_clock(self):
        """One giant reduce group stretches the simulated wall clock."""

        def mapper(key, value, context):
            yield value, key

        def reducer(key, values, context):
            total = 0
            for value in values:
                total += value * value
            yield key, total

        skewed = [(i, 0) for i in range(2000)]
        balanced = [(i, i % 8) for i in range(2000)]
        runtime = MapReduceRuntime(Cluster(8))
        job = MapReduceJob(name="skew", mapper=mapper, reducer=reducer)
        time_skewed = runtime.run(job, skewed).reduce_wall_seconds
        time_balanced = runtime.run(job, balanced).reduce_wall_seconds
        # All work lands on one reducer vs. spread over eight.
        assert time_skewed > time_balanced

    def test_unsortable_keys_grouped_by_repr(self):
        def mapper(key, value, context):
            yield value, 1

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="mixed", mapper=mapper),
            [(0, "a"), (1, 2), (2, "a")],
        )
        assert len(result.output) == 3


class TestHashJoin:
    def test_basic_join(self):
        runtime = MapReduceRuntime(Cluster(2))
        result = mapreduce_hash_join(
            runtime,
            [(1, "r1"), (2, "r2")],
            [(1, "s1"), (1, "s2"), (3, "s3")],
        )
        assert sorted(result.output) == [
            (1, ("r1", "s1")),
            (1, ("r1", "s2")),
        ]

    def test_many_to_many(self):
        runtime = MapReduceRuntime(Cluster(2))
        result = mapreduce_hash_join(
            runtime, [(1, "a"), (1, "b")], [(1, "x"), (1, "y")]
        )
        assert len(result.output) == 4

    def test_empty_sides(self):
        runtime = MapReduceRuntime(Cluster(2))
        assert mapreduce_hash_join(runtime, [], [(1, "x")]).output == []
        assert mapreduce_hash_join(runtime, [(1, "x")], []).output == []


class TestInputHandling:
    def test_num_splits_respected(self):
        runtime = MapReduceRuntime(Cluster(2))
        result = runtime.run(
            MapReduceJob(name="noop"),
            [(i, i) for i in range(10)],
            num_splits=5,
        )
        assert len(result.map_task_seconds) == 5

    def test_mixed_splits_and_records_rejected(self):
        runtime = MapReduceRuntime(Cluster(2))
        mixed = [InputSplit(0, [(0, 0)]), (1, 1)]
        with pytest.raises(JobConfigurationError):
            runtime.run(MapReduceJob(name="mixed"), mixed)

    def test_empty_input_produces_empty_output(self):
        runtime = MapReduceRuntime(Cluster(3))
        result = runtime.run(MapReduceJob(name="empty"), [])
        assert result.output == []
        assert result.counters.get(MAP_INPUT_RECORDS) == 0
