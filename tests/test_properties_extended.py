"""Extended property-based tests: relational operators, merge,
MapReduce determinism, serialization, and wide codes."""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import CodeSet, hamming_distance
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.relational import (
    hamming_difference,
    hamming_distinct,
    hamming_intersect,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime

LENGTH = 12
codes12 = st.integers(min_value=0, max_value=(1 << LENGTH) - 1)
code_lists = st.lists(codes12, min_size=1, max_size=40)
thresholds = st.integers(min_value=0, max_value=LENGTH)


class TestRelationalProperties:
    @settings(max_examples=30, deadline=None)
    @given(code_lists, code_lists, thresholds)
    def test_intersect_difference_partition_left(self, left, right, h):
        left_set = CodeSet(left, LENGTH)
        right_set = CodeSet(right, LENGTH)
        inside = hamming_intersect(left_set, right_set, h)
        outside = hamming_difference(left_set, right_set, h)
        assert sorted(inside + outside) == sorted(left_set.ids)

    @settings(max_examples=30, deadline=None)
    @given(code_lists, code_lists, thresholds)
    def test_intersect_matches_definition(self, left, right, h):
        left_set = CodeSet(left, LENGTH)
        right_set = CodeSet(right, LENGTH)
        got = set(hamming_intersect(left_set, right_set, h))
        expected = {
            i
            for i, code in enumerate(left)
            if any(hamming_distance(code, other) <= h for other in right)
        }
        assert got == expected

    @settings(max_examples=30, deadline=None)
    @given(code_lists, thresholds)
    def test_distinct_is_maximal_and_spread(self, codes, h):
        codeset = CodeSet(codes, LENGTH)
        kept = hamming_distinct(codeset, h)
        kept_codes = [codes[i] for i in kept]
        # Spread: no two kept codes within h.
        for i, a in enumerate(kept_codes):
            for b in kept_codes[i + 1 :]:
                assert hamming_distance(a, b) > h
        # Maximal: every dropped code is covered by a kept one.
        kept_set = set(kept)
        for i, code in enumerate(codes):
            if i not in kept_set:
                assert any(
                    hamming_distance(code, keeper) <= h
                    for keeper in kept_codes
                )


class TestMergeProperties:
    @settings(max_examples=25, deadline=None)
    @given(code_lists, code_lists, codes12, thresholds)
    def test_merged_index_equals_monolithic(self, a, b, query, h):
        left = DynamicHAIndex.build(CodeSet(a, LENGTH))
        right = DynamicHAIndex.build(
            CodeSet(b, LENGTH, ids=range(1000, 1000 + len(b)))
        )
        merged = DynamicHAIndex.merge([left, right])
        expected = sorted(
            [i for i, c in enumerate(a) if hamming_distance(c, query) <= h]
            + [
                1000 + i
                for i, c in enumerate(b)
                if hamming_distance(c, query) <= h
            ]
        )
        assert sorted(merged.search(query, h)) == expected

    @settings(max_examples=20, deadline=None)
    @given(code_lists, codes12, thresholds)
    def test_pickle_preserves_answers(self, codes, query, h):
        index = DynamicHAIndex.build(CodeSet(codes, LENGTH), window=3)
        clone = pickle.loads(pickle.dumps(index))
        assert sorted(clone.search(query, h)) == sorted(
            index.search(query, h)
        )

    @settings(max_examples=20, deadline=None)
    @given(code_lists, codes12, thresholds)
    def test_contains_within_matches_search(self, codes, query, h):
        index = DynamicHAIndex.build(CodeSet(codes, LENGTH))
        assert index.contains_within(query, h) == bool(
            index.search(query, h)
        )


class TestMapReduceProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.integers(min_value=-100, max_value=100),
            ),
            max_size=40,
        ),
        st.integers(min_value=1, max_value=6),
    )
    def test_sum_by_key_independent_of_cluster_shape(self, records, workers):
        """Grouping results are invariant to worker/split counts."""

        def mapper(key, value, context):
            yield key, value

        def reducer(key, values, context):
            yield key, sum(values)

        job = MapReduceJob(name="sum", mapper=mapper, reducer=reducer)
        wide = MapReduceRuntime(Cluster(workers)).run(job, list(records))
        narrow = MapReduceRuntime(Cluster(1)).run(job, list(records))
        assert sorted(wide.output) == sorted(narrow.output)

    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10),
                st.text(max_size=5),
            ),
            max_size=30,
        )
    )
    def test_combiner_never_changes_the_answer(self, records):
        """count-by-key with and without a combiner agree."""

        def mapper(key, value, context):
            yield value, 1

        def reducer(key, values, context):
            yield key, sum(values)

        plain = MapReduceRuntime(Cluster(3)).run(
            MapReduceJob(name="plain", mapper=mapper, reducer=reducer),
            list(records),
        )
        combined = MapReduceRuntime(Cluster(3)).run(
            MapReduceJob(
                name="combined",
                mapper=mapper,
                reducer=reducer,
                combiner=reducer,
            ),
            list(records),
        )
        assert sorted(plain.output) == sorted(combined.output)


class TestWideCodeProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=(1 << 100) - 1),
            min_size=1,
            max_size=25,
        ),
        st.integers(min_value=0, max_value=(1 << 100) - 1),
        st.integers(min_value=0, max_value=40),
    )
    def test_wide_dha_matches_oracle(self, codes, query, h):
        index = DynamicHAIndex.build(CodeSet(codes, 100), window=3)
        expected = sorted(
            i
            for i, code in enumerate(codes)
            if hamming_distance(code, query) <= h
        )
        assert sorted(index.search(query, h)) == expected


class TestCountProperties:
    @settings(max_examples=25, deadline=None)
    @given(code_lists, codes12, thresholds)
    def test_count_equals_search_cardinality(self, codes, query, h):
        index = DynamicHAIndex.build(CodeSet(codes, LENGTH), window=3)
        assert index.count_within(query, h) == len(index.search(query, h))

    @settings(max_examples=25, deadline=None)
    @given(code_lists, codes12)
    def test_count_monotone_in_threshold(self, codes, query):
        index = DynamicHAIndex.build(CodeSet(codes, LENGTH))
        counts = [
            index.count_within(query, h) for h in range(LENGTH + 1)
        ]
        assert counts == sorted(counts)
        assert counts[-1] == len(codes)
