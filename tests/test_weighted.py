"""The weighted Hamming plane: quantization, bounds, and plumbing.

The differential suite (``test_engine_differential.py``) owns the
broad oracle sweep; this file pins the sharp edges:

* 16.16 fixed-point quantization and ``Weights`` validation;
* re-rank kNN completeness at the weighted-radius boundary — a nearer
  code *outside* the swept radius, and an exact tie *at* the bound
  ``min(w) * (radius + 1)``, must both survive (a naive
  count-candidates stop returns the wrong neighbor on these corpora);
* zero-weight and uniform-weight degeneration;
* the CodeSet weight plumbing (subset / pickle / shard builders);
* span-vs-ops accounting for weighted queries;
* service and CLI integration smoke.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.core.join import hamming_join, nested_loops_join
from repro.core.weighted import (
    SCALE,
    WeightedHammingIndex,
    Weights,
    as_weights,
    learned_weights,
    random_weights,
    uniform_weights,
    weighted_hamming,
    weighted_select,
)


def _scaled_oracle(codes, weights, query):
    return [weights.distance_scaled(code, query) for code in codes]


# -- Weights: quantization and validation -------------------------------


def test_weights_quantize_to_fixed_point():
    w = Weights([1.0, 0.5, 0.25, 1.5])
    assert w.scaled.tolist() == [SCALE, SCALE // 2, SCALE // 4,
                                 3 * SCALE // 2]
    assert w.values.tolist() == [1.0, 0.5, 0.25, 1.5]
    assert w.min_scaled == SCALE // 4
    assert w.total_scaled == sum(w.scaled.tolist())
    assert w.length == 4


def test_weights_distance_is_exact_integer_arithmetic():
    w = Weights([2.0, 1.0, 0.5])
    # codes are 3-bit; string position 0 is the most significant bit.
    assert w.distance_scaled(0b100, 0b000) == 2 * SCALE
    assert w.distance_scaled(0b001, 0b000) == SCALE // 2
    assert w.distance_scaled(0b111, 0b000) == 7 * SCALE // 2
    assert weighted_hamming(0b111, 0b000, [2.0, 1.0, 0.5]) == 3.5
    assert w.distance(0b101, 0b000) == 2.5


def test_weights_validation():
    with pytest.raises(InvalidParameterError):
        Weights([1.0, -0.5])
    with pytest.raises(InvalidParameterError):
        Weights([1.0, float("nan")])
    with pytest.raises(InvalidParameterError):
        Weights([1.0, float("inf")])
    with pytest.raises(InvalidParameterError):
        Weights([])
    with pytest.raises(InvalidParameterError):
        Weights([[1.0, 2.0]])
    with pytest.raises(InvalidParameterError):
        as_weights([1.0, 2.0], 3)  # length mismatch
    assert as_weights(None, 3) == uniform_weights(3)


def test_uniform_detection_and_implied_radius():
    assert uniform_weights(8).is_uniform_unit
    assert not Weights([1.0] * 7 + [1.5]).is_uniform_unit
    w = Weights([0.5] * 8)
    # wd <= 2.0 implies hd <= 4 when every weight is 0.5.
    assert w.implied_radius(2.0, 8) == 4
    assert w.implied_radius(100.0, 8) == 8  # capped at the width
    zero_floor = Weights([0.0] + [1.0] * 7)
    assert zero_floor.implied_radius(1.0, 8) == 8  # unbounded -> cap


def test_weights_equality_pickle_and_helpers():
    w = Weights([0.25, 1.0, 2.0])
    assert pickle.loads(pickle.dumps(w)) == w
    assert hash(Weights([0.25, 1.0, 2.0])) == hash(w)
    assert random_weights(16, seed=3) == random_weights(16, seed=3)
    assert random_weights(16, seed=3) != random_weights(16, seed=4)
    codes = CodeSet([0b1100, 0b1010, 0b1001, 0b1111], 4)
    learned = learned_weights(codes)
    # Position 0 is constant across the corpus -> (near-)zero weight,
    # floored at one fixed-point quantum to keep the vector positive.
    assert learned.scaled[0] == 1
    assert all(learned.scaled[1:] > 1)


def test_hashing_bit_weights_surface():
    from repro.data.synthetic import PAPER_DATASETS
    from repro.hashing.spectral import SpectralHash

    dataset = PAPER_DATASETS["NUS-WIDE"](300, seed=1)
    hasher = SpectralHash(16).fit(dataset.vectors)
    weights = hasher.bit_weights(dataset.vectors)
    assert len(weights) == 16
    assert all(w > 0 for w in weights)
    assert weights == tuple(
        learned_weights(dataset.encode(hasher)).values.tolist()
    )


# -- re-rank kNN at the weighted-radius boundary ------------------------


def test_rerank_knn_finds_nearer_code_beyond_swept_radius():
    """A code outside the unweighted radius can still be the 1-NN.

    Weights: four heavy bits (4.0) then four light bits (0.5).  The
    hd-1 code costs 4.0; the hd-4 code costs 2.0.  The first re-rank
    round (radius 2) only sees the expensive code — stopping on
    candidate *count* would return it.  The completeness bound
    ``min(w) * (radius + 1) = 1.5`` admits no such stop, so the loop
    widens and finds the true neighbor.
    """
    weights = Weights([4.0] * 4 + [0.5] * 4)
    codes = [
        0b10000000,  # id 0: hd 1, wd 4.0
        0b00001111,  # id 1: hd 4, wd 2.0  <- true 1-NN
        0b11111111,  # id 2: filler, wd 18.0
        0b11110000,  # id 3: filler, hd 4, wd 16.0
    ]
    index = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet(codes, 8)),
        weights=weights, strategy="rerank",
    )
    assert index.knn_search(0, 1) == [(1, 2.0)]
    assert index.knn_search(0, 2) == [(1, 2.0), (0, 4.0)]


def test_rerank_knn_tie_exactly_at_the_completeness_bound():
    """An exact tie at ``min(w) * (radius + 1)`` forces another round.

    The in-radius candidate and an out-of-radius code both cost 1.5 —
    exactly the round's completeness bound.  Stopping on ``<=`` would
    return the in-radius candidate (id 5); the strict ``<`` widens the
    sweep, and (distance, id) ranking then prefers id 0.
    """
    weights = Weights([1.0, 1.0] + [0.5] * 6)
    codes = [
        0b00111000,  # id 0: three light bits, hd 3, wd 1.5 <- tie, lower id
        0b11111111,  # id 1: filler, wd 5.0
        0b11111110,  # id 2: filler, wd 4.5
        0b11111101,  # id 3: filler, wd 4.5
        0b11111011,  # id 4: filler, wd 4.5
        0b10100000,  # id 5: heavy+light, hd 2, wd 1.5 <- tie, in radius 2
    ]
    index = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet(codes, 8)),
        weights=weights, strategy="rerank",
    )
    assert index.knn_search(0, 1) == [(0, 1.5)]
    assert index.knn_search(0, 2) == [(0, 1.5), (5, 1.5)]
    # The native strategy agrees, ties included.
    native = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet(codes, 8)),
        weights=weights, strategy="native",
    )
    assert native.knn_search(0, 2) == [(0, 1.5), (5, 1.5)]


def test_knn_shorter_corpus_and_buffered_inserts():
    weights = Weights([0.5] * 8)
    index = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet([0b1, 0b11], 8)),
        weights=weights, strategy="rerank",
    )
    assert index.knn_search(0, 10) == [(0, 0.5), (1, 1.0)]
    # Buffered inserts participate in every round with exact scores.
    index.insert(0b0, 7)
    assert index.knn_search(0, 1) == [(7, 0.0)]
    assert len(index) == 3


# -- degenerate weight vectors ------------------------------------------


def test_zero_weight_bits_are_free():
    # The two trailing bits cost nothing: codes differing only there
    # are at weighted distance 0.
    weights = Weights([1.0, 1.0, 0.0, 0.0])
    codes = [0b0000, 0b0011, 0b0100, 0b1111]
    index = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet(codes, 4)),
        weights=weights, strategy="native",
    )
    assert sorted(index.search(0b0000, 0)) == [0, 1]
    assert sorted(index.search(0b0000, 1)) == [0, 1, 2]
    assert index.knn_search(0b0011, 2) == [(0, 0.0), (1, 0.0)]
    rerank = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet(codes, 4)),
        weights=weights, strategy="rerank",
    )
    assert sorted(rerank.search(0b0000, 0)) == [0, 1]
    assert rerank.knn_search(0b0011, 2) == [(0, 0.0), (1, 0.0)]


def test_all_zero_weights_collapse_every_distance():
    weights = Weights([0.0] * 4)
    codes = [0b0000, 0b1111, 0b1010]
    for strategy in ("native", "rerank"):
        index = WeightedHammingIndex(
            DynamicHAIndex.build(CodeSet(codes, 4)),
            weights=weights, strategy=strategy,
        )
        assert sorted(index.search(0b0101, 0)) == [0, 1, 2]
        assert index.knn_search(0b0101, 2) == [(0, 0.0), (1, 0.0)]


def test_uniform_weights_threshold_cap_matches_code_length():
    index = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet([0b1, 0b10], 8)),
        weights=uniform_weights(8),
    )
    assert index.knn_threshold_cap == 8
    assert index.max_distance == 8.0
    assert index.implied_radius(3.0) == 3
    heavy = WeightedHammingIndex(
        DynamicHAIndex.build(CodeSet([0b1, 0b10], 8)),
        weights=Weights([4.0] * 8),
    )
    assert heavy.knn_threshold_cap == 32  # total weight, not width


# -- construction and parameter validation ------------------------------


def test_builder_and_wrapper_validation():
    codes = CodeSet([0b1, 0b10, 0b11], 8)
    index = WeightedHammingIndex.build(codes)
    assert index.weights == uniform_weights(8)  # default: codes/uniform
    attached = WeightedHammingIndex.build(
        codes.with_weights([0.5] * 8)
    )
    assert attached.weights == Weights([0.5] * 8)
    with pytest.raises(InvalidParameterError):
        WeightedHammingIndex.build(codes, strategy="quantum")
    with pytest.raises(InvalidParameterError):
        WeightedHammingIndex.build(codes, engine="weighted")  # no nesting
    with pytest.raises(InvalidParameterError):
        WeightedHammingIndex(index)  # no wrapping a weighted index
    with pytest.raises(InvalidParameterError):
        index.search(0b1, -0.5)
    with pytest.raises(InvalidParameterError):
        index.knn_search(0b1, 0)


def test_weighted_front_end_conflicting_weights():
    codes = CodeSet([0b1, 0b10], 8)
    index = WeightedHammingIndex.build(codes, weights=[2.0] * 8)
    # Re-passing the same weights is fine; different weights conflict.
    assert weighted_select(0b1, index, 2.0, [2.0] * 8) == [0]
    with pytest.raises(InvalidParameterError):
        weighted_select(0b1, index, 2.0, [3.0] * 8)


# -- CodeSet plumbing ---------------------------------------------------


def test_codeset_weights_ride_subset_and_pickle():
    codes = CodeSet(
        [0b1, 0b10, 0b11, 0b100], 8
    ).with_weights([0.5] * 8)
    assert codes.weights == tuple([0.5] * 8)
    sub = codes.subset([1, 3])
    assert sub.weights == codes.weights
    assert sub.ids == (1, 3)
    clone = pickle.loads(pickle.dumps(codes))
    assert clone.weights == codes.weights
    assert clone == codes
    with pytest.raises(InvalidParameterError):
        codes.with_weights([0.5] * 7)
    with pytest.raises(InvalidParameterError):
        codes.with_weights([-1.0] * 8)


def test_shard_split_carries_weights():
    from repro.distributed.pivots import select_pivots, split_by_pivots

    codes = CodeSet(
        list(range(1, 33)), 8
    ).with_weights([0.25] * 8)
    pivots = select_pivots(codes.codes, 4)
    shards = split_by_pivots(codes, pivots)
    assert sum(len(shard) for shard in shards) == len(codes)
    for shard in shards:
        if len(shard):
            assert shard.weights == codes.weights


# -- observability: spans sum to last_search_ops ------------------------


@pytest.mark.parametrize("strategy", ("native", "rerank"))
def test_weighted_span_ops_sum_to_last_search_ops(strategy):
    from repro.obs import last_trace, trace

    rng = np.random.default_rng(7)
    codes = [int(x) for x in rng.integers(0, 1 << 24, 400)]
    dha = DynamicHAIndex.build(CodeSet(codes, 24))
    index = WeightedHammingIndex(
        dha, weights=random_weights(24, seed=2), strategy=strategy,
    )
    index.insert(codes[0] ^ 0b1, 997)  # buffered: weighted.buffer > 0
    with trace("h_select", engine="weighted"):
        index.search(codes[0], 2.5)
    tree = last_trace()
    assert tree.total_ops == index.last_search_ops > 0
    ops_by_name = {}
    stack = list(tree.children)
    while stack:
        span = stack.pop()
        ops_by_name[span.name] = (
            ops_by_name.get(span.name, 0) + (span.ops or 0)
        )
        stack.extend(span.children)
    assert "weighted.sweep" in ops_by_name
    assert "weighted.buffer" in ops_by_name


# -- join and service integration ---------------------------------------

def test_weighted_join_matches_pairwise_oracle():
    rng = np.random.default_rng(11)
    left = CodeSet([int(x) for x in rng.integers(0, 1 << 16, 40)], 16)
    right = CodeSet([int(x) for x in rng.integers(0, 1 << 16, 50)], 16)
    weights = random_weights(16, seed=9)
    got = sorted(
        hamming_join(left, right, 3.0, weights=weights.values)
    )
    t_scaled = 3 * SCALE
    expected = sorted(
        (left_id, right_id)
        for lcode, left_id in zip(left.codes, left.ids)
        for rcode, right_id in zip(right.codes, right.ids)
        if weights.distance_scaled(lcode, rcode) <= t_scaled
    )
    assert got == expected
    # Uniform weights match the unweighted join exactly.
    assert sorted(
        hamming_join(left, right, 3, weights=[1.0] * 16)
    ) == sorted(nested_loops_join(left, right, 3))


def test_single_node_service_serves_weighted_index():
    from repro.service import HammingQueryService

    rng = np.random.default_rng(3)
    codes = [int(x) for x in rng.integers(0, 1 << 20, 300)]
    weights = random_weights(20, seed=1)
    index = WeightedHammingIndex.build(
        CodeSet(codes, 20), weights=weights
    )
    query = codes[5]
    oracle = _scaled_oracle(codes, weights, query)
    with HammingQueryService(index, workers=1) as service:
        got = sorted(service.select(query, 2.5).value)
        assert got == sorted(
            i for i, d in enumerate(oracle) if d <= int(2.5 * SCALE)
        )
        knn = service.knn(query, 3).value
    expected = sorted((d, i) for i, d in enumerate(oracle))[:3]
    assert list(knn) == [(i, d / SCALE) for d, i in expected]


def test_sharded_service_weighted_engine_end_to_end():
    from repro.service import ShardedQueryService

    rng = np.random.default_rng(5)
    codes = [int(x) for x in rng.integers(0, 1 << 16, 400)]
    weights = random_weights(16, seed=4)
    codeset = CodeSet(codes, 16).with_weights(
        weights.values.tolist()
    )
    query = codes[7]
    oracle = _scaled_oracle(codes, weights, query)
    with ShardedQueryService(
        codeset, num_shards=4, engine="weighted", workers=1,
        cache_capacity=0,
    ) as service:
        got = sorted(service.select(query, 3.0).value)
        assert got == sorted(
            i for i, d in enumerate(oracle) if d <= 3 * SCALE
        )
        knn = service.knn(query, 5).value
        expected = sorted((d, i) for i, d in enumerate(oracle))[:5]
        assert knn == tuple(
            (i, d / SCALE) for d, i in expected
        )
        # Mutations flow through to the weighted shard indexes.
        service.insert(query, 9999)
        assert 9999 in service.select(query, 0.0).value


def test_weighted_index_pickles_with_node_cache_dropped():
    codes = CodeSet([0b1, 0b10, 0b11, 0b101], 8)
    index = WeightedHammingIndex.build(
        codes, weights=[0.5] * 8, strategy="native"
    )
    before = sorted(index.search(0b1, 1.0))
    clone = pickle.loads(pickle.dumps(index))
    assert sorted(clone.search(0b1, 1.0)) == before
    assert clone.weights == index.weights


# -- CLI ----------------------------------------------------------------


def test_cli_weighted_select_and_knn(capsys):
    from repro.cli import main

    assert main([
        "select", "--n", "400", "--weights", "learned",
        "--threshold", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "weighted[learned]" in out
    assert main([
        "knn", "--n", "400", "--weights", "random",
        "--weight-seed", "3", "--weight-strategy", "rerank", "--k", "3",
    ]) == 0
    assert "weighted[random]" in capsys.readouterr().out


def test_cli_docs_gen_check_is_clean(capsys):
    from repro.cli import main

    assert main(["docs-gen", "--check"]) == 0
    assert "current" in capsys.readouterr().out
