"""Edge-case tests for Gray-rank pivot selection and dataset splitting.

Complements the basics in ``tests/test_distributed.py`` with the
degenerate shapes the sharded serving plane must survive: duplicated
pivots (empty partitions), single-shard setups, and skewed Gray-rank
distributions, plus the ``split_by_pivots`` / ``intervals`` surfaces it
is built on.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.core.gray import gray_rank, to_gray
from repro.distributed import split_by_pivots
from repro.distributed.pivots import (
    gray_range_partitioner,
    partition_balance,
    partition_of,
    select_pivots,
)
from repro.mapreduce.partitioner import RangePartitioner
from repro.service import ShardedQueryService


class TestDuplicatePivots:
    def test_tiny_sample_yields_repeated_pivots(self):
        """More partitions than distinct ranks: pivots repeat."""
        pivots = select_pivots([7, 7, 7], 4)
        assert len(pivots) == 3
        assert len(set(pivots)) == 1

    def test_repeated_pivots_leave_middle_partitions_empty(self):
        codes = CodeSet([to_gray(rank) for rank in (1, 5, 9)], 8)
        shards = split_by_pivots(codes, [5, 5, 5])
        sizes = [len(shard) for shard in shards]
        assert sizes == [1, 0, 0, 2]

    def test_sharded_service_survives_empty_shards(self):
        codes = CodeSet([to_gray(rank) for rank in (1, 5, 9)], 8)
        service = ShardedQueryService(
            codes, pivots=[5, 5, 5], workers=1, cache_capacity=0
        )
        with service:
            for position, code in enumerate(codes.codes):
                assert position in service.select(code, 0).value
            stats = service.shard_stats()
        # The two empty shards can never be contacted.
        assert stats.shards_contacted <= stats.planned * 2


class TestSplitByPivots:
    def test_split_covers_every_tuple_once(self):
        rng = random.Random(3)
        codes = CodeSet([rng.getrandbits(12) for _ in range(300)], 12)
        pivots = select_pivots(codes.codes, 5)
        shards = split_by_pivots(codes, pivots)
        assert len(shards) == 5
        assert sum(len(shard) for shard in shards) == len(codes)
        seen = sorted(
            tuple_id for shard in shards for tuple_id in shard.ids
        )
        assert seen == list(codes.ids)

    def test_split_respects_partition_of(self):
        rng = random.Random(4)
        codes = CodeSet([rng.getrandbits(10) for _ in range(100)], 10)
        pivots = select_pivots(codes.codes, 4)
        partitioner = gray_range_partitioner(pivots)
        shards = split_by_pivots(codes, pivots)
        for sid, shard in enumerate(shards):
            for code in shard.codes:
                assert partition_of(code, partitioner) == sid

    def test_split_is_stable_within_shards(self):
        codes = CodeSet([to_gray(rank) for rank in (9, 1, 5, 3)], 8)
        shards = split_by_pivots(codes, [8])
        assert [gray_rank(code) for code in shards[0].codes] == [1, 5, 3]
        assert list(shards[0].ids) == [1, 2, 3]

    def test_no_pivots_single_shard(self):
        codes = CodeSet([1, 2, 3], 8)
        shards = split_by_pivots(codes, [])
        assert len(shards) == 1
        assert shards[0].codes == codes.codes

    def test_empty_codeset_splits_into_empty_shards(self):
        shards = split_by_pivots(CodeSet([], 8), [10, 20])
        assert [len(shard) for shard in shards] == [0, 0, 0]


class TestIntervals:
    def test_intervals_tile_the_space(self):
        partitioner = RangePartitioner([10, 200])
        assert partitioner.intervals(256) == [
            (0, 10),
            (10, 200),
            (200, 256),
        ]

    def test_out_of_range_pivots_are_clamped(self):
        partitioner = RangePartitioner([5, 1000])
        assert partitioner.intervals(256) == [
            (0, 5),
            (5, 256),
            (256, 256),
        ]

    def test_intervals_match_partition_assignment(self):
        partitioner = RangePartitioner([17, 80, 80])
        intervals = partitioner.intervals(128)
        for key in range(128):
            owner = partitioner(key, partitioner.num_partitions)
            lo, hi = intervals[owner]
            assert lo <= key < hi


class TestSkewedBalance:
    def test_balance_on_gray_rank_point_mass(self):
        """90% of ranks identical: only that pivot's shard overfills."""
        ranks = [42] * 900 + list(range(100))
        codes = [to_gray(rank) for rank in ranks]
        pivots = select_pivots(codes, 4)
        counts = [0] * 4
        partitioner = gray_range_partitioner(pivots)
        for code in codes:
            counts[partition_of(code, partitioner)] += 1
        # Equi-depth pivots cannot split a point mass, but every other
        # shard must stay near the ideal mean.
        assert partition_balance(counts) <= 4.0
        others = sorted(counts)[:-1]
        assert max(others) <= 1000 // 4

    def test_balance_on_exponentially_skewed_ranks(self):
        rng = random.Random(8)
        ranks = [
            min(int(rng.expovariate(1 / 40.0)), 1023) for _ in range(2000)
        ]
        codes = [to_gray(rank) for rank in ranks]
        pivots = select_pivots(codes, 8)
        counts = [0] * 8
        partitioner = gray_range_partitioner(pivots)
        for code in codes:
            counts[partition_of(code, partitioner)] += 1
        assert partition_balance(counts) < 1.5

    def test_balance_is_max_over_mean(self):
        assert partition_balance([30, 10, 10, 10]) == pytest.approx(2.0)

    def test_select_pivots_rejects_bad_partition_count(self):
        with pytest.raises(InvalidParameterError):
            select_pivots([1, 2], 0)
