"""Unit tests for the online query-serving subsystem (repro.service)."""

from __future__ import annotations

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import (
    InvalidParameterError,
    ServiceClosedError,
    ServiceOverloadError,
    ServiceTimeoutError,
)
from repro.core.static_ha import StaticHAIndex
from repro.service import (
    MISS,
    AdmissionQueue,
    HammingQueryService,
    QueryTicket,
    ResultCache,
)

from .conftest import EXAMPLE_QUERY, EXAMPLE_SELECT_IDS


def build_service(table_s, **overrides) -> HammingQueryService:
    parameters = dict(workers=2, max_batch=8, queue_limit=64)
    parameters.update(overrides)
    index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
    return HammingQueryService(index, **parameters)


class TestResultCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = ResultCache(2)
        assert cache.get(("select", 1, 3, 0)) is MISS
        cache.put(("select", 1, 3, 0), (1, 2))
        cache.put(("select", 2, 3, 0), (3,))
        assert cache.get(("select", 1, 3, 0)) == (1, 2)
        cache.put(("select", 3, 3, 0), ())  # evicts key 2 (LRU)
        assert cache.get(("select", 2, 3, 0)) is MISS
        stats = cache.stats()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.evictions == 1
        assert stats.size == 2

    def test_weight_counts_requests_not_lookups(self):
        cache = ResultCache(8)
        cache.put(("probe", 5, 1, 0), True)
        cache.get(("probe", 5, 1, 0), weight=5)
        cache.get(("probe", 6, 1, 0), weight=3)
        stats = cache.stats()
        assert stats.hits == 5
        assert stats.misses == 3
        assert stats.hit_rate == pytest.approx(5 / 8)

    def test_capacity_zero_disables(self):
        cache = ResultCache(0)
        cache.put(("select", 1, 3, 0), (1,))
        assert cache.get(("select", 1, 3, 0)) is MISS
        assert len(cache) == 0

    def test_cached_falsy_values_are_hits(self):
        cache = ResultCache(4)
        cache.put(("select", 9, 0, 0), ())
        cache.put(("probe", 9, 0, 0), False)
        assert cache.get(("select", 9, 0, 0)) == ()
        assert cache.get(("probe", 9, 0, 0)) is False

    def test_purge_stale_drops_older_epochs_only(self):
        cache = ResultCache(8)
        cache.put(("select", 1, 3, 0), (1,))
        cache.put(("select", 1, 3, 1), (1,))
        cache.put(("select", 2, 3, 2), (2,))
        assert cache.purge_stale(2) == 2
        assert cache.get(("select", 2, 3, 2)) == (2,)
        assert cache.get(("select", 1, 3, 1)) is MISS

    def test_rejects_negative_capacity(self):
        with pytest.raises(InvalidParameterError):
            ResultCache(-1)


class TestAdmissionQueue:
    def test_fifo_and_depth(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        for item in (1, 2, 3):
            queue.offer(item)
        assert queue.depth() == 3
        assert queue.take() == 1
        assert queue.take_nowait() == 2
        assert queue.depth() == 1

    def test_overload_rejects_with_retry_after(self):
        queue: AdmissionQueue[int] = AdmissionQueue(2, workers_hint=2)
        queue.offer(1)
        queue.offer(2)
        queue.note_service_time(0.01)
        with pytest.raises(ServiceOverloadError) as excinfo:
            queue.offer(3)
        assert excinfo.value.retry_after_seconds > 0
        assert queue.depth() == 2  # nothing was dropped

    def test_retry_after_scales_with_backlog_and_workers(self):
        queue: AdmissionQueue[int] = AdmissionQueue(100, workers_hint=1)
        queue.note_service_time(0.1)
        for item in range(10):
            queue.offer(item)
        assert queue.retry_after() == pytest.approx(1.0, rel=0.01)

    def test_close_drains_then_signals_exit(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        queue.offer(1)
        queue.close()
        with pytest.raises(ServiceClosedError):
            queue.offer(2)
        assert queue.take() == 1  # drained after close
        assert queue.take(timeout=0.01) is None

    def test_take_times_out(self):
        queue: AdmissionQueue[int] = AdmissionQueue(4)
        assert queue.take(timeout=0.01) is None


class TestQueryTicket:
    def test_result_waits_and_raises_stored_error(self):
        ticket = QueryTicket()
        ticket.fail(ServiceTimeoutError("late"))
        with pytest.raises(ServiceTimeoutError):
            ticket.result()

    def test_result_wait_timeout(self):
        ticket = QueryTicket()
        with pytest.raises(ServiceTimeoutError):
            ticket.result(timeout=0.01)
        assert not ticket.done()


class TestServiceQueries:
    def test_select_matches_paper_example(self, table_s):
        with build_service(table_s) as service:
            result = service.select(EXAMPLE_QUERY, 3)
        assert sorted(result.value) == EXAMPLE_SELECT_IDS
        assert result.epoch == 0
        assert not result.cached

    def test_repeat_query_is_served_from_cache(self, table_s):
        with build_service(table_s) as service:
            first = service.select(EXAMPLE_QUERY, 3)
            second = service.select(EXAMPLE_QUERY, 3)
            stats = service.stats()
        assert not first.cached and second.cached
        assert first.value == second.value
        assert stats.cache.hits == 1
        assert stats.executed == 1

    def test_probe_and_knn_kinds(self, table_s):
        with build_service(table_s) as service:
            assert service.probe(EXAMPLE_QUERY, 3).value is True
            assert service.probe(0b010110101, 0).value is False
            neighbours = service.knn(EXAMPLE_QUERY, 3).value
        assert len(neighbours) == 3
        assert [t for t, _ in neighbours][0] in EXAMPLE_SELECT_IDS

    def test_static_ha_index_is_servable(self, table_s):
        index = StaticHAIndex.build(table_s, segment_bits=3)
        with HammingQueryService(index, workers=1) as service:
            select = service.select(EXAMPLE_QUERY, 3)
            assert sorted(select.value) == EXAMPLE_SELECT_IDS
            # StaticHAIndex has no contains_within; probe falls back.
            assert service.probe(EXAMPLE_QUERY, 3).value is True

    def test_rejects_malformed_queries(self, table_s):
        with build_service(table_s) as service:
            with pytest.raises(InvalidParameterError):
                service.submit("nope", EXAMPLE_QUERY, 3)
            with pytest.raises(InvalidParameterError):
                service.submit("select", EXAMPLE_QUERY, -1)
            with pytest.raises(InvalidParameterError):
                service.submit("knn", EXAMPLE_QUERY, 0)


class TestServiceMutation:
    def test_insert_bumps_epoch_and_invalidates_cache(self, table_s):
        with build_service(table_s) as service:
            before = service.select(EXAMPLE_QUERY, 3)
            epoch = service.insert(EXAMPLE_QUERY, 99)
            after = service.select(EXAMPLE_QUERY, 3)
        assert epoch == 1
        assert before.epoch == 0 and after.epoch == 1
        assert not after.cached  # epoch key change forced a recompute
        assert 99 in after.value and 99 not in before.value

    def test_delete_bumps_epoch(self, table_s):
        with build_service(table_s) as service:
            service.delete(table_s[3], 3)
            result = service.select(EXAMPLE_QUERY, 3)
        assert result.epoch == 1
        assert 3 not in result.value

    def test_refresh_swaps_index_and_purges_cache(self, table_s):
        replacement = CodeSet.from_strings(["101100010", "101100011"])
        with build_service(table_s) as service:
            service.select(EXAMPLE_QUERY, 3)
            epoch = service.refresh(replacement)
            result = service.select(EXAMPLE_QUERY, 1)
            stats = service.stats()
        assert epoch == 1
        assert sorted(result.value) == [0, 1]
        assert stats.refreshes == 1
        assert stats.cache.size == 1  # pre-refresh entry was purged

    def test_refresh_accepts_prebuilt_index_and_checks_length(self, table_s):
        with build_service(table_s) as service:
            rebuilt = DynamicHAIndex.build(table_s, window=4)
            assert service.refresh(rebuilt) == 1
            wrong = DynamicHAIndex(code_length=5)
            with pytest.raises(InvalidParameterError):
                service.refresh(wrong)

    def test_snapshot_roundtrip_through_refresh(self, table_s):
        with build_service(table_s) as service:
            snapshot = service.snapshot_index()
            snapshot.insert(0b000000001, 77)
            # The live service does not see the offline mutation...
            assert 77 not in service.select(0b000000001, 0).value
            # ...until the snapshot is swapped back in.
            service.refresh(snapshot)
            assert 77 in service.select(0b000000001, 0).value


class TestServiceLifecycle:
    def test_backpressure_rejects_but_never_drops(self, table_s):
        service = build_service(
            table_s, workers=1, queue_limit=4, start=False
        )
        tickets = [
            service.submit("select", EXAMPLE_QUERY, threshold)
            for threshold in range(4)
        ]
        with pytest.raises(ServiceOverloadError) as excinfo:
            service.submit("select", EXAMPLE_QUERY, 5)
        assert excinfo.value.retry_after_seconds >= 0
        service.start()
        values = [ticket.result(timeout=10.0) for ticket in tickets]
        service.close()
        stats = service.stats()
        assert stats.rejected == 1
        assert stats.served == 4
        assert all(value is not None for value in values)

    def test_deadline_expires_in_queue(self, table_s):
        import time

        service = build_service(table_s, workers=1, start=False)
        ticket = service.submit("select", EXAMPLE_QUERY, 3, timeout=0.01)
        time.sleep(0.05)
        service.start()
        with pytest.raises(ServiceTimeoutError):
            ticket.result(timeout=10.0)
        service.close()
        assert service.stats().timed_out == 1

    def test_close_drains_pending_queries(self, table_s):
        service = build_service(table_s, workers=2, start=False)
        tickets = [
            service.submit("select", code, 2) for code in table_s.codes
        ]
        service.close()  # starts workers, drains, joins
        assert all(ticket.done() for ticket in tickets)
        with pytest.raises(ServiceClosedError):
            service.select(EXAMPLE_QUERY, 3)
        with pytest.raises(ServiceClosedError):
            service.insert(0, 0)

    def test_stats_render_mentions_every_surface(self, table_s):
        with build_service(table_s) as service:
            service.select(EXAMPLE_QUERY, 3)
            text = service.stats().render()
        for fragment in ("served", "hit rate", "p99", "epoch", "workers"):
            assert fragment in text

    def test_in_batch_dedup_shares_one_traversal(self, table_s):
        service = build_service(
            table_s, workers=1, max_batch=8, start=False
        )
        tickets = [
            service.submit("select", EXAMPLE_QUERY, 3) for _ in range(6)
        ]
        service.start()
        results = [ticket.result(timeout=10.0) for ticket in tickets]
        service.close()
        stats = service.stats()
        # All six queries were answered by at most two traversals (the
        # worker may have split them across at most two batches).
        assert stats.executed <= 2
        assert stats.dedup_saved + stats.cache.hits >= 4
        assert len({result.value for result in results}) == 1
