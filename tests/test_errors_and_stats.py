"""Tests for the error hierarchy and the shared index memory model."""

from __future__ import annotations

import pytest

from repro.core.errors import (
    CodeLengthError,
    HashNotFittedError,
    IndexStateError,
    InvalidParameterError,
    JobConfigurationError,
    JobExecutionError,
    ReproError,
)
from repro.core.index_base import (
    CODE_BYTES_PER_BIT,
    EDGE_BYTES,
    ENTRY_BYTES,
    NODE_BYTES,
    IndexStats,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            CodeLengthError,
            HashNotFittedError,
            IndexStateError,
            InvalidParameterError,
            JobConfigurationError,
            JobExecutionError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_single_except_clause_catches_library_errors(self):
        from repro.core.bitvector import CodeSet

        caught = None
        try:
            CodeSet([8], 3)
        except ReproError as error:
            caught = error
        assert isinstance(caught, CodeLengthError)

    def test_repro_error_not_caught_by_value_error(self):
        assert not issubclass(ReproError, ValueError)


class TestIndexStatsModel:
    def test_memory_formula(self):
        stats = IndexStats(nodes=2, edges=3, entries=4, code_bits=80)
        expected = int(
            2 * NODE_BYTES
            + 3 * EDGE_BYTES
            + 4 * ENTRY_BYTES
            + 80 * CODE_BYTES_PER_BIT
        )
        assert stats.memory_bytes == expected

    def test_empty_stats_cost_nothing(self):
        assert IndexStats(0, 0, 0, 0).memory_bytes == 0

    def test_stats_are_immutable(self):
        stats = IndexStats(1, 1, 1, 1)
        with pytest.raises(AttributeError):
            stats.nodes = 5

    def test_model_orders_replication(self):
        """Sanity of the model: 10x-replicated entries cost ~10x."""
        base = IndexStats(nodes=10, edges=0, entries=100, code_bits=3200)
        replicated = IndexStats(
            nodes=10, edges=0, entries=1000, code_bits=32000
        )
        assert replicated.memory_bytes > 5 * base.memory_bytes
