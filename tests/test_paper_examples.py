"""The paper's worked examples as executable tests.

Example 1 (select/join outputs), Example 2's three closure cases,
Example 3's Radix-Tree pruning, Example 4's full-code-space HA-Index and
the Table 3 H-Search trace each become an assertion, pinning the
implementation to the paper's own narrative.
"""

from __future__ import annotations


from repro.core.bitvector import CodeSet, code_from_string
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.pattern import MaskedPattern
from repro.core.radix_tree import RadixTreeIndex
from repro.core.select import hamming_select

from .conftest import (
    EXAMPLE_JOIN_PAIRS,
    EXAMPLE_QUERY,
    EXAMPLE_SELECT_IDS,
)


class TestExample1:
    def test_select_output(self, table_s):
        assert sorted(
            hamming_select(EXAMPLE_QUERY, table_s, 3)
        ) == EXAMPLE_SELECT_IDS

    def test_join_output(self, table_r, table_s):
        from repro.core.join import hamming_join

        assert sorted(hamming_join(table_r, table_s, 3)) == (
            EXAMPLE_JOIN_PAIRS
        )


class TestExample2ClosureCases:
    """Section 4.1, Example 2: the downward closure in action (h = 2)."""

    def test_case1_shared_prefix_excludes_t0_t1(self, table_s):
        # FLSS "001......" is shared by t0 and t1; its distance to
        # tq = "110010010" is 3 > 2, so neither can qualify.
        tq = code_from_string("110010010")
        flss = MaskedPattern.from_string("001......")
        assert flss.matches(table_s[0]) and flss.matches(table_s[1])
        assert flss.distance(tq) >= 3
        results = hamming_select(tq, table_s, 2)
        assert 0 not in results and 1 not in results

    def test_case2_shared_flss_excludes_t2_t7(self, table_s):
        # ".11001100" is an FLSS for both t2 and t7 with distance >= 3
        # from tq = "110110010".
        tq = code_from_string("110110010")
        flss = MaskedPattern.from_string(".11001100")
        assert flss.matches(table_s[2]) and flss.matches(table_s[7])
        assert flss.distance(tq) >= 3
        results = hamming_select(tq, table_s, 2)
        assert 2 not in results and 7 not in results

    def test_case3_shared_flsseq_excludes_t3_t5(self, table_s):
        # "1010.1..." wait -- the paper's FLSSeq "1010.1..." is stated
        # for t3 and t5; we verify the *property*: their common FLSSeq
        # has distance >= 3 from tq = "110100010", excluding both.
        from repro.core.pattern import common_pattern

        tq = code_from_string("110100010")
        flsseq = common_pattern([table_s[3], table_s[5]], 9)
        assert flsseq.matches(table_s[3]) and flsseq.matches(table_s[5])
        assert flsseq.distance(tq) >= 3
        results = hamming_select(tq, table_s, 2)
        assert 3 not in results and 5 not in results


class TestExample3RadixPruning:
    def test_shared_prefix_pruned_early(self, table_s):
        """Query "110010110", h = 2: t0/t1 discarded on the "001" prefix."""
        index = RadixTreeIndex.build(table_s)
        tq = code_from_string("110010110")
        results = index.search(tq, 2)
        assert 0 not in results and 1 not in results
        # The prune is cheap: far fewer edge XORs than a full scan of
        # all 8 codes' 9 bits would suggest.
        assert index.last_search_ops < 8 * 9


class TestExample4FullSpace:
    def test_all_three_bit_codes(self):
        """Example 4: the 8 distinct 3-bit codes; search touches
        O(log n) structure rather than every leaf for tight queries."""
        codeset = CodeSet(list(range(8)), 3)
        index = DynamicHAIndex.build(codeset, window=2, max_depth=4)
        for query in range(8):
            assert index.search(query, 0) == [query]
        index.search(0, 0)
        assert index.last_search_ops < 8 + index.stats().nodes


class TestTable3Trace:
    """The H-Search execution trace of Table 3."""

    def test_trace_query_matches_t0_only(self, table_s):
        index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
        tq = code_from_string("010001011")
        assert index.search(tq, 3) == [0]

    def test_trace_records_pruning_and_match(self, table_s):
        index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
        tq = code_from_string("010001011")
        steps = index.trace_search(tq, 3)
        actions = [step.action for step in steps]
        assert "pruned" in actions, "some subtree is discarded"
        assert "matched" in actions, "the qualifying leaf is reached"
        matched = [s for s in steps if s.action == "matched"]
        assert [m.pattern for m in matched] == ["001001010"]  # t0
        assert matched[0].distance == 3

    def test_trace_distances_are_partial_distances(self, table_s):
        index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
        tq = code_from_string("010001011")
        for step in index.trace_search(tq, 3):
            pattern = MaskedPattern.from_string(step.pattern)
            assert step.distance == pattern.distance(tq)

    def test_trace_prunes_nothing_at_full_threshold(self, table_s):
        index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
        steps = index.trace_search(0, 9)
        assert all(step.action != "pruned" for step in steps)

    def test_trace_agrees_with_search(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset)
        query = clustered_codeset[9]
        matched_codes = {
            MaskedPattern.from_string(step.pattern).bits
            for step in index.trace_search(query, 3)
            if step.action == "matched"
        }
        result_codes = {
            clustered_codeset[i] for i in index.search(query, 3)
        }
        assert matched_codes == result_codes
