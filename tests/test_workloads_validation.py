"""Tests for query workload generators and index verification."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.index_base import HammingIndex, IndexStats
from repro.core.validation import verify_all_families, verify_index
from repro.data.synthetic import random_codes
from repro.data.workloads import (
    member_queries,
    mixed_workload,
    near_miss_queries,
    novel_queries,
    zipf_queries,
)


@pytest.fixture
def codes() -> CodeSet:
    return CodeSet(random_codes(400, 20, seed=81), 20)


class TestWorkloads:
    def test_member_queries_come_from_dataset(self, codes):
        pool = set(codes.codes)
        for query in member_queries(codes, 50, seed=1):
            assert query in pool

    def test_zipf_queries_are_skewed(self, codes):
        counts = Counter(zipf_queries(codes, 500, seed=2))
        frequencies = sorted(counts.values(), reverse=True)
        # The hottest query dominates the coldest by a wide margin.
        assert frequencies[0] >= 5 * frequencies[-1]

    def test_near_miss_distance_bound(self, codes):
        pool = list(codes.codes)
        for query in near_miss_queries(codes, 40, flips=2, seed=3):
            best = min((query ^ code).bit_count() for code in pool)
            assert best <= 2

    def test_near_miss_zero_flips_is_member(self, codes):
        pool = set(codes.codes)
        for query in near_miss_queries(codes, 10, flips=0, seed=4):
            assert query in pool

    def test_novel_queries_fit_length(self):
        for query in novel_queries(16, 30, seed=5):
            assert 0 <= query < (1 << 16)

    def test_mixed_workload_size_and_membership(self, codes):
        queries = mixed_workload(codes, 60, seed=6)
        assert len(queries) == 60
        assert all(0 <= q < (1 << codes.length) for q in queries)

    def test_parameter_validation(self, codes):
        with pytest.raises(InvalidParameterError):
            member_queries(codes, 0)
        with pytest.raises(InvalidParameterError):
            near_miss_queries(codes, 5, flips=99)
        with pytest.raises(InvalidParameterError):
            zipf_queries(codes, 5, exponent=0)
        with pytest.raises(InvalidParameterError):
            novel_queries(0, 5)
        with pytest.raises(InvalidParameterError):
            mixed_workload(codes, 5, shares=[("member", 0.0)])
        with pytest.raises(InvalidParameterError):
            mixed_workload(codes, 5, shares=[("bogus", 1.0)])


class _BrokenIndex(HammingIndex):
    """An index that silently drops one result — must be caught."""

    def __init__(self, codes: CodeSet) -> None:
        super().__init__(codes.length)
        self._codes = codes
        self._size = len(codes)

    def search(self, query, threshold):
        full = [
            tuple_id
            for code, tuple_id in zip(self._codes.codes, self._codes.ids)
            if (code ^ query).bit_count() <= threshold
        ]
        return full[:-1] if len(full) > 1 else full

    def insert(self, code, tuple_id):
        raise NotImplementedError

    def delete(self, code, tuple_id):
        raise NotImplementedError

    def stats(self):
        return IndexStats(0, 0, 0, 0)


class TestVerification:
    def test_correct_index_passes(self, codes):
        index = DynamicHAIndex.build(codes)
        report = verify_index(index, codes, num_queries=10)
        assert report.queries_checked == 10
        assert report.total_matches > 0
        assert "verified 10 queries" in str(report)

    def test_broken_index_caught(self, codes):
        broken = _BrokenIndex(codes)
        with pytest.raises(IndexStateError, match="diverged"):
            verify_index(broken, codes, thresholds=(20,))

    def test_length_mismatch_rejected(self, codes):
        index = DynamicHAIndex.build(CodeSet([1], 8))
        with pytest.raises(IndexStateError, match="8-bit"):
            verify_index(index, codes)

    def test_wide_codes_verified(self):
        wide = CodeSet(random_codes(100, 96, seed=82), 96)
        index = DynamicHAIndex.build(wide)
        report = verify_index(index, wide, thresholds=(0, 30))
        assert report.queries_checked == 20

    def test_all_families(self, codes):
        reports = verify_all_families(codes, num_queries=4)
        assert len(reports) == 7
        assert all(
            report.queries_checked == 4 for report in reports.values()
        )
