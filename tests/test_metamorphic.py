"""Metamorphic relations the query operators must satisfy.

No oracle needed: each test checks an algebraic property that relates
two runs of the system to each other — growing the threshold can only
grow an h-select's answer set, an h-join is symmetric in its inputs,
and an insert/delete round trip leaves the Dynamic HA-Index exactly
where it started (answers *and* node frequencies, since H-Delete must
unwind every path H-Insert touched).
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.join import hamming_join
from repro.core.static_ha import StaticHAIndex
from repro.engines.mih import MIHIndex

WIDTH = 32
SEEDS = range(8)


def _corpus(rng: random.Random, n: int, width: int = WIDTH) -> CodeSet:
    codes = [rng.getrandbits(width) for _ in range(n)]
    for _ in range(n // 6):
        codes[rng.randrange(n)] = codes[rng.randrange(n)]
    return CodeSet(codes, width)


def _frequency_snapshot(index: DynamicHAIndex) -> dict:
    """(bits, mask) -> (frequency, sorted leaf ids) over the whole tree."""
    snapshot = {}

    def visit(node):
        snapshot[(node.bits, node.mask)] = (
            node.frequency,
            sorted(node.ids) if node.is_leaf else None,
        )
        for child in node.children:
            visit(child)

    for top in index._top:
        visit(top)
    return snapshot


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize(
    "family", [DynamicHAIndex, StaticHAIndex, MIHIndex]
)
def test_threshold_monotonicity(seed: int, family) -> None:
    """Results at threshold h are a subset of results at h + 1."""
    rng = random.Random(400 + seed)
    codes = _corpus(rng, 150)
    index = family.build(codes)
    engines = [index]
    if hasattr(index, "compile"):
        engines.append(index.compile())
    if hasattr(index, "compile_native"):
        engines.append(index.compile_native())
    for engine in engines:
        for _ in range(4):
            query = rng.getrandbits(WIDTH)
            previous: set[int] = set()
            for threshold in range(0, 10):
                current = set(engine.search(query, threshold))
                assert previous <= current, (
                    f"{type(engine).__name__}: raising h from "
                    f"{threshold - 1} to {threshold} dropped results"
                )
                previous = current


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("engine", ["nodes", "flat", "native", "mih"])
def test_join_symmetry(seed: int, engine: str) -> None:
    """h-join(R, S) equals the transpose of h-join(S, R)."""
    rng = random.Random(500 + seed)
    left = _corpus(rng, rng.randrange(40, 100))
    right = _corpus(rng, rng.randrange(40, 100))
    threshold = rng.randrange(0, 6)
    forward = sorted(hamming_join(left, right, threshold, engine=engine))
    backward = sorted(
        (left_id, right_id)
        for right_id, left_id in hamming_join(
            right, left, threshold, engine=engine
        )
    )
    assert forward == backward


@pytest.mark.parametrize("seed", SEEDS)
def test_insert_delete_round_trip(seed: int) -> None:
    """Insert-then-delete restores answers and node frequencies.

    Covers both insert paths: codes new to the index (buffered) and
    codes already resident in a leaf (frequency bump along the path).
    """
    rng = random.Random(600 + seed)
    codes = _corpus(rng, 120)
    index = DynamicHAIndex.build(codes)
    queries = [rng.getrandbits(WIDTH) for _ in range(4)]
    threshold = 4
    before_answers = [
        sorted(index.search(query, threshold)) for query in queries
    ]
    before_frequencies = _frequency_snapshot(index)
    before_size = len(index)

    new_code = rng.getrandbits(WIDTH)
    existing_code = codes[rng.randrange(len(codes))]
    edits = [(new_code, 9001), (existing_code, 9002), (new_code, 9003)]
    for code, tuple_id in edits:
        index.insert(code, tuple_id)
    for code, tuple_id in reversed(edits):
        index.delete(code, tuple_id)

    assert len(index) == before_size
    assert [
        sorted(index.search(query, threshold)) for query in queries
    ] == before_answers
    assert _frequency_snapshot(index) == before_frequencies


@pytest.mark.parametrize("seed", SEEDS)
def test_delete_then_reinsert_round_trip(seed: int) -> None:
    """Removing a resident tuple and re-adding it restores answers."""
    rng = random.Random(700 + seed)
    codes = _corpus(rng, 120)
    index = DynamicHAIndex.build(codes)
    query = rng.getrandbits(WIDTH)
    before = sorted(index.search(query, 5))
    victim = rng.randrange(len(codes))
    index.delete(codes[victim], victim)
    index.insert(codes[victim], victim)
    assert sorted(index.search(query, 5)) == before
    assert sorted(index.search(codes[victim], 0)) == sorted(
        tuple_id
        for code, tuple_id in zip(codes.codes, codes.ids)
        if code == codes[victim]
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_mih_insert_delete_round_trip(seed: int) -> None:
    """MIH insert-then-delete restores answers, size, and kNN.

    Duplicate (code, id) pairs are inserted deliberately so the
    swap-remove row store has to pick among identical entries.
    """
    rng = random.Random(800 + seed)
    codes = _corpus(rng, 120)
    index = MIHIndex.build(codes)
    queries = [rng.getrandbits(WIDTH) for _ in range(4)]
    threshold = 4
    before_answers = [
        sorted(index.search(query, threshold)) for query in queries
    ]
    before_knn = index.knn_search(queries[0], 7)
    before_size = len(index)

    new_code = rng.getrandbits(WIDTH)
    existing_code = codes[rng.randrange(len(codes))]
    edits = [
        (new_code, 9001),
        (existing_code, 9002),
        (new_code, 9001),  # duplicate (code, id) pair
        (new_code, 9003),
    ]
    for code, tuple_id in edits:
        index.insert(code, tuple_id)
    for code, tuple_id in reversed(edits):
        index.delete(code, tuple_id)

    assert len(index) == before_size
    assert [
        sorted(index.search(query, threshold)) for query in queries
    ] == before_answers
    assert index.knn_search(queries[0], 7) == before_knn


@pytest.mark.parametrize("seed", SEEDS)
def test_mih_knn_matches_growing_select(seed: int) -> None:
    """The native kNN agrees with a select at its own k-th distance.

    Every id the progressive-radius loop returns at distance <= d_k
    must also be in h-select(query, d_k), and the counts must line up
    with the tie structure at the boundary.
    """
    rng = random.Random(900 + seed)
    codes = _corpus(rng, 100)
    index = MIHIndex.build(codes)
    query = rng.getrandbits(WIDTH)
    k = rng.randrange(1, 15)
    neighbors = index.knn_search(query, k)
    d_k = neighbors[-1][1]
    selected = set(index.search(query, d_k))
    assert {tuple_id for tuple_id, _ in neighbors} <= selected
    # Everything strictly inside the k-th distance is in the answer.
    strictly_inside = set(index.search(query, d_k - 1)) if d_k else set()
    assert strictly_inside <= {tuple_id for tuple_id, _ in neighbors}
