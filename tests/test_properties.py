"""Property-based tests (hypothesis) for core invariants.

These cover the algebraic backbone the correctness proofs rest on:
Gray-transform bijectivity, masked-pattern algebra laws, the downward
closure property (Proposition 1), and end-to-end index/oracle agreement
for every index family under arbitrary code populations.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitvector import CodeSet, hamming_distance
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.gray import from_gray, gray_rank, to_gray
from repro.core.pattern import (
    MaskedPattern,
    common_of_patterns,
    common_pattern,
)
from repro.core.radix_tree import RadixTreeIndex
from repro.core.select import INDEX_FAMILIES
from repro.core.static_ha import StaticHAIndex

LENGTH = 16
codes16 = st.integers(min_value=0, max_value=(1 << LENGTH) - 1)


def pattern16() -> st.SearchStrategy[MaskedPattern]:
    return st.tuples(codes16, codes16).map(
        lambda pair: MaskedPattern(
            pair[0] & pair[1], pair[1], LENGTH
        )
    )


class TestGrayProperties:
    @given(st.integers(min_value=0, max_value=1 << 60))
    def test_gray_bijection(self, value):
        assert from_gray(to_gray(value)) == value

    @given(st.integers(min_value=1, max_value=1 << 50))
    def test_adjacent_gray_codewords_distance_one(self, value):
        assert hamming_distance(to_gray(value), to_gray(value - 1)) == 1

    @given(codes16, codes16)
    def test_rank_order_consistent(self, a, b):
        """Ranks order codes exactly as the Gray sequence does."""
        if gray_rank(a) < gray_rank(b):
            assert to_gray(gray_rank(a)) == a
            assert to_gray(gray_rank(b)) == b


class TestPatternProperties:
    @given(pattern16(), codes16)
    def test_distance_bounded_by_effective_bits(self, pattern, query):
        assert 0 <= pattern.distance(query) <= pattern.effective_bits

    @given(pattern16(), codes16)
    def test_match_iff_distance_zero(self, pattern, query):
        assert pattern.matches(query) == (pattern.distance(query) == 0)

    @given(pattern16(), codes16)
    def test_residual_combine_reconstructs(self, pattern, code):
        if not pattern.matches(code):
            return
        rebuilt = pattern.combine(pattern.residual(code))
        assert rebuilt.is_complete
        assert rebuilt.bits == code

    @given(pattern16(), codes16, codes16)
    def test_residual_distance_decomposition(self, pattern, code, query):
        """Path distances add up: pattern + residual = full Hamming."""
        if not pattern.matches(code):
            return
        residual = pattern.residual(code)
        total = pattern.distance(query) + residual.distance(query)
        assert total == hamming_distance(code, query)

    @given(st.lists(codes16, min_size=1, max_size=8), codes16)
    def test_downward_closure(self, codes, query):
        """Proposition 1: the common pattern's partial distance never
        exceeds any member code's full distance."""
        common = common_pattern(codes, LENGTH)
        for code in codes:
            assert common.distance(query) <= hamming_distance(code, query)

    @given(st.lists(codes16, min_size=1, max_size=8))
    def test_common_pattern_matches_all(self, codes):
        common = common_pattern(codes, LENGTH)
        for code in codes:
            assert common.matches(code)

    @given(st.lists(pattern16(), min_size=1, max_size=6))
    def test_common_of_patterns_generalizes_all(self, patterns):
        common = common_of_patterns(patterns)
        for pattern in patterns:
            assert common.generalizes(pattern)

    @given(pattern16(), pattern16())
    def test_generalizes_implies_distance_bound(self, a, b):
        """If a generalizes b, then a's distance lower-bounds b's."""
        if not a.generalizes(b):
            return
        for query in (0, (1 << LENGTH) - 1, 0b1010101010101010):
            assert a.distance(query) <= b.distance(query)


def _oracle(codes: list[int], query: int, threshold: int) -> list[int]:
    return sorted(
        i
        for i, code in enumerate(codes)
        if hamming_distance(code, query) <= threshold
    )


class TestIndexEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(codes16, min_size=1, max_size=60),
        codes16,
        st.integers(min_value=0, max_value=8),
    )
    def test_all_families_agree_with_oracle(self, codes, query, threshold):
        codeset = CodeSet(codes, LENGTH)
        expected = _oracle(codes, query, threshold)
        for name, builder in INDEX_FAMILIES.items():
            index = builder(codeset)
            assert sorted(index.search(query, threshold)) == expected, name

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(codes16, min_size=2, max_size=50),
        st.data(),
    )
    def test_dynamic_ha_survives_arbitrary_deletions(self, codes, data):
        codeset = CodeSet(codes, LENGTH)
        index = DynamicHAIndex.build(codeset, window=3, max_depth=4)
        victims = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(codes) - 1),
                max_size=len(codes),
                unique=True,
            )
        )
        for victim in victims:
            index.delete(codes[victim], victim)
        survivors = [i for i in range(len(codes)) if i not in set(victims)]
        query = data.draw(codes16)
        expected = sorted(
            i for i in survivors
            if hamming_distance(codes[i], query) <= 4
        )
        assert sorted(index.search(query, 4)) == expected
        index.check_invariants()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(codes16, min_size=1, max_size=40),
        st.lists(codes16, min_size=1, max_size=20),
        codes16,
    )
    def test_dynamic_ha_insert_stream(self, base, extra, query):
        index = DynamicHAIndex.build(
            CodeSet(base, LENGTH), window=3, rebuild_buffer=8
        )
        for offset, code in enumerate(extra):
            index.insert(code, len(base) + offset)
        all_codes = base + extra
        expected = _oracle(all_codes, query, 5)
        assert sorted(index.search(query, 5)) == expected

    @settings(max_examples=20, deadline=None)
    @given(st.lists(codes16, min_size=1, max_size=40), codes16)
    def test_radix_and_static_agree(self, codes, query):
        codeset = CodeSet(codes, LENGTH)
        radix = RadixTreeIndex.build(codeset)
        static = StaticHAIndex.build(codeset, segment_bits=4)
        for threshold in (0, 2, 5):
            assert sorted(radix.search(query, threshold)) == sorted(
                static.search(query, threshold)
            )

    @settings(max_examples=20, deadline=None)
    @given(st.lists(codes16, min_size=1, max_size=40), codes16)
    def test_search_codes_equals_distinct_matching_codes(
        self, codes, query
    ):
        index = DynamicHAIndex.build(CodeSet(codes, LENGTH))
        got = sorted(index.search_codes(query, 4))
        expected = sorted(
            {c for c in codes if hamming_distance(c, query) <= 4}
        )
        assert got == expected
