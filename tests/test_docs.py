"""Docs health: links resolve, examples run, generated pages current.

Four guarantees the docs CI lane enforces:

* every relative markdown link (and anchor) in the repo's user-facing
  docs points at a file/heading that actually exists, so refactors
  cannot silently strand readers;
* every ``>>>`` example in every ``python`` fence across the docs and
  the README executes verbatim (fences in one file share globals, in
  order, like ``doctest.testfile``), so examples cannot drift from
  the code;
* every remaining ``python`` fence at least *parses*, so illustrative
  snippets cannot rot into syntax errors;
* the generated pages (``docs/cli.md``, the engine tables — see
  :mod:`repro.docsgen`) match what ``python -m repro docs-gen`` would
  write today, so the argparse tree and the engine registry cannot
  outrun their documentation.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

# The user-facing documentation surface.  Scratchpads with external or
# illustrative references (ISSUE/PAPERS/SNIPPETS) are deliberately out.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
PYTHON_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def iter_links(markdown: str):
    """Relative link targets, with inline code fences stripped first."""
    for target in LINK_PATTERN.findall(CODE_FENCE.sub("", markdown)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def slugify(heading: str) -> str:
    """GitHub-style anchor id for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    return {
        slugify(line.lstrip("#"))
        for line in path.read_text().splitlines()
        if line.startswith("#")
    }


def test_doc_surface_is_present():
    names = {path.name for path in DOC_FILES}
    assert {
        "README.md", "api.md", "cli.md", "engines.md", "service.md",
        "sharding.md", "weighted.md",
    } <= names


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[path.stem for path in DOC_FILES]
)
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in iter_links(doc.read_text()):
        path_part, _, anchor = target.partition("#")
        resolved = (
            (doc.parent / path_part).resolve() if path_part else doc
        )
        if not resolved.exists():
            broken.append(target)
        elif anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                broken.append(f"{target} (missing anchor)")
    assert not broken, f"broken links in {doc.name}: {broken}"


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[path.stem for path in DOC_FILES]
)
def test_python_fences_are_healthy(doc):
    """``>>>`` fences execute (shared globals per file); others parse."""
    fences = PYTHON_FENCE.findall(doc.read_text())
    examples = [fence for fence in fences if ">>>" in fence]
    snippets = [fence for fence in fences if ">>>" not in fence]
    for position, snippet in enumerate(snippets):
        try:
            compile(snippet, f"{doc.name}[fence {position}]", "exec")
        except SyntaxError as error:
            pytest.fail(
                f"unparseable python fence in {doc.name}: {error}"
            )
    if not examples:
        return
    parser = doctest.DocTestParser()
    test = parser.get_doctest(
        "\n".join(examples), {}, doc.name, str(doc), 0
    )
    runner = doctest.DocTestRunner(
        verbose=False, optionflags=doctest.ELLIPSIS
    )
    result = runner.run(test)
    assert result.attempted > 0, f"{doc.name} lost its examples"
    assert result.failed == 0, (
        f"{result.failed}/{result.attempted} doctest examples failed "
        f"in {doc.name} (run `python -m doctest {doc}` for detail)"
    )


def test_doctested_examples_exist():
    """The executable-example guarantee covers more than one page."""
    doctested = [
        doc.name
        for doc in DOC_FILES
        if any(">>>" in f for f in PYTHON_FENCE.findall(doc.read_text()))
    ]
    assert {"api.md", "algorithms.md", "weighted.md"} <= set(doctested)


def test_generated_docs_are_current():
    """`repro docs-gen --check` in test form: zero stale pages."""
    from repro.docsgen import stale_docs

    stale = [str(path) for path in stale_docs(root=REPO_ROOT)]
    assert not stale, (
        f"generated docs out of date: {stale} "
        f"(run: python -m repro docs-gen)"
    )
