"""Docs health: intra-repo links must resolve, examples must run.

Two guarantees the docs CI lane enforces:

* every relative markdown link (and anchor) in the repo's user-facing
  docs points at a file/heading that actually exists, so refactors
  cannot silently strand readers;
* the ``>>>`` examples in ``docs/api.md`` execute verbatim, so the API
  reference cannot drift from the code.
"""

from __future__ import annotations

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

# The user-facing documentation surface.  Scratchpads with external or
# illustrative references (ISSUE/PAPERS/SNIPPETS) are deliberately out.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md"]
    + list((REPO_ROOT / "docs").glob("*.md"))
)

LINK_PATTERN = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)


def iter_links(markdown: str):
    """Relative link targets, with inline code fences stripped first."""
    for target in LINK_PATTERN.findall(CODE_FENCE.sub("", markdown)):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def slugify(heading: str) -> str:
    """GitHub-style anchor id for a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    return {
        slugify(line.lstrip("#"))
        for line in path.read_text().splitlines()
        if line.startswith("#")
    }


def test_doc_surface_is_present():
    names = {path.name for path in DOC_FILES}
    assert {"README.md", "api.md", "service.md", "sharding.md"} <= names


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[path.stem for path in DOC_FILES]
)
def test_intra_repo_links_resolve(doc):
    broken = []
    for target in iter_links(doc.read_text()):
        path_part, _, anchor = target.partition("#")
        resolved = (
            (doc.parent / path_part).resolve() if path_part else doc
        )
        if not resolved.exists():
            broken.append(target)
        elif anchor and resolved.suffix == ".md":
            if anchor not in anchors_of(resolved):
                broken.append(f"{target} (missing anchor)")
    assert not broken, f"broken links in {doc.name}: {broken}"


def test_api_reference_examples_execute():
    """The fenced ``>>>`` examples in docs/api.md run verbatim."""
    failures, tests = doctest.testfile(
        str(REPO_ROOT / "docs" / "api.md"),
        module_relative=False,
        verbose=False,
    )
    assert tests > 0, "docs/api.md lost its doctested examples"
    assert failures == 0
