"""Unit tests for Gray ordering (Definition 5, Proposition 2)."""

from __future__ import annotations

import random

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.gray import (
    adjacent_hamming_distances,
    from_gray,
    gray_rank,
    gray_rank_array,
    gray_sort,
    gray_sort_indices,
    to_gray,
)


class TestGrayTransform:
    def test_known_values(self):
        # Classic 3-bit Gray sequence: 000 001 011 010 110 111 101 100.
        sequence = [0b000, 0b001, 0b011, 0b010, 0b110, 0b111, 0b101, 0b100]
        assert [to_gray(i) for i in range(8)] == sequence

    def test_inverse(self):
        for value in range(512):
            assert from_gray(to_gray(value)) == value

    def test_consecutive_codewords_differ_by_one_bit(self):
        for value in range(1, 1024):
            xor = to_gray(value) ^ to_gray(value - 1)
            assert xor.bit_count() == 1

    def test_gray_rank_is_from_gray(self):
        assert gray_rank(0b110) == from_gray(0b110) == 4

    def test_zero(self):
        assert to_gray(0) == 0
        assert from_gray(0) == 0

    def test_large_values(self):
        value = (1 << 63) | 12345
        assert from_gray(to_gray(value)) == value


class TestGraySorting:
    def test_sort_indices_order(self):
        codes = [to_gray(i) for i in range(8)]
        random.Random(0).shuffle(codes)
        indices = gray_sort_indices(codes)
        ranks = [gray_rank(codes[i]) for i in indices]
        assert ranks == sorted(ranks)

    def test_sort_is_stable_for_duplicates(self):
        codes = [5, 3, 5, 3]
        indices = gray_sort_indices(codes)
        # Duplicates keep input order: 3s are positions 1 then 3, etc.
        first_threes = [i for i in indices if codes[i] == 3]
        assert first_threes == [1, 3]

    def test_gray_sort_codeset_carries_ids(self):
        codeset = CodeSet([6, 1, 7], 3, ids=[10, 11, 12])
        ordered = gray_sort(codeset)
        ranks = [gray_rank(code) for code in ordered.codes]
        assert ranks == sorted(ranks)
        # Ids follow their codes.
        for code, tuple_id in zip(ordered.codes, ordered.ids):
            assert codeset.codes[codeset.ids.index(tuple_id)] == code

    def test_rank_array_matches_scalar(self):
        rng = random.Random(3)
        codes = [rng.getrandbits(40) for _ in range(200)]
        packed = np.asarray(codes, dtype=np.uint64)
        expected = [gray_rank(code) for code in codes]
        assert gray_rank_array(packed).tolist() == expected


class TestClusteringProperty:
    def test_gray_order_clusters_better_than_random(self):
        """Proposition 2: gray-sorted adjacent distances are small."""
        rng = random.Random(11)
        centers = [rng.getrandbits(32) for _ in range(8)]
        codes = []
        for _ in range(800):
            code = rng.choice(centers)
            for _ in range(rng.randint(0, 2)):
                code ^= 1 << rng.randrange(32)
            codes.append(code)
        ordered = sorted(codes, key=gray_rank)
        shuffled = list(codes)
        rng.shuffle(shuffled)
        mean_sorted = np.mean(adjacent_hamming_distances(ordered))
        mean_shuffled = np.mean(adjacent_hamming_distances(shuffled))
        assert mean_sorted < mean_shuffled

    def test_adjacent_distances_empty_and_single(self):
        assert adjacent_hamming_distances([]) == []
        assert adjacent_hamming_distances([5]) == []

    def test_adjacent_distances_values(self):
        assert adjacent_hamming_distances([0b00, 0b01, 0b11]) == [1, 1]
