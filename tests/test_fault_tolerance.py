"""Failure-injection tests for the MapReduce runtime's retries.

MapReduce is "a reliable distributed computing model" (Section 1)
because failed tasks are simply re-executed; these tests inject flaky
and permanently broken tasks and verify exact re-execution semantics:
no duplicated or lost records, retry counters, and a clean abort once
the attempt budget is exhausted.
"""

from __future__ import annotations

import pytest

from repro.core.errors import JobConfigurationError, JobExecutionError
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_RECORDS,
    TASK_RETRIES,
)
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime


class _Flaky:
    """A callable that fails its first ``failures`` invocations."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def trip(self) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("injected task failure")


class TestMapRetries:
    def test_flaky_mapper_retried_without_duplicates(self):
        flaky = _Flaky(failures=2)

        def mapper(key, value, context):
            flaky.trip()
            yield value, 1

        def reducer(key, values, context):
            yield key, sum(values)

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="flaky", mapper=mapper, reducer=reducer),
            [(0, "a"), (1, "a"), (2, "b")],
            num_splits=1,
        )
        # Three failures would exceed the budget; two are absorbed.
        assert dict(result.output) == {"a": 2, "b": 1}
        assert result.counters.get(TASK_RETRIES) == 2
        # Re-execution does not duplicate shuffle records.
        assert result.counters.get(SHUFFLE_RECORDS) == 3

    def test_permanent_mapper_failure_aborts(self):
        def mapper(key, value, context):
            raise RuntimeError("always broken")
            yield  # pragma: no cover

        runtime = MapReduceRuntime(Cluster(1))
        with pytest.raises(JobExecutionError, match="map task"):
            runtime.run(
                MapReduceJob(name="doomed", mapper=mapper), [(0, 1)]
            )

    def test_partial_emission_not_leaked(self):
        """A mapper failing midway leaves none of its records behind."""
        flaky = _Flaky(failures=1)

        def mapper(key, value, context):
            yield value, 1  # emitted before the failure point
            flaky.trip()

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="midway", mapper=mapper),
            [(0, "x")],
            num_splits=1,
        )
        # Exactly one record despite the failed first attempt having
        # already yielded it.
        assert result.counters.get(SHUFFLE_RECORDS) == 1


class TestReduceRetries:
    def test_flaky_reducer_retried(self):
        flaky = _Flaky(failures=3)

        def reducer(key, values, context):
            flaky.trip()
            yield key, len(values)

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="flaky-reduce", reducer=reducer),
            [(0, "v"), (0, "w")],
        )
        assert result.output == [(0, 2)]
        assert result.counters.get(TASK_RETRIES) == 3
        assert result.counters.get(REDUCE_OUTPUT_RECORDS) == 1

    def test_permanent_reducer_failure_aborts(self):
        def reducer(key, values, context):
            raise ValueError("reduce broken")
            yield  # pragma: no cover

        runtime = MapReduceRuntime(Cluster(1))
        with pytest.raises(JobExecutionError, match="reduce task"):
            runtime.run(
                MapReduceJob(name="doomed", reducer=reducer), [(0, 1)]
            )


class TestConfiguration:
    def test_attempt_budget_configurable(self):
        flaky = _Flaky(failures=1)

        def mapper(key, value, context):
            flaky.trip()
            yield value, 1

        strict = MapReduceRuntime(Cluster(1), max_task_attempts=1)
        with pytest.raises(JobExecutionError):
            strict.run(
                MapReduceJob(name="one-shot", mapper=mapper), [(0, 1)]
            )

    def test_rejects_zero_attempts(self):
        with pytest.raises(JobConfigurationError):
            MapReduceRuntime(Cluster(1), max_task_attempts=0)

    def test_retries_preserve_join_correctness(self):
        """A flaky distributed join still returns the exact answer."""
        from repro.data.synthetic import nuswide_like
        from repro.distributed.hamming_join import mapreduce_hamming_join

        dataset = nuswide_like(150, seed=77)
        records = list(zip(range(len(dataset)), dataset.vectors))
        calm = MapReduceRuntime(Cluster(3))
        baseline = mapreduce_hamming_join(
            calm, records, records, threshold=3, num_bits=16,
            option="A", sample_size=80, exclude_self_pairs=True,
        )
        # Same pipeline with a tiny retry budget still succeeds (the
        # pipeline's tasks are deterministic, so retries are unused but
        # the plumbing is engaged).
        strict = MapReduceRuntime(Cluster(3), max_task_attempts=1)
        again = mapreduce_hamming_join(
            strict, records, records, threshold=3, num_bits=16,
            option="A", sample_size=80, exclude_self_pairs=True,
        )
        assert baseline.pairs == again.pairs
