"""Failure-injection tests for the MapReduce runtime's retries.

MapReduce is "a reliable distributed computing model" (Section 1)
because failed tasks are simply re-executed; these tests inject flaky
and permanently broken tasks and verify exact re-execution semantics:
no duplicated or lost records, retry counters, and a clean abort once
the attempt budget is exhausted.
"""

from __future__ import annotations

import pytest

from repro.core.errors import (
    JobConfigurationError,
    JobExecutionError,
    WorkerLostError,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    BACKOFF_SECONDS,
    REDUCE_OUTPUT_RECORDS,
    SHUFFLE_RECORDS,
    TASK_RETRIES,
    WORKERS_BLACKLISTED,
    WORKERS_LOST,
)
from repro.mapreduce.faults import ChaosPolicy, FaultPlan
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime


class _Flaky:
    """A callable that fails its first ``failures`` invocations."""

    def __init__(self, failures: int) -> None:
        self.failures = failures
        self.calls = 0

    def trip(self) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError("injected task failure")


class TestMapRetries:
    def test_flaky_mapper_retried_without_duplicates(self):
        flaky = _Flaky(failures=2)

        def mapper(key, value, context):
            flaky.trip()
            yield value, 1

        def reducer(key, values, context):
            yield key, sum(values)

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="flaky", mapper=mapper, reducer=reducer),
            [(0, "a"), (1, "a"), (2, "b")],
            num_splits=1,
        )
        # Three failures would exceed the budget; two are absorbed.
        assert dict(result.output) == {"a": 2, "b": 1}
        assert result.counters.get(TASK_RETRIES) == 2
        # Re-execution does not duplicate shuffle records.
        assert result.counters.get(SHUFFLE_RECORDS) == 3

    def test_permanent_mapper_failure_aborts(self):
        def mapper(key, value, context):
            raise RuntimeError("always broken")
            yield  # pragma: no cover

        runtime = MapReduceRuntime(Cluster(1))
        with pytest.raises(JobExecutionError, match="map task"):
            runtime.run(
                MapReduceJob(name="doomed", mapper=mapper), [(0, 1)]
            )

    def test_permanent_failure_counts_reexecutions_only(self):
        """Regression: a task failing all 4 attempts performed exactly 3
        re-executions, so ``task.retries`` must read 3, not 4."""

        def mapper(key, value, context):
            raise RuntimeError("always broken")
            yield  # pragma: no cover

        cluster = Cluster(1)
        runtime = MapReduceRuntime(cluster, max_task_attempts=4)
        with pytest.raises(JobExecutionError):
            runtime.run(MapReduceJob(name="doomed", mapper=mapper), [(0, 1)])
        # Counters are merged into the cluster even on abort.
        assert cluster.counters.get(TASK_RETRIES) == 3

    def test_partial_emission_not_leaked(self):
        """A mapper failing midway leaves none of its records behind."""
        flaky = _Flaky(failures=1)

        def mapper(key, value, context):
            yield value, 1  # emitted before the failure point
            flaky.trip()

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="midway", mapper=mapper),
            [(0, "x")],
            num_splits=1,
        )
        # Exactly one record despite the failed first attempt having
        # already yielded it.
        assert result.counters.get(SHUFFLE_RECORDS) == 1


class TestReduceRetries:
    def test_flaky_reducer_retried(self):
        flaky = _Flaky(failures=3)

        def reducer(key, values, context):
            flaky.trip()
            yield key, len(values)

        runtime = MapReduceRuntime(Cluster(1))
        result = runtime.run(
            MapReduceJob(name="flaky-reduce", reducer=reducer),
            [(0, "v"), (0, "w")],
        )
        assert result.output == [(0, 2)]
        assert result.counters.get(TASK_RETRIES) == 3
        assert result.counters.get(REDUCE_OUTPUT_RECORDS) == 1

    def test_permanent_reducer_failure_aborts(self):
        def reducer(key, values, context):
            raise ValueError("reduce broken")
            yield  # pragma: no cover

        runtime = MapReduceRuntime(Cluster(1))
        with pytest.raises(JobExecutionError, match="reduce task"):
            runtime.run(
                MapReduceJob(name="doomed", reducer=reducer), [(0, 1)]
            )


class TestBackoffAndBlacklist:
    def test_retries_charge_backoff_to_simulated_time(self):
        flaky = _Flaky(failures=2)

        def mapper(key, value, context):
            flaky.trip()
            yield value, 1

        cluster = Cluster(1)
        runtime = MapReduceRuntime(cluster, backoff_base_seconds=0.5)
        result = runtime.run(
            MapReduceJob(name="backoff", mapper=mapper),
            [(0, "x")],
            num_splits=1,
        )
        backoff = result.counters.get(BACKOFF_SECONDS)
        # Two retries: first waits ~0.5 * [0.5, 1.5), second doubles.
        assert 0.25 * 1 <= backoff <= 0.75 + 1.5
        assert result.map_wall_seconds >= backoff

    def test_backoff_grows_exponentially_and_deterministically(self):
        runtime = MapReduceRuntime(Cluster(1), backoff_base_seconds=0.1)
        first = runtime._backoff_seconds("job", "map", 0, 1)
        second = runtime._backoff_seconds("job", "map", 0, 2)
        third = runtime._backoff_seconds("job", "map", 0, 3)
        # Doubling base dominates the [0.5x, 1.5x) jitter band.
        assert second > first / 3
        assert third > second
        assert first == runtime._backoff_seconds("job", "map", 0, 1)

    def test_repeated_failures_blacklist_worker(self):
        """A worker accumulating failures stops receiving tasks."""
        plan = FaultPlan(ChaosPolicy(crash_jobs=("doomed",)))
        cluster = Cluster(4)
        runtime = MapReduceRuntime(
            cluster,
            fault_plan=plan,
            max_task_attempts=3,
            blacklist_failures=2,
        )
        with pytest.raises(JobExecutionError):
            runtime.run(
                MapReduceJob(name="doomed"), [(i, i) for i in range(8)]
            )
        assert len(runtime.blacklisted_workers) >= 1
        assert cluster.counters.get(WORKERS_BLACKLISTED) >= 1

    def test_blacklist_never_removes_last_worker(self):
        plan = FaultPlan(ChaosPolicy(crash_jobs=("doomed",)))
        runtime = MapReduceRuntime(
            Cluster(1),
            fault_plan=plan,
            max_task_attempts=4,
            blacklist_failures=1,
        )
        with pytest.raises(JobExecutionError):
            runtime.run(MapReduceJob(name="doomed"), [(0, 1)])
        assert runtime.blacklisted_workers == frozenset()


class TestWorkerDeath:
    def test_dead_workers_shrink_the_wave(self):
        """Injected permanent deaths reschedule tasks onto survivors."""
        policy = ChaosPolicy(seed=5, worker_death_prob=0.08)
        cluster = Cluster(6)
        runtime = MapReduceRuntime(cluster, fault_plan=FaultPlan(policy))

        def mapper(key, value, context):
            yield value % 3, 1

        def reducer(key, values, context):
            yield key, sum(values)

        result = runtime.run(
            MapReduceJob(name="mortal", mapper=mapper, reducer=reducer),
            [(i, i) for i in range(24)],
        )
        assert dict(result.output) == {0: 8, 1: 8, 2: 8}
        assert len(runtime.lost_workers) >= 1
        assert cluster.counters.get(WORKERS_LOST) == len(runtime.lost_workers)

    def test_total_cluster_loss_aborts(self):
        policy = ChaosPolicy(worker_death_prob=1.0)
        runtime = MapReduceRuntime(Cluster(2), fault_plan=FaultPlan(policy))
        with pytest.raises(WorkerLostError):
            runtime.run(MapReduceJob(name="apocalypse"), [(0, 1)])


class TestConfiguration:
    def test_attempt_budget_configurable(self):
        flaky = _Flaky(failures=1)

        def mapper(key, value, context):
            flaky.trip()
            yield value, 1

        strict = MapReduceRuntime(Cluster(1), max_task_attempts=1)
        with pytest.raises(JobExecutionError):
            strict.run(
                MapReduceJob(name="one-shot", mapper=mapper), [(0, 1)]
            )

    def test_rejects_zero_attempts(self):
        with pytest.raises(JobConfigurationError):
            MapReduceRuntime(Cluster(1), max_task_attempts=0)

    def test_retries_preserve_join_correctness(self):
        """A flaky distributed join still returns the exact answer."""
        from repro.data.synthetic import nuswide_like
        from repro.distributed.hamming_join import mapreduce_hamming_join

        dataset = nuswide_like(150, seed=77)
        records = list(zip(range(len(dataset)), dataset.vectors))
        calm = MapReduceRuntime(Cluster(3))
        baseline = mapreduce_hamming_join(
            calm, records, records, threshold=3, num_bits=16,
            option="A", sample_size=80, exclude_self_pairs=True,
        )
        # Same pipeline with a tiny retry budget still succeeds (the
        # pipeline's tasks are deterministic, so retries are unused but
        # the plumbing is engaged).
        strict = MapReduceRuntime(Cluster(3), max_task_attempts=1)
        again = mapreduce_hamming_join(
            strict, records, records, threshold=3, num_bits=16,
            option="A", sample_size=80, exclude_self_pairs=True,
        )
        assert baseline.pairs == again.pairs
