"""Shared test helpers: brute-force oracles for index verification."""

from __future__ import annotations

from repro.core.bitvector import CodeSet


def brute_force_select(
    codeset: CodeSet, query: int, threshold: int
) -> list[int]:
    """Ground-truth h-select by full scan, sorted tuple ids."""
    return sorted(
        tuple_id
        for code, tuple_id in zip(codeset.codes, codeset.ids)
        if (code ^ query).bit_count() <= threshold
    )


def assert_search_exact(index, codeset: CodeSet, queries, thresholds):
    """Assert ``index.search`` equals the brute-force oracle everywhere."""
    for query in queries:
        for threshold in thresholds:
            expected = brute_force_select(codeset, query, threshold)
            got = sorted(index.search(query, threshold))
            assert got == expected, (
                f"{type(index).__name__} wrong at query={query:#x} "
                f"h={threshold}: {len(got)} vs {len(expected)} results"
            )
