"""Unit tests for evaluation metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import InvalidParameterError
from repro.metrics import (
    exact_knn_join,
    format_bytes,
    knn_precision_recall,
    megabytes,
    precision_recall,
)


class TestPrecisionRecall:
    def test_perfect(self):
        pairs = [(1, 2), (3, 4)]
        assert precision_recall(pairs, pairs) == (1.0, 1.0)

    def test_partial(self):
        predicted = [(1, 2), (9, 9)]
        actual = [(1, 2), (3, 4)]
        precision, recall = precision_recall(predicted, actual)
        assert precision == 0.5
        assert recall == 0.5

    def test_empty_predictions(self):
        assert precision_recall([], [(1, 2)]) == (1.0, 0.0)

    def test_empty_truth(self):
        assert precision_recall([(1, 2)], []) == (0.0, 1.0)

    def test_both_empty(self):
        assert precision_recall([], []) == (1.0, 1.0)


class TestKnnPrecisionRecall:
    def test_perfect(self):
        truth = {0: [(1, 0.1), (2, 0.2)]}
        assert knn_precision_recall(truth, truth) == (1.0, 1.0)

    def test_missing_query_counts_as_empty(self):
        truth = {0: [(1, 0.1)], 1: [(2, 0.2)]}
        predicted = {0: [(1, 0.1)]}
        precision, recall = knn_precision_recall(predicted, truth)
        assert precision == 1.0  # the empty answer has precision 1
        assert recall == 0.5

    def test_wrong_neighbors(self):
        truth = {0: [(1, 0.1), (2, 0.2)]}
        predicted = {0: [(3, 0.1), (2, 0.3)]}
        precision, recall = knn_precision_recall(predicted, truth)
        assert precision == 0.5
        assert recall == 0.5

    def test_empty_truth(self):
        assert knn_precision_recall({}, {}) == (1.0, 1.0)


class TestExactKnnJoin:
    def test_small_example(self):
        left = [(0, np.array([0.0, 0.0]))]
        right = [
            (10, np.array([1.0, 0.0])),
            (11, np.array([0.0, 0.5])),
            (12, np.array([3.0, 3.0])),
        ]
        result = exact_knn_join(left, right, 2)
        assert [i for i, _ in result[0]] == [11, 10]

    def test_distances_sorted(self):
        rng = np.random.default_rng(0)
        points = [(i, rng.normal(size=4)) for i in range(30)]
        result = exact_knn_join(points[:5], points, 7)
        for neighbors in result.values():
            distances = [d for _, d in neighbors]
            assert distances == sorted(distances)

    def test_rejects_bad_k(self):
        with pytest.raises(InvalidParameterError):
            exact_knn_join([], [(0, np.zeros(2))], 0)


class TestFormatting:
    def test_format_bytes(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KB"
        assert format_bytes(3 * 1024**3) == "3.00 GB"

    def test_megabytes(self):
        assert megabytes(1024 * 1024) == 1.0
