"""Tests for the similarity-aware relational operators (future work of
the paper's Section 7, after Marri et al. SISAP 2014)."""

from __future__ import annotations


import pytest

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.core.relational import (
    hamming_difference,
    hamming_distinct,
    hamming_intersect,
)
from repro.core.static_ha import StaticHAIndex
from repro.data.synthetic import random_codes


@pytest.fixture
def sides():
    left = CodeSet(random_codes(300, 16, seed=51), 16)
    right = CodeSet(random_codes(200, 16, seed=52), 16)
    return left, right


def _oracle_intersect(left: CodeSet, right: CodeSet, h: int) -> list[int]:
    return [
        left_id
        for code, left_id in zip(left.codes, left.ids)
        if any((code ^ other).bit_count() <= h for other in right.codes)
    ]


class TestIntersect:
    def test_matches_oracle(self, sides):
        left, right = sides
        for threshold in (0, 2, 4):
            assert hamming_intersect(left, right, threshold) == (
                _oracle_intersect(left, right, threshold)
            )

    def test_threshold_zero_is_exact_intersection(self):
        left = CodeSet([1, 2, 3], 4, ids=[10, 11, 12])
        right = CodeSet([3, 7, 1], 4)
        assert hamming_intersect(left, right, 0) == [10, 12]

    def test_monotone_in_threshold(self, sides):
        left, right = sides
        previous: set[int] = set()
        for threshold in (0, 1, 2, 3, 4):
            current = set(hamming_intersect(left, right, threshold))
            assert previous <= current
            previous = current

    def test_full_threshold_returns_everything(self, sides):
        left, right = sides
        assert hamming_intersect(left, right, 16) == list(left.ids)

    def test_length_mismatch_raises(self):
        with pytest.raises(InvalidParameterError):
            hamming_intersect(CodeSet([1], 4), CodeSet([1], 5), 1)

    def test_custom_index_builder(self, sides):
        left, right = sides
        via_static = hamming_intersect(
            left, right, 3, index_builder=StaticHAIndex.build
        )
        assert via_static == hamming_intersect(left, right, 3)


class TestDifference:
    def test_partitions_left(self, sides):
        left, right = sides
        for threshold in (0, 2, 4):
            kept = hamming_intersect(left, right, threshold)
            dropped = hamming_difference(left, right, threshold)
            assert sorted(kept + dropped) == sorted(left.ids)
            assert not set(kept) & set(dropped)

    def test_empty_right_keeps_everything(self):
        left = CodeSet([5, 9], 4)
        right = CodeSet([], 4)
        assert hamming_difference(left, right, 4) == [0, 1]
        assert hamming_intersect(left, right, 4) == []


class TestDistinct:
    def test_exact_duplicates_removed_at_zero(self):
        codes = CodeSet([7, 7, 3, 7, 3], 4, ids=[0, 1, 2, 3, 4])
        assert hamming_distinct(codes, 0) == [0, 2]

    def test_kept_set_is_spread(self):
        codes = CodeSet(random_codes(400, 16, seed=53), 16)
        kept = hamming_distinct(codes, 3)
        kept_codes = [codes[i] for i in kept]
        for i, a in enumerate(kept_codes):
            for b in kept_codes[i + 1 :]:
                assert (a ^ b).bit_count() > 3

    def test_every_dropped_tuple_is_covered(self):
        codes = CodeSet(random_codes(300, 12, seed=54), 12)
        kept = set(hamming_distinct(codes, 2))
        kept_codes = [codes[i] for i in kept]
        for tuple_id, code in enumerate(codes.codes):
            if tuple_id in kept:
                continue
            assert any(
                (code ^ keeper).bit_count() <= 2 for keeper in kept_codes
            )

    def test_zero_threshold_keeps_first_occurrence(self):
        codes = CodeSet([4, 4], 4, ids=[9, 8])
        assert hamming_distinct(codes, 0) == [9]

    def test_rejects_negative_threshold(self):
        with pytest.raises(InvalidParameterError):
            hamming_distinct(CodeSet([1], 4), -1)
