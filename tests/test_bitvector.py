"""Unit tests for binary-code primitives."""

from __future__ import annotations

import pytest

from repro.core.bitvector import (
    CodeSet,
    batch_hamming,
    batch_select,
    bit_at,
    code_from_string,
    code_to_string,
    hamming_distance,
    pack_codes,
)
from repro.core.errors import (
    CodeLengthError,
    InvalidParameterError,
)


class TestHammingDistance:
    def test_identical_codes(self):
        assert hamming_distance(0b1010, 0b1010) == 0

    def test_all_bits_differ(self):
        assert hamming_distance(0b1111, 0b0000) == 4

    def test_single_bit(self):
        assert hamming_distance(0b1000, 0b0000) == 1

    def test_symmetry(self):
        assert hamming_distance(37, 91) == hamming_distance(91, 37)

    def test_paper_example(self):
        # ||t0, tq|| where t0 = "001001010", tq = "101100010" is 3.
        t0 = code_from_string("001001010")
        tq = code_from_string("101100010")
        assert hamming_distance(t0, tq) == 3


class TestCodeStrings:
    def test_parse_plain(self):
        assert code_from_string("101") == 5

    def test_parse_with_spaces(self):
        assert code_from_string("001 001 010") == 0b001001010

    def test_parse_rejects_other_chars(self):
        with pytest.raises(InvalidParameterError):
            code_from_string("10a")

    def test_parse_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            code_from_string("  ")

    def test_roundtrip(self):
        assert code_to_string(code_from_string("0101"), 4) == "0101"

    def test_to_string_pads(self):
        assert code_to_string(1, 5) == "00001"

    def test_to_string_rejects_overflow(self):
        with pytest.raises(CodeLengthError):
            code_to_string(16, 4)

    def test_bit_at_msb_first(self):
        code = code_from_string("1000")
        assert bit_at(code, 0, 4) == 1
        assert bit_at(code, 3, 4) == 0

    def test_bit_at_out_of_range(self):
        with pytest.raises(InvalidParameterError):
            bit_at(0, 4, 4)


class TestPackedBatches:
    def test_pack_and_distance(self):
        packed = pack_codes([0b0000, 0b1111, 0b1010], 4)
        distances = batch_hamming(packed, 0b0000)
        assert distances.tolist() == [0, 4, 2]

    def test_batch_select(self):
        packed = pack_codes([0b0000, 0b1111, 0b1010], 4)
        assert batch_select(packed, 0b0000, 2).tolist() == [0, 2]

    def test_pack_rejects_overflow(self):
        with pytest.raises(CodeLengthError):
            pack_codes([16], 4)

    def test_pack_rejects_bad_length(self):
        with pytest.raises(InvalidParameterError):
            pack_codes([0], 65)

    def test_pack_64_bit_boundary(self):
        top = (1 << 64) - 1
        packed = pack_codes([top, 0], 64)
        assert batch_hamming(packed, 0).tolist() == [64, 0]

    def test_batch_matches_scalar(self):
        codes = [0, 1, 255, 170, 85]
        packed = pack_codes(codes, 8)
        query = 0b1100_0011
        expected = [hamming_distance(c, query) for c in codes]
        assert batch_hamming(packed, query).tolist() == expected


class TestCodeSet:
    def test_from_strings(self, table_s):
        assert len(table_s) == 8
        assert table_s.length == 9

    def test_from_strings_rejects_mixed_lengths(self):
        with pytest.raises(CodeLengthError):
            CodeSet.from_strings(["101", "10"])

    def test_from_strings_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            CodeSet.from_strings([])

    def test_default_ids_positional(self, table_s):
        assert table_s.ids == tuple(range(8))

    def test_with_ids(self, table_s):
        relabeled = table_s.with_ids(range(100, 108))
        assert relabeled.ids == tuple(range(100, 108))
        assert relabeled.codes == table_s.codes

    def test_with_ids_wrong_count(self, table_s):
        with pytest.raises(InvalidParameterError):
            table_s.with_ids([1, 2])

    def test_subset_preserves_ids(self, table_s):
        subset = table_s.with_ids(range(10, 18)).subset([0, 3])
        assert subset.ids == (10, 13)
        assert subset.codes == (table_s[0], table_s[3])

    def test_rejects_code_overflow(self):
        with pytest.raises(CodeLengthError):
            CodeSet([8], 3)

    def test_rejects_negative_code(self):
        with pytest.raises(InvalidParameterError):
            CodeSet([-1], 3)

    def test_equality_and_hash(self, table_s):
        again = CodeSet.from_strings(
            ["001001010", "001011101", "011001100", "101001010",
             "101110110", "101011101", "101101010", "111001100"]
        )
        assert table_s == again
        assert hash(table_s) == hash(again)

    def test_inequality_on_ids(self, table_s):
        assert table_s != table_s.with_ids(range(1, 9))

    def test_packed_roundtrip(self, table_s):
        assert table_s.packed().tolist() == list(table_s.codes)

    def test_iteration(self, table_s):
        assert list(table_s) == list(table_s.codes)
