"""Unit tests for the query front-ends: select, join, kNN."""

from __future__ import annotations

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.core.join import hamming_join, nested_loops_join, self_join
from repro.core.knn import exact_knn_codes, knn_join, knn_select
from repro.core.select import INDEX_FAMILIES, hamming_select
from repro.core.static_ha import StaticHAIndex

from .conftest import (
    EXAMPLE_JOIN_PAIRS,
    EXAMPLE_QUERY,
    EXAMPLE_SELECT_IDS,
)


class TestHammingSelect:
    def test_example1_against_codeset(self, table_s):
        got = sorted(hamming_select(EXAMPLE_QUERY, table_s, 3))
        assert got == EXAMPLE_SELECT_IDS

    def test_example1_against_index(self, table_s):
        index = DynamicHAIndex.build(table_s)
        got = sorted(hamming_select(EXAMPLE_QUERY, index, 3))
        assert got == EXAMPLE_SELECT_IDS

    def test_respects_custom_ids(self, table_s):
        renamed = table_s.with_ids(range(100, 108))
        got = sorted(hamming_select(EXAMPLE_QUERY, renamed, 3))
        assert got == [100, 103, 104, 106]

    def test_all_families_registered(self):
        assert set(INDEX_FAMILIES) == {
            "Nested-Loops",
            "MH-4",
            "MH-10",
            "HEngine",
            "Radix-Tree",
            "SHA-Index",
            "DHA-Index",
        }

    @pytest.mark.parametrize("family", sorted(INDEX_FAMILIES))
    def test_every_family_answers_example1(self, family, table_s):
        index = INDEX_FAMILIES[family](table_s)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS


class TestHammingJoin:
    def test_example1_join(self, table_r, table_s):
        got = sorted(hamming_join(table_r, table_s, 3))
        assert got == EXAMPLE_JOIN_PAIRS

    def test_nested_loops_reference(self, table_r, table_s):
        got = sorted(nested_loops_join(table_r, table_s, 3))
        assert got == EXAMPLE_JOIN_PAIRS

    def test_join_is_symmetric(self, table_r, table_s):
        """Definition 2 / footnote 1: h-join(R,S) = h-join(S,R)."""
        forward = {(a, b) for a, b in hamming_join(table_r, table_s, 3)}
        backward = {(b, a) for a, b in hamming_join(table_s, table_r, 3)}
        assert forward == backward

    def test_indexes_smaller_side(self, table_r, table_s):
        # Output orientation is (left id, right id) regardless of side.
        assert sorted(hamming_join(table_s, table_r, 3)) == sorted(
            (b, a) for a, b in EXAMPLE_JOIN_PAIRS
        )

    def test_join_with_custom_index(self, table_r, table_s):
        got = sorted(
            hamming_join(
                table_r, table_s, 3, index_builder=StaticHAIndex.build
            )
        )
        assert got == EXAMPLE_JOIN_PAIRS

    def test_join_matches_nested_loops_on_random(
        self, random_codeset, clustered_codeset
    ):
        left = random_codeset.subset(range(150))
        right = clustered_codeset.subset(range(300))
        # Lengths differ (32 vs 32) - same length codes required.
        assert sorted(hamming_join(left, right, 4)) == sorted(
            nested_loops_join(left, right, 4)
        )

    def test_threshold_zero_join_is_equality(self):
        left = CodeSet([1, 2, 3], 4, ids=[0, 1, 2])
        right = CodeSet([3, 2, 9], 4, ids=[5, 6, 7])
        assert sorted(hamming_join(left, right, 0)) == [(1, 6), (2, 5)]

    def test_self_join_excludes_trivial_pairs(self, table_s):
        pairs = self_join(table_s, 3)
        assert all(a < b for a, b in pairs)
        reference = {
            (a, b)
            for a, b in nested_loops_join(table_s, table_s, 3)
            if a < b
        }
        assert set(pairs) == reference


class TestKnnSelect:
    def test_matches_exact_scan(self, clustered_codeset):
        index = DynamicHAIndex.build(clustered_codeset)
        query = clustered_codeset[100]
        got = knn_select(query, index, 15)
        expected = exact_knn_codes(
            query,
            clustered_codeset.codes,
            clustered_codeset.ids,
            15,
        )
        assert got == expected

    def test_distances_sorted_and_tie_broken_by_id(self, table_s):
        index = DynamicHAIndex.build(table_s)
        results = knn_select(EXAMPLE_QUERY, index, 8)
        distances = [d for _, d in results]
        assert distances == sorted(distances)
        for (id_a, d_a), (id_b, d_b) in zip(results, results[1:]):
            if d_a == d_b:
                assert id_a < id_b

    def test_k_larger_than_dataset(self, table_s):
        index = DynamicHAIndex.build(table_s)
        assert len(knn_select(EXAMPLE_QUERY, index, 100)) == 8

    def test_threshold_expansion_finds_far_neighbors(self):
        codes = CodeSet([0b11111111], 8)
        index = DynamicHAIndex.build(codes)
        # Query at distance 8; expansion must reach the full length.
        assert knn_select(0, index, 1) == [(0, 8)]

    def test_rejects_bad_parameters(self, table_s):
        index = DynamicHAIndex.build(table_s)
        with pytest.raises(InvalidParameterError):
            knn_select(0, index, 0)
        with pytest.raises(InvalidParameterError):
            knn_select(0, index, 1, initial_threshold=-1)
        with pytest.raises(InvalidParameterError):
            knn_select(0, index, 1, threshold_step=0)

    def test_works_with_nested_loops_index(self, table_s):
        from repro.baselines.nested_loops import NestedLoopsIndex

        index = NestedLoopsIndex.build(table_s)
        got = knn_select(EXAMPLE_QUERY, index, 4)
        expected = exact_knn_codes(
            EXAMPLE_QUERY, table_s.codes, table_s.ids, 4
        )
        assert got == expected


class TestKnnJoin:
    def test_every_left_tuple_answered(self, table_r, table_s):
        result = knn_join(table_r, table_s, 2)
        assert set(result) == set(table_r.ids)
        for neighbors in result.values():
            assert len(neighbors) == 2

    def test_matches_exact_per_query(self, table_r, table_s):
        result = knn_join(table_r, table_s, 3)
        for left_id, code in zip(table_r.ids, table_r.codes):
            expected = exact_knn_codes(
                code, table_s.codes, table_s.ids, 3
            )
            assert result[left_id] == expected

    def test_asymmetry(self, table_r, table_s):
        """kNN-join is not symmetric (unlike h-join)."""
        forward = knn_join(table_r, table_s, 1)
        backward = knn_join(table_s, table_r, 1)
        assert set(forward) != set(backward)
