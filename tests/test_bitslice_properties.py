"""Property-based tests for the bit-sliced (transposed) code layout.

Hypothesis drives :mod:`repro.core.bitslice` through the invariants
the compiled verification plane depends on:

* ``pack_bitplanes`` / ``unpack_bitplanes`` round-trip at widths
  32/64/128 and every ragged tail (batch sizes straddling the 64-lane
  word boundary);
* ``transpose_packed`` over the row-major packed matrix equals
  slicing the raw codes;
* bit-serial ripple-carry distances equal the ``int.bit_count``
  ground truth, hence also the packed popcount kernels;
* everything holds on both popcount backends — numpy >= 2's
  ``np.bitwise_count`` and the ``popcount64`` byte-table fallback —
  so the layout is safe wherever the kernel falls back.
"""

from __future__ import annotations

from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitvector
from repro.core.bitslice import (
    BitSlicedBatch,
    bitsliced_distances,
    bitsliced_within,
    pack_bitplanes,
    transpose_packed,
    unpack_bitplanes,
)
from repro.core.bitvector import pack_codes_wide, popcount64

WIDTHS = (32, 64, 128)


@contextmanager
def _popcount_backend(name: str):
    """Force one popcount dispatch path for the duration of a test.

    The byte-table lane exists even on numpy >= 2 (it is the declared
    numpy 1.24 floor's only kernel); forcing ``_HAS_BITWISE_COUNT``
    off exercises it everywhere.  Used as a plain context manager
    because hypothesis forbids function-scoped fixtures under
    ``@given``.
    """
    if name == "bitwise_count" and not bitvector._HAS_BITWISE_COUNT:
        pytest.skip("numpy < 2: no bitwise_count backend to test")
    with pytest.MonkeyPatch.context() as patcher:
        if name == "byte-table":
            patcher.setattr(bitvector, "_HAS_BITWISE_COUNT", False)
        yield name


def codes_strategy(width: int):
    return st.lists(
        st.integers(min_value=0, max_value=(1 << width) - 1),
        min_size=0,
        max_size=130,  # spans 0, 1 and 2 lane words plus ragged tails
    )


@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_pack_unpack_round_trip(width: int, data) -> None:
    codes = data.draw(codes_strategy(width))
    planes = pack_bitplanes(codes, width)
    assert planes.shape == (width, (len(codes) + 63) // 64)
    assert planes.dtype == np.uint64
    assert unpack_bitplanes(planes, len(codes), width) == codes


@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_padding_lanes_stay_zero(width: int, data) -> None:
    """Ragged tails never leak set bits into the padding lanes."""
    codes = data.draw(codes_strategy(width))
    planes = pack_bitplanes(codes, width)
    tail = len(codes) % 64
    if planes.shape[1] and tail:
        spill = planes[:, -1] >> np.uint64(tail)
        assert not spill.any()


@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_transpose_packed_matches_pack_bitplanes(
    width: int, data
) -> None:
    codes = data.draw(codes_strategy(width))
    packed = pack_codes_wide(codes, width)
    expected = pack_bitplanes(codes, width)
    assert np.array_equal(transpose_packed(packed, width), expected)


@pytest.mark.parametrize("backend", ["bitwise_count", "byte-table"])
@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_bitsliced_distances_exact(
    width: int, backend: str, data
) -> None:
    """Ripple-carry distances equal both scalar and packed popcounts."""
    codes = data.draw(codes_strategy(width))
    query = data.draw(
        st.integers(min_value=0, max_value=(1 << width) - 1)
    )
    with _popcount_backend(backend):
        planes = pack_bitplanes(codes, width)
        got = bitsliced_distances(planes, len(codes), query)
        expected = [(code ^ query).bit_count() for code in codes]
        assert got.tolist() == expected
        packed = pack_codes_wide(codes, width)
        qwords = np.array(
            [(query >> (64 * w)) & 0xFFFFFFFFFFFFFFFF
             for w in range(packed.shape[1])],
            dtype=np.uint64,
        )
        via_popcount = popcount64(packed ^ qwords).sum(
            axis=1, dtype=np.int64
        )
        assert got.tolist() == via_popcount.tolist()


@pytest.mark.parametrize("backend", ["bitwise_count", "byte-table"])
@pytest.mark.parametrize("width", WIDTHS)
@given(data=st.data())
@settings(max_examples=30, deadline=None)
def test_threshold_mask_and_batch_matches(
    width: int, backend: str, data
) -> None:
    """``within`` masks and the query-sliced batch agree with brute force."""
    codes = data.draw(codes_strategy(width))
    queries = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << width) - 1),
            min_size=1,
            max_size=70,
        )
    )
    threshold = data.draw(st.integers(min_value=0, max_value=width))
    with _popcount_backend(backend):
        planes = pack_bitplanes(codes, width)
        for query in queries[:3]:
            mask = bitsliced_within(planes, len(codes), query, threshold)
            assert mask.tolist() == [
                (code ^ query).bit_count() <= threshold for code in codes
            ]
        batch = BitSlicedBatch(queries, width)
        candidates = codes[:5] or [0]
        got = batch.matches(candidates, threshold)
        assert got.shape == (len(candidates), len(queries))
        for row, candidate in enumerate(candidates):
            assert got[row].tolist() == [
                (candidate ^ query).bit_count() <= threshold
                for query in queries
            ]
