"""Unit tests for the distributed layer: sampling, pivots, global index."""

from __future__ import annotations

import pytest

from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.core.gray import gray_rank
from repro.data.synthetic import nuswide_like, random_codes
from repro.distributed.global_index import (
    CACHE_HASH,
    CACHE_PIVOTS,
    build_global_index,
)
from repro.distributed.pivots import (
    gray_range_partitioner,
    partition_balance,
    partition_of,
    select_pivots,
)
from repro.distributed.sampling import reservoir_sample
from repro.hashing.spectral import SpectralHash
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.runtime import MapReduceRuntime


class TestReservoirSample:
    def test_small_input_returned_whole(self):
        assert sorted(reservoir_sample(range(5), 10)) == [0, 1, 2, 3, 4]

    def test_capacity_respected(self):
        sample = reservoir_sample(range(1000), 50, seed=1)
        assert len(sample) == 50
        assert len(set(sample)) == 50

    def test_deterministic_by_seed(self):
        a = reservoir_sample(range(1000), 20, seed=7)
        b = reservoir_sample(range(1000), 20, seed=7)
        assert a == b

    def test_approximately_uniform(self):
        """Each item appears with probability ~ capacity / n."""
        hits = [0] * 100
        for seed in range(200):
            for item in reservoir_sample(range(100), 10, seed=seed):
                hits[item] += 1
        # Expected 20 hits each; allow a generous band.
        assert min(hits) > 5
        assert max(hits) < 45

    def test_rejects_bad_capacity(self):
        with pytest.raises(InvalidParameterError):
            reservoir_sample(range(5), 0)


class TestPivots:
    def test_pivot_count(self):
        codes = random_codes(500, 16, seed=0)
        pivots = select_pivots(codes, 8)
        assert len(pivots) == 7
        assert pivots == sorted(pivots)

    def test_balanced_partitions_on_skewed_codes(self):
        """Equi-depth pivots balance even heavily skewed populations."""
        import random as stdlib_random

        rng = stdlib_random.Random(5)
        # 80% of codes in a tiny corner of the space.
        codes = [rng.getrandbits(8) for _ in range(200)]
        codes += [0b11110000 ^ rng.getrandbits(2) for _ in range(800)]
        pivots = select_pivots(codes, 8)
        partitioner = gray_range_partitioner(pivots)
        counts = [0] * partitioner.num_partitions
        for code in codes:
            counts[partition_of(code, partitioner)] += 1
        assert partition_balance(counts) < 2.5

    def test_single_partition_no_pivots(self):
        assert select_pivots([1, 2, 3], 1) == []

    def test_rejects_empty_sample(self):
        with pytest.raises(InvalidParameterError):
            select_pivots([], 4)

    def test_partition_of_uses_gray_rank(self):
        pivots = [10]
        partitioner = gray_range_partitioner(pivots)
        low_code = 0  # gray rank 0
        assert partition_of(low_code, partitioner) == 0
        high_code = 0b1000000  # large gray rank
        assert gray_rank(high_code) > 10
        assert partition_of(high_code, partitioner) == 1

    def test_partition_balance_edge_cases(self):
        assert partition_balance([]) == 1.0
        assert partition_balance([0, 0]) == 1.0
        assert partition_balance([4, 4, 4, 4]) == 1.0
        assert partition_balance([8, 0, 0, 0]) == 4.0


class TestGlobalIndexBuild:
    def _prepared_runtime(self, records, num_bits=16, workers=4):
        cluster = Cluster(workers)
        runtime = MapReduceRuntime(cluster)
        vectors = [vector for _, vector in records]
        hasher = SpectralHash(num_bits)
        sample_codes = hasher.fit_encode(vectors)
        partitioner = gray_range_partitioner(
            select_pivots(sample_codes.codes, workers)
        )
        cluster.broadcast(CACHE_HASH, hasher)
        cluster.broadcast(CACHE_PIVOTS, partitioner)
        return runtime, hasher

    def test_global_equals_centralized(self):
        dataset = nuswide_like(300, seed=2)
        records = list(zip(range(len(dataset)), dataset.vectors))
        runtime, hasher = self._prepared_runtime(records)
        result = build_global_index(runtime, records)
        codes = hasher.encode(dataset.vectors)
        central = DynamicHAIndex.build(codes)
        for probe in (codes[0], codes[150]):
            assert sorted(result.index.search(probe, 3)) == sorted(
                central.search(probe, 3)
            )

    def test_partitions_cover_everything(self):
        dataset = nuswide_like(200, seed=3)
        records = list(zip(range(len(dataset)), dataset.vectors))
        runtime, _ = self._prepared_runtime(records)
        result = build_global_index(runtime, records)
        assert sum(result.partition_sizes) == len(dataset)
        assert len(result.index) == len(dataset)

    def test_partitions_reasonably_balanced(self):
        dataset = nuswide_like(400, seed=4)
        records = list(zip(range(len(dataset)), dataset.vectors))
        runtime, _ = self._prepared_runtime(records)
        result = build_global_index(runtime, records)
        assert partition_balance(result.partition_sizes) < 3.0

    def test_build_charges_shuffle(self):
        dataset = nuswide_like(100, seed=5)
        records = list(zip(range(len(dataset)), dataset.vectors))
        runtime, _ = self._prepared_runtime(records)
        result = build_global_index(runtime, records)
        assert result.job.counters.get("shuffle.bytes") > 0
        assert result.job.counters.get("shuffle.records") == len(dataset)
