"""Tests for HA-Index persistence (save/load)."""

from __future__ import annotations

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError
from repro.data.synthetic import random_codes


@pytest.fixture
def built_index():
    codes = CodeSet(random_codes(500, 24, seed=71), 24)
    return DynamicHAIndex.build(codes), codes


class TestSaveLoad:
    def test_roundtrip_preserves_answers(self, built_index, tmp_path):
        index, codes = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        loaded = DynamicHAIndex.load(path)
        loaded.check_invariants()
        for probe in (codes[0], codes[123]):
            assert sorted(loaded.search(probe, 4)) == sorted(
                index.search(probe, 4)
            )

    def test_loaded_index_is_mutable(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        loaded = DynamicHAIndex.load(path)
        loaded.insert(0b101, 9999)
        assert 9999 in loaded.search(0b101, 0)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.bin"
        path.write_bytes(b"definitely not an index")
        with pytest.raises(IndexStateError):
            DynamicHAIndex.load(path)

    def test_load_rejects_bad_version(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        data = bytearray(path.read_bytes())
        data[4] = 99  # clobber the version byte
        path.write_bytes(bytes(data))
        with pytest.raises(IndexStateError):
            DynamicHAIndex.load(path)

    def test_load_rejects_truncated_file(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        path.write_bytes(path.read_bytes()[:3])
        with pytest.raises(IndexStateError):
            DynamicHAIndex.load(path)

    def test_load_rejects_truncated_payload(self, built_index, tmp_path):
        # Valid magic + version, pickle payload cut mid-stream: must
        # surface as IndexStateError, not a raw pickle/EOF error.
        index, _ = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(IndexStateError, match="truncated or corrupt"):
            DynamicHAIndex.load(path)

    def test_load_rejects_corrupt_payload(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        data = bytearray(path.read_bytes())
        data[8:] = b"\xff" * (len(data) - 8)  # shred the pickle stream
        path.write_bytes(bytes(data))
        with pytest.raises(IndexStateError, match="truncated or corrupt"):
            DynamicHAIndex.load(path)

    def test_load_rejects_foreign_payload(self, built_index, tmp_path):
        # A well-formed header whose pickle holds something else
        # entirely must be rejected by the isinstance check.
        import pickle

        path = tmp_path / "foreign.hadx"
        with open(path, "wb") as stream:
            stream.write(DynamicHAIndex._FILE_MAGIC)
            stream.write(bytes([DynamicHAIndex._FILE_VERSION]))
            pickle.dump({"not": "an index"}, stream)
        with pytest.raises(IndexStateError, match="does not contain"):
            DynamicHAIndex.load(path)

    def test_saved_file_is_compact(self, built_index, tmp_path):
        import pickle

        index, codes = built_index
        path = tmp_path / "index.hadx"
        index.save(path)
        raw = len(pickle.dumps((codes.codes, codes.ids)))
        assert path.stat().st_size < 5 * raw
