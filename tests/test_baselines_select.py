"""Unit tests for the Hamming-select baselines.

Nested-Loops, MultiHashTable (Manku), HEngine and HmSearch all implement
the same exact-search contract; shared behaviour is exercised through a
parametrized fixture and structure-specific behaviour in per-class tests.
"""

from __future__ import annotations

import pytest

from repro.baselines.hengine import HEngineIndex
from repro.baselines.hmsearch import HmSearchIndex
from repro.baselines.multi_hash import (
    MultiHashTableIndex,
    block_boundaries,
    variants_within,
)
from repro.baselines.nested_loops import NestedLoopsIndex
from repro.core.bitvector import CodeSet
from repro.core.errors import IndexStateError, InvalidParameterError

from .conftest import EXAMPLE_QUERY, EXAMPLE_SELECT_IDS
from .helpers import assert_search_exact, brute_force_select

BASELINE_BUILDERS = [
    pytest.param(lambda cs: NestedLoopsIndex.build(cs), id="nested-loops"),
    pytest.param(
        lambda cs: MultiHashTableIndex.build(cs, num_tables=4), id="mh-4"
    ),
    pytest.param(
        lambda cs: MultiHashTableIndex.build(cs, num_tables=10), id="mh-10"
    ),
    pytest.param(lambda cs: HEngineIndex.build(cs), id="hengine"),
    pytest.param(
        lambda cs: HEngineIndex.build(cs, max_threshold=6), id="hengine-6"
    ),
    pytest.param(lambda cs: HmSearchIndex.build(cs), id="hmsearch"),
]


@pytest.mark.parametrize("builder", BASELINE_BUILDERS)
class TestBaselineContract:
    def test_paper_example(self, builder, table_s):
        index = builder(table_s)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS

    def test_exact_on_random(self, builder, random_codeset, query_rng):
        index = builder(random_codeset)
        queries = [query_rng.getrandbits(32) for _ in range(6)]
        assert_search_exact(index, random_codeset, queries, [0, 3, 6])

    def test_exact_beyond_design_threshold(
        self, builder, clustered_codeset
    ):
        """Thresholds past the build-time h stay exact (wider probes)."""
        index = builder(clustered_codeset)
        query = clustered_codeset[9]
        for threshold in (7, 9):
            assert sorted(index.search(query, threshold)) == (
                brute_force_select(clustered_codeset, query, threshold)
            )

    def test_update_roundtrip(self, builder, table_s):
        index = builder(table_s)
        index.delete(table_s[4], 4)
        assert 4 not in index.search(EXAMPLE_QUERY, 3)
        index.insert(table_s[4], 4)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS
        assert len(index) == 8

    def test_delete_absent_raises(self, builder, table_s):
        index = builder(table_s)
        with pytest.raises(IndexStateError):
            index.delete(0b101010101, 77)

    def test_duplicates(self, builder):
        codeset = CodeSet([3, 3, 12], 4, ids=[7, 8, 9])
        index = builder(codeset)
        assert sorted(index.search(3, 0)) == [7, 8]

    def test_search_with_distances_when_available(self, builder, table_s):
        index = builder(table_s)
        search = getattr(index, "search_with_distances", None)
        if search is None:
            pytest.skip("index has no distance-reporting search")
        for tuple_id, distance in search(EXAMPLE_QUERY, 3):
            assert distance == (
                table_s[tuple_id] ^ EXAMPLE_QUERY
            ).bit_count()


class TestBlockBoundaries:
    def test_even_split(self):
        assert block_boundaries(9, 3) == [(6, 3), (3, 3), (0, 3)]

    def test_uneven_split_spreads_extra_bits(self):
        # 9 bits over 4 blocks: widths 3, 2, 2, 2.
        widths = [w for _, w in block_boundaries(9, 4)]
        assert widths == [3, 2, 2, 2]
        assert sum(widths) == 9

    def test_rejects_too_many_blocks(self):
        with pytest.raises(InvalidParameterError):
            block_boundaries(4, 5)

    def test_blocks_partition_the_code(self):
        code = 0b110101101
        parts = [
            (code >> shift) & ((1 << width) - 1)
            for shift, width in block_boundaries(9, 3)
        ]
        rebuilt = 0
        for part, (_, width) in zip(parts, block_boundaries(9, 3)):
            rebuilt = (rebuilt << width) | part
        assert rebuilt == code


class TestVariantsWithin:
    def test_radius_zero(self):
        assert variants_within(0b101, 3, 0) == [0b101]

    def test_radius_one_count(self):
        variants = variants_within(0b101, 3, 1)
        assert len(variants) == 1 + 3
        assert len(set(variants)) == 4

    def test_radius_two_distances(self):
        for variant in variants_within(0b1100, 4, 2):
            assert (variant ^ 0b1100).bit_count() <= 2


class TestMultiHashSpecifics:
    def test_memory_replicates_per_table(self, random_codeset):
        mh4 = MultiHashTableIndex.build(random_codeset, num_tables=4)
        mh10 = MultiHashTableIndex.build(random_codeset, num_tables=10)
        assert mh4.stats().entries == 4 * len(random_codeset)
        assert mh10.stats().entries == 10 * len(random_codeset)
        assert mh10.stats().memory_bytes > mh4.stats().memory_bytes

    def test_tables_clamped_to_code_length(self):
        index = MultiHashTableIndex(4, num_tables=10)
        assert index.num_tables == 4

    def test_rejects_zero_tables(self):
        with pytest.raises(InvalidParameterError):
            MultiHashTableIndex(8, num_tables=0)


class TestHEngineSpecifics:
    def test_segment_count_from_threshold(self):
        # r = floor(h/2) + 1 (Liu et al.).
        assert HEngineIndex(32, max_threshold=3).num_segments == 2
        assert HEngineIndex(32, max_threshold=4).num_segments == 3
        assert HEngineIndex(32, max_threshold=7).num_segments == 4

    def test_less_memory_than_multihash(self, random_codeset):
        hengine = HEngineIndex.build(random_codeset).stats()
        mh4 = MultiHashTableIndex.build(
            random_codeset, num_tables=4
        ).stats()
        assert hengine.memory_bytes < mh4.memory_bytes

    def test_rejects_negative_threshold(self):
        with pytest.raises(InvalidParameterError):
            HEngineIndex(8, max_threshold=-1)


class TestHmSearchSpecifics:
    def test_index_side_signature_blowup(self, random_codeset):
        """HmSearch stores one-bit variants: entries >> dataset size."""
        hmsearch = HmSearchIndex.build(random_codeset).stats()
        hengine = HEngineIndex.build(random_codeset).stats()
        assert hmsearch.entries > 5 * len(random_codeset)
        assert hmsearch.memory_bytes > hengine.memory_bytes

    def test_delete_removes_all_signatures(self):
        codeset = CodeSet([0b1010], 4)
        index = HmSearchIndex.build(codeset)
        index.delete(0b1010, 0)
        assert index.stats().entries == 0


class TestNestedLoopsSpecifics:
    def test_empty(self):
        index = NestedLoopsIndex(8)
        assert index.search(0, 8) == []

    def test_insert_invalidates_packed_cache(self):
        index = NestedLoopsIndex(8)
        index.insert(1, 0)
        assert index.search(1, 0) == [0]
        index.insert(2, 1)
        assert sorted(index.search(3, 1)) == [0, 1]


class TestProbeDegeneracyFallback:
    """Large thresholds on wide segments must not enumerate probes.

    Regression: HEngine at 128-bit codes and h=30 would enumerate
    C(64, 15) ~ 10^15 probe variants and OOM; past the degeneracy
    point the indexes scan their stored entries instead (still exact).
    """

    def test_probe_count_formula(self):
        from math import comb

        from repro.baselines.multi_hash import probe_count

        assert probe_count(8, 0) == 1
        assert probe_count(8, 1) == 9
        assert probe_count(64, 15) == sum(
            comb(64, k) for k in range(16)
        )

    def test_hengine_wide_large_threshold_fast_and_exact(self):
        from repro.data.synthetic import random_codes

        codes = CodeSet(random_codes(300, 128, seed=91), 128)
        index = HEngineIndex.build(codes)
        query = codes[0]
        got = sorted(index.search(query, 40))
        expected = brute_force_select(codes, query, 40)
        assert got == expected
        # The fallback scans entries, never more XORs than the table.
        assert index.last_search_ops <= len(codes)

    def test_multihash_wide_large_threshold_fast_and_exact(self):
        from repro.data.synthetic import random_codes

        codes = CodeSet(random_codes(300, 128, seed=92), 128)
        index = MultiHashTableIndex.build(codes, num_tables=4)
        query = codes[1]
        got = sorted(index.search(query, 48))
        assert got == brute_force_select(codes, query, 48)
        assert index.last_search_ops <= len(codes)

    def test_hmsearch_wide_large_threshold_fast_and_exact(self):
        from repro.data.synthetic import random_codes

        codes = CodeSet(random_codes(200, 128, seed=93), 128)
        index = HmSearchIndex.build(codes)
        query = codes[2]
        got = sorted(index.search(query, 40))
        assert got == brute_force_select(codes, query, 40)
        assert index.last_search_ops <= len(codes)
