"""Unit tests for the observability layer: spans, registry, summaries.

Covers the trace plumbing (nesting, no-op behavior when idle, op
attribution, rendering), the metrics registry (idempotent registration,
exposition formats, the enabled gate), the percentile/latency edge
cases the serving stats depend on, and the ``profile=`` front-end.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.core.select import hamming_select
from repro.metrics import latency_summary, percentile
from repro.obs import (
    MetricsRegistry,
    maybe_trace,
    note_search,
    registry,
    reset,
    set_metrics_enabled,
)
from repro.obs.trace import (
    Span,
    add_ops,
    current_span,
    last_trace,
    record_span,
    render_span_tree,
    trace,
    trace_span,
    tracing,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    reset()
    yield
    reset()


class TestTracing:
    def test_idle_thread_has_no_trace(self):
        assert not tracing()
        assert current_span() is None

    def test_trace_span_is_noop_when_idle(self):
        with trace_span("h_search.level", ops=5, depth=0) as span:
            span.add_ops(10)
            span.annotate(examined=3)
        assert not tracing()

    def test_record_span_returns_none_when_idle(self):
        assert record_span("mr.map", 1.5, ops=3) is None

    def test_add_ops_is_noop_when_idle(self):
        add_ops(100)  # must not raise

    def test_root_trace_collects_children(self):
        with trace("h_select", threshold=3) as root:
            assert tracing()
            with trace_span("h_search.level", depth=0) as level:
                level.add_ops(7)
            record_span("h_search.buffer", 0.0, ops=2)
        assert not tracing()
        assert [child.name for child in root.children] == [
            "h_search.level", "h_search.buffer",
        ]
        assert root.total_ops == 9
        assert root.seconds >= 0.0
        assert last_trace() is root

    def test_nested_trace_attaches_as_child(self):
        with trace("outer") as outer:
            with trace("inner"):
                with trace_span("leaf", ops=1):
                    pass
        assert [child.name for child in outer.children] == ["inner"]
        assert outer.children[0].children[0].name == "leaf"
        # Only the *root* exit updates last_trace.
        assert last_trace() is outer

    def test_ops_attribute_to_innermost_span(self):
        with trace("root") as root:
            with trace_span("child"):
                add_ops(4)
            add_ops(1)
        assert root.ops == 1
        assert root.children[0].ops == 4
        assert root.total_ops == 5

    def test_find_walks_depth_first(self):
        with trace("root") as root:
            with trace_span("a", depth=0):
                with trace_span("a", depth=1):
                    pass
            with trace_span("b"):
                pass
        found = root.find("a")
        assert [span.attrs["depth"] for span in found] == [0, 1]
        assert root.find("missing") == []

    def test_as_dict_round_trips_through_json(self):
        with trace("root", engine="nodes") as root:
            with trace_span("child", ops=3, depth=1):
                pass
        payload = json.loads(json.dumps(root.as_dict()))
        assert payload["name"] == "root"
        assert payload["attrs"] == {"engine": "nodes"}
        assert payload["children"][0]["ops"] == 3

    def test_render_span_tree_shows_ops_total(self):
        root = Span("h_search", {"engine": "nodes"})
        child = Span("h_search.level", {"depth": 0})
        child.ops = 12
        root.children.append(child)
        rendered = render_span_tree(root)
        assert "h_search [engine=nodes]" in rendered
        assert "`-- h_search.level [depth=0]" in rendered
        assert "ops=12" in rendered
        assert rendered.endswith("total ops: 12")

    def test_maybe_trace_profile_false_opens_nothing(self):
        before = last_trace()
        with maybe_trace("h_select", False, threshold=3):
            assert not tracing()
        assert last_trace() is before

    def test_profile_kwarg_exposes_trace(self):
        codes = CodeSet([0b1010, 0b1011, 0b0110, 0b1010], 4)
        index = DynamicHAIndex.build(codes)
        result = hamming_select(0b1010, index, 1, profile=True)
        assert sorted(result) == sorted(index.search(0b1010, 1))
        tree = last_trace()
        assert tree is not None and tree.name == "h_select"
        assert tree.total_ops == index.last_search_ops


class TestTracedOpAccounting:
    def test_level_ops_sum_to_last_search_ops(self):
        import random

        rng = random.Random(11)
        codes = CodeSet([rng.getrandbits(32) for _ in range(400)], 32)
        index = DynamicHAIndex.build(codes)
        flat = index.compile()
        for engine, name in ((index, "nodes"), (flat, "flat")):
            query = rng.getrandbits(32)
            with trace("q") as root:
                engine.search(query, 3)
            assert root.total_ops == engine.last_search_ops, name
            levels = root.find("h_search.level")
            assert levels, name
            assert all(
                span.ops == span.attrs["examined"] for span in levels
            )

    def test_traced_and_untraced_walks_agree(self):
        import random

        rng = random.Random(13)
        codes = CodeSet([rng.getrandbits(32) for _ in range(300)], 32)
        index = DynamicHAIndex.build(codes)
        for trial in range(10):
            query = rng.getrandbits(32)
            plain = sorted(index.search(query, 4))
            plain_ops = index.last_search_ops
            with trace("q"):
                traced = sorted(index.search(query, 4))
            assert traced == plain
            assert index.last_search_ops == plain_ops


class TestRegistry:
    def test_disabled_by_default(self):
        assert not registry().enabled

    def test_counter_monotonic(self):
        reg = MetricsRegistry(enabled=True)
        counter = reg.counter("requests_total", "requests", kind="ok")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(InvalidParameterError):
            counter.inc(-1)

    def test_registration_is_idempotent_per_label_set(self):
        reg = MetricsRegistry(enabled=True)
        a = reg.counter("c", engine="nodes")
        b = reg.counter("c", engine="nodes")
        c = reg.counter("c", engine="flat")
        assert a is b
        assert a is not c

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry(enabled=True)
        gauge = reg.gauge("depth")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 8

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry(enabled=True)
        hist = reg.histogram("lat_ms", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 2.0, 7.0, 50.0):
            hist.observe(value)
        samples = dict(
            (suffix + label_text, value)
            for suffix, label_text, value in hist.expose()
        )
        assert samples['_bucket{le="1.0"}'] == 1
        assert samples['_bucket{le="5.0"}'] == 2
        assert samples['_bucket{le="10.0"}'] == 3
        assert samples['_bucket{le="+Inf"}'] == 4
        assert samples["_count"] == 4
        assert samples["_sum"] == pytest.approx(59.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(InvalidParameterError):
            MetricsRegistry(enabled=True).histogram(
                "bad", buckets=(5.0, 1.0)
            )

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("searches_total", "queries served", engine="flat").inc(3)
        reg.gauge("depth").set(2)
        text = reg.render_prometheus()
        assert "# HELP searches_total queries served" in text
        assert "# TYPE searches_total counter" in text
        assert 'searches_total{engine="flat"} 3' in text
        assert "# TYPE depth gauge" in text
        assert text.endswith("\n")

    def test_snapshot_is_json_able(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c", engine="nodes").inc(2)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        payload = json.loads(json.dumps(reg.snapshot()))
        assert payload["c"]["values"]['{engine="nodes"}'] == 2
        assert payload["h"]["values"]["{}"]["count"] == 1

    def test_clear_drops_metrics(self):
        reg = MetricsRegistry(enabled=True)
        reg.counter("c").inc()
        reg.clear()
        assert reg.render_prometheus() == ""

    def test_note_search_respects_enabled_gate(self):
        note_search("nodes", 42)
        assert registry().snapshot() == {}
        set_metrics_enabled(True)
        note_search("nodes", 42, queries=2)
        snap = registry().snapshot()
        assert snap["repro_search_total"]["values"]['{engine="nodes"}'] == 2
        assert (
            snap["repro_search_ops_total"]["values"]['{engine="nodes"}']
            == 42
        )


class TestLatencyEdgeCases:
    def test_percentile_empty_raises(self):
        with pytest.raises(InvalidParameterError):
            percentile([], 0.5)

    def test_percentile_fraction_bounds(self):
        with pytest.raises(InvalidParameterError):
            percentile([1.0], 1.5)
        with pytest.raises(InvalidParameterError):
            percentile([1.0], -0.1)
        with pytest.raises(InvalidParameterError):
            percentile([1.0], float("nan"))

    def test_percentile_single_sample(self):
        for fraction in (0.0, 0.5, 0.99, 1.0):
            assert percentile([3.25], fraction) == 3.25

    def test_percentile_rejects_nan_samples(self):
        with pytest.raises(InvalidParameterError):
            percentile([1.0, float("nan"), 2.0], 0.5)

    def test_percentile_is_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0.5) == 20.0
        assert percentile(samples, 0.75) == 30.0
        assert percentile(samples, 0.751) == 40.0

    def test_latency_summary_empty_window(self):
        summary = latency_summary([])
        assert summary["count"] == 0.0
        assert summary["p99_ms"] == 0.0

    def test_latency_summary_single_sample(self):
        summary = latency_summary([2.5])
        assert summary["count"] == 1.0
        assert summary["mean_ms"] == 2.5
        assert summary["p50_ms"] == 2.5
        assert summary["p99_ms"] == 2.5
        assert summary["max_ms"] == 2.5

    def test_latency_summary_drops_non_finite(self):
        summary = latency_summary(
            [1.0, float("nan"), float("inf"), 3.0, -float("inf")]
        )
        assert summary["count"] == 2.0
        assert summary["mean_ms"] == 2.0
        assert summary["max_ms"] == 3.0
        assert all(
            math.isfinite(value) for value in summary.values()
        )

    def test_latency_summary_all_nan_behaves_like_empty(self):
        summary = latency_summary([float("nan")] * 3)
        assert summary["count"] == 0.0
        assert summary["p95_ms"] == 0.0
