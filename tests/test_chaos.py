"""Chaos tests: fault transparency, speculation, checkpointed recovery.

The paper leans on MapReduce being "a reliable distributed computing
model" (Section 1): failed tasks are re-executed and the job's output is
unaffected.  These tests *prove* that invariant for the distributed
pipelines — seeded chaos runs (crashes, worker deaths, stragglers,
broadcast-fetch failures) must return exactly the fault-free result set,
with no lost or duplicated pairs — and exercise speculative execution
and the job-chain checkpoint recovery path end to end.
"""

from __future__ import annotations

import pytest

from repro.core.errors import JobExecutionError
from repro.data.synthetic import nuswide_like
from repro.distributed.hamming_join import mapreduce_hamming_join
from repro.distributed.hamming_select import mapreduce_hamming_select
from repro.mapreduce.checkpoint import (
    STAGE_INDEX_BUILD,
    CheckpointStore,
    fingerprint_parts,
)
from repro.mapreduce.cluster import Cluster
from repro.mapreduce.counters import (
    CHECKPOINT_RESTORES,
    TASK_RETRIES,
    TASK_SPECULATIVE,
)
from repro.mapreduce.faults import ChaosPolicy, FaultPlan, hash_unit
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.runtime import MapReduceRuntime

pytestmark = pytest.mark.slow


def _records(n: int, seed: int = 7):
    dataset = nuswide_like(n, seed=seed)
    return list(zip(range(len(dataset)), dataset.vectors))


def _chaos_runtime(workers: int, policy: ChaosPolicy) -> MapReduceRuntime:
    # A roomier attempt budget keeps deterministic unlucky streaks from
    # aborting the run; transparency, not availability, is under test.
    return MapReduceRuntime(
        Cluster(workers), fault_plan=FaultPlan(policy), max_task_attempts=6
    )


class TestHashUnit:
    def test_deterministic_and_uniformish(self):
        draws = [hash_unit(1, "x", i) for i in range(200)]
        assert draws == [hash_unit(1, "x", i) for i in range(200)]
        assert all(0.0 <= draw < 1.0 for draw in draws)
        assert 0.3 < sum(draws) / len(draws) < 0.7

    def test_seed_changes_draws(self):
        assert hash_unit(1, "x") != hash_unit(2, "x")


class TestPolicyValidation:
    def test_rejects_bad_probability(self):
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ChaosPolicy(crash_prob=1.5)

    def test_rejects_speedup_factor(self):
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            ChaosPolicy(straggler_factor=0.5)

    def test_enabled_flag(self):
        assert not ChaosPolicy().enabled
        assert ChaosPolicy(crash_prob=0.1).enabled
        assert ChaosPolicy(
            straggler_factor=4.0, slow_workers=(0,)
        ).enabled
        # A factor with nothing selecting stragglers injects no fault.
        assert not ChaosPolicy(straggler_factor=4.0).enabled


class TestFaultTransparency:
    """Seeded chaos must not change any pipeline's result set."""

    @pytest.mark.parametrize("chaos_seed", [1, 2, 3])
    @pytest.mark.parametrize(
        "threshold,workers", [(2, 2), (3, 5)]
    )
    def test_join_identical_under_chaos(self, chaos_seed, threshold, workers):
        records = _records(130)
        calm = MapReduceRuntime(Cluster(workers))
        baseline = mapreduce_hamming_join(
            calm, records, records, threshold=threshold, num_bits=16,
            option="A", sample_size=90, exclude_self_pairs=True,
        )
        policy = ChaosPolicy(
            seed=chaos_seed,
            crash_prob=0.15,
            straggler_prob=0.2,
            straggler_factor=4.0,
            broadcast_failure_prob=0.1,
            worker_death_prob=0.01,
        )
        chaotic = _chaos_runtime(workers, policy)
        stormy = mapreduce_hamming_join(
            chaotic, records, records, threshold=threshold, num_bits=16,
            option="A", sample_size=90, exclude_self_pairs=True,
        )
        assert sorted(stormy.pairs) == sorted(baseline.pairs)

    @pytest.mark.parametrize("chaos_seed", [11, 12])
    def test_join_option_b_identical_under_chaos(self, chaos_seed):
        records = _records(120)
        calm = MapReduceRuntime(Cluster(3))
        baseline = mapreduce_hamming_join(
            calm, records, records, threshold=3, num_bits=16,
            option="B", sample_size=90, exclude_self_pairs=True,
        )
        policy = ChaosPolicy(
            seed=chaos_seed, crash_prob=0.2, broadcast_failure_prob=0.1
        )
        stormy = mapreduce_hamming_join(
            _chaos_runtime(3, policy), records, records, threshold=3,
            num_bits=16, option="B", sample_size=90,
            exclude_self_pairs=True,
        )
        assert sorted(stormy.pairs) == sorted(baseline.pairs)

    @pytest.mark.parametrize("chaos_seed", [4, 5, 6])
    @pytest.mark.parametrize(
        "threshold,workers", [(2, 2), (3, 4)]
    )
    def test_select_identical_under_chaos(self, chaos_seed, threshold, workers):
        records = _records(140)
        queries = [(900 + i, vector) for i, (_, vector) in
                   enumerate(records[:12])]
        calm = MapReduceRuntime(Cluster(workers))
        baseline = mapreduce_hamming_select(
            calm, records, queries, threshold=threshold,
            num_bits=16, sample_size=90,
        )
        policy = ChaosPolicy(
            seed=chaos_seed,
            crash_prob=0.15,
            straggler_prob=0.25,
            straggler_factor=3.0,
            broadcast_failure_prob=0.1,
        )
        stormy = mapreduce_hamming_select(
            _chaos_runtime(workers, policy), records, queries,
            threshold=threshold, num_bits=16, sample_size=90,
        )
        assert stormy.matches == baseline.matches

    def test_chaos_actually_injected(self):
        """The transparency results above must not be vacuous."""
        records = _records(130)
        policy = ChaosPolicy(seed=1, crash_prob=0.15)
        runtime = _chaos_runtime(4, policy)
        mapreduce_hamming_join(
            runtime, records, records, threshold=2, num_bits=16,
            option="A", sample_size=90, exclude_self_pairs=True,
        )
        assert runtime.cluster.counters.get(TASK_RETRIES) > 0


class TestSpeculativeExecution:
    def _straggler_workload(self, speculation: bool):
        # Worker 0 is pathologically slow; every task landing on it
        # straggles by 12x.  Many similar-cost tasks give the scheduler
        # a stable median to detect stragglers against.
        policy = ChaosPolicy(
            seed=3, straggler_factor=12.0, slow_workers=(0,)
        )
        runtime = MapReduceRuntime(
            Cluster(4),
            fault_plan=FaultPlan(policy),
            speculative_execution=speculation,
        )

        def mapper(key, value, context):
            total = 0
            for i in range(4000):
                total += i * i
            yield value % 4, total

        result = runtime.run(
            MapReduceJob(name="skewed", mapper=mapper),
            [(i, i) for i in range(32)],
            num_splits=32,
        )
        return result, runtime

    def test_speculation_reduces_wall_clock(self):
        slow, _ = self._straggler_workload(speculation=False)
        fast, runtime = self._straggler_workload(speculation=True)
        assert runtime.cluster.counters.get(TASK_SPECULATIVE) > 0
        assert fast.map_wall_seconds < slow.map_wall_seconds

    def test_speculation_preserves_output(self):
        slow, _ = self._straggler_workload(speculation=False)
        fast, _ = self._straggler_workload(speculation=True)
        assert sorted(fast.output) == sorted(slow.output)


class TestCheckpointStore:
    def test_restore_requires_matching_fingerprint(self):
        store = CheckpointStore()
        store.save("stage", "fp-1", {"x": 1})
        assert store.restore("stage", "fp-1") == {"x": 1}
        assert store.restore("stage", "fp-2") is None
        assert store.restore("other", "fp-1") is None

    def test_disk_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.save("stage", "fp", [1, 2, 3])
        fresh = CheckpointStore(tmp_path / "ckpt")
        assert fresh.restore("stage", "fp") == [1, 2, 3]

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("stage", "fp", [1])
        (tmp_path / "stage.ckpt").write_bytes(b"not a pickle")
        fresh = CheckpointStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            assert fresh.restore("stage", "fp") is None
        # the unusable file is discarded, so later restores are clean
        assert not (tmp_path / "stage.ckpt").exists()
        assert fresh.restore("stage", "fp") is None

    def test_truncated_disk_entry_is_a_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("stage", "fp", list(range(100)))
        file = tmp_path / "stage.ckpt"
        file.write_bytes(file.read_bytes()[:10])
        fresh = CheckpointStore(tmp_path)
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            assert fresh.restore("stage", "fp") is None
        # a re-run saves over the discarded entry and restores again
        fresh.save("stage", "fp", list(range(100)))
        assert CheckpointStore(tmp_path).restore(
            "stage", "fp"
        ) == list(range(100))

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        import pickle as _pickle

        store = CheckpointStore(tmp_path)
        (tmp_path / "stage.ckpt").write_bytes(
            _pickle.dumps(["not", "a", "pair"])
        )
        with pytest.warns(RuntimeWarning, match="unexpected payload"):
            assert store.restore("stage", "fp") is None

    def test_discard_and_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("a", "fp", 1)
        store.save("b", "fp", 2)
        store.discard("a")
        assert store.restore("a", "fp") is None
        store.clear()
        assert len(store) == 0
        assert not (tmp_path / "b.ckpt").exists()

    def test_fingerprint_parts_sensitive(self):
        assert fingerprint_parts(1, "a") != fingerprint_parts(1, "b")
        assert fingerprint_parts(1, "a") == fingerprint_parts(1, "a")


class TestCheckpointedRecovery:
    """A mid-pipeline abort resumes from the persisted build output."""

    def test_join_resumes_from_index_build(self):
        records = _records(120)
        baseline = mapreduce_hamming_join(
            MapReduceRuntime(Cluster(3)), records, records,
            threshold=3, num_bits=16, option="A", sample_size=90,
            exclude_self_pairs=True,
        )

        store = CheckpointStore()
        # First run: the join job (phase 3) always crashes and the
        # pipeline aborts mid-chain — but preprocess and index build
        # have already checkpointed.
        doomed_policy = ChaosPolicy(crash_jobs=("hamming-join-A",))
        doomed = MapReduceRuntime(
            Cluster(3), fault_plan=FaultPlan(doomed_policy)
        )
        with pytest.raises(JobExecutionError):
            mapreduce_hamming_join(
                doomed, records, records, threshold=3, num_bits=16,
                option="A", sample_size=90, exclude_self_pairs=True,
                checkpoints=store,
            )
        # Both stages persisted before the abort.
        assert len(store) == 2

        # Recovery run: same inputs, fresh healthy cluster — job 1 is
        # restored from the checkpoint, only the join job re-runs.
        recovery = MapReduceRuntime(Cluster(3))
        report = mapreduce_hamming_join(
            recovery, records, records, threshold=3, num_bits=16,
            option="A", sample_size=90, exclude_self_pairs=True,
            checkpoints=store,
        )
        assert report.build_restored
        assert recovery.cluster.counters.get(CHECKPOINT_RESTORES) >= 2
        assert sorted(report.pairs) == sorted(baseline.pairs)

    def test_checkpoint_ignored_when_inputs_change(self):
        records = _records(100)
        store = CheckpointStore()
        mapreduce_hamming_join(
            MapReduceRuntime(Cluster(2)), records, records,
            threshold=2, num_bits=16, option="A", sample_size=80,
            exclude_self_pairs=True, checkpoints=store,
        )
        other = _records(100, seed=99)
        report = mapreduce_hamming_join(
            MapReduceRuntime(Cluster(2)), other, other,
            threshold=2, num_bits=16, option="A", sample_size=80,
            exclude_self_pairs=True, checkpoints=store,
        )
        # Different inputs: the stale checkpoint must not be served.
        assert not report.build_restored

    def test_select_restores_preprocess(self):
        records = _records(110)
        queries = [(500 + i, vector) for i, (_, vector) in
                   enumerate(records[:6])]
        store = CheckpointStore()
        first = mapreduce_hamming_select(
            MapReduceRuntime(Cluster(3)), records, queries, threshold=2,
            num_bits=16, sample_size=80, checkpoints=store,
        )
        rerun_runtime = MapReduceRuntime(Cluster(3))
        again = mapreduce_hamming_select(
            rerun_runtime, records, queries, threshold=2,
            num_bits=16, sample_size=80, checkpoints=store,
        )
        assert rerun_runtime.cluster.counters.get(CHECKPOINT_RESTORES) == 1
        assert again.matches == first.matches
        assert store.restore(
            STAGE_INDEX_BUILD, "anything"
        ) is None  # select has no build stage
