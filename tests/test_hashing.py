"""Unit tests for the similarity-hash layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import HashNotFittedError, InvalidParameterError
from repro.hashing.base import SimilarityHash
from repro.hashing.hyperplane import HyperplaneHash
from repro.hashing.spectral import SpectralHash
from repro.hashing.zorder import ZOrderMapper, interleave_bits

HASH_FACTORIES = [
    pytest.param(lambda bits: HyperplaneHash(bits, seed=3), id="hyperplane"),
    pytest.param(lambda bits: SpectralHash(bits), id="spectral"),
]


def _two_cluster_data(n: int = 400, d: int = 16, seed: int = 0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n // 2, d)) * 0.05 + 2.0
    b = rng.standard_normal((n // 2, d)) * 0.05 - 2.0
    return np.vstack([a, b])


@pytest.mark.parametrize("factory", HASH_FACTORIES)
class TestHashContract:
    def test_code_length(self, factory):
        hasher = factory(24)
        codes = hasher.fit_encode(_two_cluster_data())
        assert codes.length == 24
        assert all(code < (1 << 24) for code in codes)

    def test_encode_before_fit_raises(self, factory):
        with pytest.raises(HashNotFittedError):
            factory(8).encode(np.zeros((2, 4)))

    def test_deterministic(self, factory):
        data = _two_cluster_data()
        first = factory(16).fit_encode(data)
        second = factory(16).fit_encode(data)
        assert first.codes == second.codes

    def test_encode_single_row(self, factory):
        data = _two_cluster_data()
        hasher = factory(16).fit(data)
        single = hasher.encode(data[0])
        assert len(single) == 1
        assert single[0] == hasher.encode(data[:1])[0]

    def test_dimension_mismatch_raises(self, factory):
        hasher = factory(8).fit(_two_cluster_data(d=16))
        with pytest.raises(InvalidParameterError):
            hasher.encode(np.zeros((2, 5)))

    def test_locality(self, factory):
        """Near points get nearer codes than far points, on average."""
        data = _two_cluster_data()
        codes = factory(32).fit_encode(data)
        half = len(data) // 2
        within = []
        across = []
        for i in range(0, half, 20):
            within.append((codes[i] ^ codes[i + 1]).bit_count())
            across.append((codes[i] ^ codes[half + i]).bit_count())
        assert np.mean(within) < np.mean(across)

    def test_rejects_zero_bits(self, factory):
        with pytest.raises(InvalidParameterError):
            factory(0)


class TestSpectralSpecifics:
    def test_eigenfunctions_sorted_by_eigenvalue(self):
        hasher = SpectralHash(16)
        hasher.fit(_two_cluster_data())
        eigenvalues = [f.eigenvalue for f in hasher.eigenfunctions]
        assert eigenvalues == sorted(eigenvalues)
        assert len(eigenvalues) == 16

    def test_long_directions_get_low_modes_first(self):
        """The stretched PCA direction hosts the first eigenfunctions."""
        rng = np.random.default_rng(5)
        data = rng.standard_normal((300, 4)) * np.array([10.0, 1, 1, 1])
        hasher = SpectralHash(4)
        hasher.fit(data)
        assert hasher.eigenfunctions[0].dimension == 0
        assert hasher.eigenfunctions[0].mode == 1

    def test_needs_two_rows(self):
        with pytest.raises(InvalidParameterError):
            SpectralHash(4).fit(np.zeros((1, 3)))

    def test_num_components_validated(self):
        with pytest.raises(InvalidParameterError):
            SpectralHash(4, num_components=0)

    def test_code_distribution_not_degenerate(self):
        codes = SpectralHash(16).fit_encode(_two_cluster_data())
        assert len(set(codes.codes)) > 1


class TestHyperplaneSpecifics:
    def test_seed_controls_planes(self):
        data = _two_cluster_data()
        a = HyperplaneHash(16, seed=1).fit_encode(data)
        b = HyperplaneHash(16, seed=2).fit_encode(data)
        assert a.codes != b.codes

    def test_empty_fit_raises(self):
        with pytest.raises(InvalidParameterError):
            HyperplaneHash(8).fit(np.zeros((0, 4)))

    def test_angular_distance_estimate(self):
        """Simhash: E[hamming/L] approximates angle/pi (Charikar)."""
        rng = np.random.default_rng(9)
        base = rng.standard_normal(32)
        near = base + rng.standard_normal(32) * 0.05
        orthogonal = rng.standard_normal(32)
        orthogonal -= orthogonal @ base / (base @ base) * base
        data = np.vstack([base, near, orthogonal])
        hasher = HyperplaneHash(256, seed=4)
        # Fit on zero-mean data so no centering shift is applied.
        hasher.fit(np.zeros((2, 32)))
        codes = hasher.encode(data)
        near_fraction = (codes[0] ^ codes[1]).bit_count() / 256
        orth_fraction = (codes[0] ^ codes[2]).bit_count() / 256
        assert near_fraction < 0.15
        assert 0.3 < orth_fraction < 0.7


class TestZOrder:
    def test_interleave_known_value(self):
        # 2-D, 2 bits: x=0b11, y=0b00 -> bits x1 y1 x0 y0 = 1010.
        assert interleave_bits([0b11, 0b00], 2) == 0b1010

    def test_interleave_rejects_empty(self):
        with pytest.raises(InvalidParameterError):
            interleave_bits([], 4)

    def test_mapper_orders_by_locality(self):
        rng = np.random.default_rng(2)
        data = rng.uniform(0, 1, size=(100, 2))
        mapper = ZOrderMapper(8).fit(data)
        z_values = mapper.z_values(data)
        assert len(z_values) == 100
        # Identical points share z-values.
        same = mapper.z_values(np.vstack([data[0], data[0]]))
        assert same[0] == same[1]

    def test_random_shift_changes_codes(self):
        data = np.random.default_rng(3).uniform(0, 1, size=(50, 3))
        plain = ZOrderMapper(6).fit(data).z_values(data)
        shifted = ZOrderMapper(6, seed=11).fit(data).z_values(data)
        assert plain != shifted

    def test_query_before_fit_raises(self):
        with pytest.raises(InvalidParameterError):
            ZOrderMapper(4).z_values(np.zeros((1, 2)))

    def test_degenerate_extent_handled(self):
        data = np.ones((10, 3))
        mapper = ZOrderMapper(4).fit(data)
        assert len(mapper.z_values(data)) == 10


class TestBaseHelpers:
    def test_signs_to_codes_column_order(self):
        class Fixed(SimilarityHash):
            def _fit(self, matrix):
                pass

            def _project(self, matrix):
                return np.array([[True, False, True]])

        hasher = Fixed(3)
        hasher.fit(np.zeros((2, 2)))
        assert hasher.encode(np.zeros((1, 2)))[0] == 0b101
