"""Unit tests for the Radix-Tree (PATRICIA) index of Section 4.2."""

from __future__ import annotations

import pytest

from repro.core.bitvector import CodeSet
from repro.core.errors import IndexStateError
from repro.core.radix_tree import RadixTreeIndex
from repro.data.synthetic import random_codes

from .conftest import EXAMPLE_QUERY, EXAMPLE_SELECT_IDS
from .helpers import assert_search_exact, brute_force_select


class TestBuildAndSearch:
    def test_paper_example(self, table_s):
        index = RadixTreeIndex.build(table_s)
        assert sorted(index.search(EXAMPLE_QUERY, 3)) == EXAMPLE_SELECT_IDS

    def test_paper_example3_pruning_query(self, table_s):
        # Example 3: query "110010110", h = 2 discards t0 and t1 on the
        # shared prefix "001".
        index = RadixTreeIndex.build(table_s)
        results = index.search(0b110010110, 2)
        assert 0 not in results and 1 not in results

    def test_threshold_zero_exact_match(self, table_s):
        index = RadixTreeIndex.build(table_s)
        assert index.search(table_s[4], 0) == [4]

    def test_threshold_full_length_returns_all(self, table_s):
        index = RadixTreeIndex.build(table_s)
        assert sorted(index.search(0, table_s.length)) == list(range(8))

    def test_duplicate_codes_share_leaf(self):
        codeset = CodeSet([5, 5, 9], 4, ids=[1, 2, 3])
        index = RadixTreeIndex.build(codeset)
        assert sorted(index.search(5, 0)) == [1, 2]

    def test_exact_on_random_codes(self, random_codeset, query_rng):
        index = RadixTreeIndex.build(random_codeset)
        queries = [query_rng.getrandbits(32) for _ in range(10)]
        assert_search_exact(index, random_codeset, queries, [0, 1, 3, 6])

    def test_exact_on_clustered_codes(self, clustered_codeset, query_rng):
        index = RadixTreeIndex.build(clustered_codeset)
        queries = [clustered_codeset[i] for i in (0, 100, 700)]
        assert_search_exact(index, clustered_codeset, queries, [2, 5])

    def test_empty_index(self):
        index = RadixTreeIndex(16)
        assert index.search(123, 5) == []
        assert len(index) == 0


class TestMaintenance:
    def test_insert_then_search(self):
        index = RadixTreeIndex(8)
        index.insert(0b1010_0001, 7)
        assert index.search(0b1010_0001, 0) == [7]
        assert len(index) == 1

    def test_delete_removes_tuple(self, table_s):
        index = RadixTreeIndex.build(table_s)
        index.delete(table_s[3], 3)
        assert 3 not in index.search(EXAMPLE_QUERY, 3)
        assert len(index) == 7

    def test_delete_absent_code_raises(self, table_s):
        index = RadixTreeIndex.build(table_s)
        with pytest.raises(IndexStateError):
            index.delete(0b111111111, 99)

    def test_delete_absent_id_raises(self, table_s):
        index = RadixTreeIndex.build(table_s)
        with pytest.raises(IndexStateError):
            index.delete(table_s[0], 42)

    def test_delete_then_reinsert_roundtrip(self, random_codeset):
        index = RadixTreeIndex.build(random_codeset)
        before = sorted(index.search(random_codeset[0], 4))
        index.delete(random_codeset[0], 0)
        index.insert(random_codeset[0], 0)
        assert sorted(index.search(random_codeset[0], 4)) == before

    def test_delete_all_leaves_empty_tree(self):
        codes = random_codes(50, 12, seed=3)
        codeset = CodeSet(codes, 12)
        index = RadixTreeIndex.build(codeset)
        for tuple_id, code in enumerate(codes):
            index.delete(code, tuple_id)
        assert len(index) == 0
        assert index.search(codes[0], 12) == []
        assert index.stats().entries == 0

    def test_interleaved_updates_stay_exact(self, random_codeset, query_rng):
        index = RadixTreeIndex.build(random_codeset)
        codes = list(random_codeset.codes)
        removed = set()
        for step in range(100):
            victim = query_rng.randrange(len(codes))
            if victim in removed:
                index.insert(codes[victim], victim)
                removed.discard(victim)
            else:
                index.delete(codes[victim], victim)
                removed.add(victim)
        live = random_codeset.subset(
            [i for i in range(len(codes)) if i not in removed]
        )
        query = query_rng.getrandbits(32)
        assert sorted(index.search(query, 5)) == brute_force_select(
            live, query, 5
        )


class TestStats:
    def test_prefix_sharing_reduces_stored_bits(self):
        # Codes sharing long prefixes store the prefix bits once.
        shared = CodeSet([0b11110000, 0b11110001, 0b11110010], 8)
        spread = CodeSet([0b00000000, 0b10101010, 0b01010101], 8)
        assert (
            RadixTreeIndex.build(shared).stats().code_bits
            < RadixTreeIndex.build(spread).stats().code_bits
        )

    def test_stats_counts(self, table_s):
        stats = RadixTreeIndex.build(table_s).stats()
        assert stats.entries == 8
        assert stats.nodes >= 8  # at least one node per distinct code
        assert stats.memory_bytes > 0
