"""Unit tests for the vector-space kNN baselines (E2LSH, LSB-Tree)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.lsb_tree import LSBTreeIndex
from repro.baselines.lsh import E2LSHIndex
from repro.core.errors import IndexStateError, InvalidParameterError


def _clustered_vectors(n: int = 300, d: int = 12, seed: int = 0):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-4, 4, size=(6, d))
    assignments = rng.integers(0, 6, size=n)
    return centers[assignments] + rng.standard_normal((n, d)) * 0.2


def _exact_knn(vectors: np.ndarray, query: np.ndarray, k: int):
    distances = np.linalg.norm(vectors - query, axis=1)
    order = np.argsort(distances, kind="stable")[:k]
    return [(int(i), float(distances[i])) for i in order]


KNN_FACTORIES = [
    pytest.param(lambda: E2LSHIndex(num_tables=12, seed=2), id="e2lsh"),
    pytest.param(
        lambda: LSBTreeIndex(num_trees=10, probe_width=24, seed=2),
        id="lsb-tree",
    ),
]


@pytest.mark.parametrize("factory", KNN_FACTORIES)
class TestKnnBaselineContract:
    def test_returns_k_sorted_results(self, factory):
        vectors = _clustered_vectors()
        index = factory().fit(vectors)
        results = index.query(vectors[5], 10)
        assert len(results) == 10
        distances = [d for _, d in results]
        assert distances == sorted(distances)

    def test_self_query_finds_itself(self, factory):
        vectors = _clustered_vectors()
        index = factory().fit(vectors)
        top_id, top_distance = index.query(vectors[17], 1)[0]
        assert top_id == 17
        assert top_distance == 0.0

    def test_recall_against_exact(self, factory):
        """Approximate kNN recovers most true neighbours."""
        vectors = _clustered_vectors()
        index = factory().fit(vectors)
        hits = 0
        total = 0
        for probe in range(0, 60, 10):
            truth = {i for i, _ in _exact_knn(vectors, vectors[probe], 10)}
            found = {i for i, _ in index.query(vectors[probe], 10)}
            hits += len(truth & found)
            total += len(truth)
        assert hits / total >= 0.7

    def test_query_before_fit_raises(self, factory):
        with pytest.raises(IndexStateError):
            factory().query(np.zeros(4), 3)

    def test_rejects_bad_k(self, factory):
        index = factory().fit(_clustered_vectors())
        with pytest.raises(InvalidParameterError):
            index.query(np.zeros(12), 0)

    def test_fallback_when_buckets_underdeliver(self, factory):
        """Tiny datasets still return k answers via the scan fallback."""
        vectors = _clustered_vectors(n=5)
        index = factory().fit(vectors)
        assert len(index.query(vectors[0], 5)) == 5


class TestE2LSHSpecifics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            E2LSHIndex(num_tables=0)
        with pytest.raises(InvalidParameterError):
            E2LSHIndex(bucket_width=-1.0)

    def test_rejects_empty_fit(self):
        with pytest.raises(InvalidParameterError):
            E2LSHIndex().fit(np.zeros((0, 4)))

    def test_explicit_bucket_width_used(self):
        vectors = _clustered_vectors()
        index = E2LSHIndex(num_tables=4, bucket_width=100.0, seed=1)
        index.fit(vectors)
        # A huge bucket width lumps everything together; still exact top-1.
        assert index.query(vectors[3], 1)[0][0] == 3


class TestLSBTreeSpecifics:
    def test_rejects_bad_parameters(self):
        with pytest.raises(InvalidParameterError):
            LSBTreeIndex(num_trees=0)
        with pytest.raises(InvalidParameterError):
            LSBTreeIndex(probe_width=0)

    def test_more_trees_do_not_reduce_recall(self):
        vectors = _clustered_vectors(seed=4)

        def recall(trees):
            index = LSBTreeIndex(
                num_trees=trees, probe_width=8, seed=0
            ).fit(vectors)
            hits = 0
            for probe in range(0, 30, 5):
                truth = {
                    i for i, _ in _exact_knn(vectors, vectors[probe], 5)
                }
                found = {i for i, _ in index.query(vectors[probe], 5)}
                hits += len(truth & found)
            return hits

        assert recall(12) >= recall(2)

    def test_num_trees_property(self):
        assert LSBTreeIndex(num_trees=7).num_trees == 7
