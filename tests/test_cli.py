"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_index(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["select", "--index", "nope"])

    def test_defaults(self):
        args = build_parser().parse_args(["select"])
        assert args.dataset == "nuswide"
        assert args.threshold == 3
        assert args.index == "DHA-Index"


class TestCommands:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "t0: 001001010" in out
        assert "t0, t3, t4, t6" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "DHA-Index" in out
        assert "nuswide -> NUS-WIDE" in out
        assert "serve-bench" in out

    def test_help_lists_serve_bench(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "serve-bench" in capsys.readouterr().out

    def test_select_small(self, capsys):
        assert main(
            ["select", "--n", "300", "--bits", "16", "--threshold", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "matches" in out
        assert "distance computations" in out

    def test_select_every_family(self, capsys):
        for family in ("Nested-Loops", "MH-4", "SHA-Index"):
            assert main(
                ["select", "--n", "200", "--bits", "16",
                 "--index", family]
            ) == 0

    def test_join_small(self, capsys):
        assert main(["join", "--n", "250", "--bits", "16"]) == 0
        assert "pairs in" in capsys.readouterr().out

    def test_knn_small(self, capsys):
        assert main(
            ["knn", "--n", "300", "--bits", "16", "--k", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("tuple ") >= 5

    def test_mrjoin_small(self, capsys):
        assert main(
            ["mrjoin", "--n", "200", "--bits", "16", "--workers", "4",
             "--option", "B"]
        ) == 0
        out = capsys.readouterr().out
        assert "MRHA-Index-B" in out
        assert "shuffle volume" in out

    def test_mrjoin_auto_resolves(self, capsys):
        assert main(
            ["mrjoin", "--n", "150", "--bits", "16", "--workers", "4"]
        ) == 0
        assert "MRHA-Index-A" in capsys.readouterr().out

    def test_serve_bench_smoke(self, capsys):
        assert main(
            ["serve-bench", "--n", "300", "--bits", "16",
             "--queries", "200", "--workers", "2", "--updates", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "queries/s" in out
        assert "service stats" in out
        assert "hit rate" in out
        assert "0 rejected" in out

    def test_verify_command(self, capsys):
        assert main(["verify", "--n", "200", "--bits", "16"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") == 7

    def test_trace_command(self, capsys):
        assert main(
            ["trace", "--n", "400", "--bits", "16", "--threshold", "2"]
        ) == 0
        out = capsys.readouterr().out
        # One span tree and one ops verdict per engine.
        assert out.count("h_search.level") >= 2
        assert out.count("total ops:") == 2
        assert out.count("-> OK") == 2
        assert "MISMATCH" not in out

    def test_trace_single_engine(self, capsys):
        assert main(
            ["trace", "--n", "300", "--bits", "16", "--engine", "flat"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("-> OK") == 1
        assert "engine=flat" in out

    def test_trace_all_planes_includes_native(self, capsys):
        assert main(
            ["trace", "--n", "300", "--bits", "16", "--engine", "all"]
        ) == 0
        out = capsys.readouterr().out
        assert out.count("-> OK") == 3
        assert "engine=native" in out

    def test_bench_kernel_verify_iterates_registry(self, capsys):
        from repro.core.engines import engine_names

        assert main(
            ["bench-kernel", "--n", "200", "--bits", "16",
             "--verify", "--engine", "all"]
        ) == 0
        out = capsys.readouterr().out
        # Every registered engine must appear: a new engine cannot
        # silently skip verification.
        for name in engine_names():
            assert f"kernel equivalence OK: {name} vs node walk" in out
        assert (
            f"OK for all {len(engine_names())} registered engines" in out
        )
        # The native plane is checked on both execution paths.
        assert "numpy fallback" in out

    def test_bench_kernel_verify_native_strict(self, capsys):
        assert main(
            ["bench-kernel", "--n", "200", "--bits", "16",
             "--verify", "--engine", "native"]
        ) == 0
        out = capsys.readouterr().out
        assert "kernel equivalence OK: native vs node walk" in out
        assert "ops" in out and "backend" in out

    def test_bench_kernel_all_requires_verify(self, capsys):
        assert main(
            ["bench-kernel", "--n", "120", "--bits", "16",
             "--engine", "all"]
        ) == 2

    def test_metrics_command_prom(self, capsys):
        from repro.obs import metrics_enabled, registry

        assert main(
            ["metrics", "--n", "300", "--bits", "16", "--queries", "50"]
        ) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_search_total counter" in out
        assert "service_batch_size_bucket" in out
        assert 'repro_search_total{engine="flat"}' in out
        # The command must clean up the process-wide registry.
        assert not metrics_enabled()
        assert registry().snapshot() == {}

    def test_metrics_command_json(self, capsys):
        import json

        assert main(
            ["metrics", "--n", "300", "--bits", "16",
             "--queries", "50", "--format", "json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["repro_search_total"]["type"] == "counter"
        assert "service_served" in payload
