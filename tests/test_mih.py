"""Multi-Index Hashing engine: contract, mutations, kNN guarantees.

The differential and metamorphic suites pin MIH's *answers* against
the other engines; this module pins the engine-specific machinery —
substring-table layout, mutation semantics with duplicate codes,
empty-table probes, the progressive-radius kNN boundary behavior,
op accounting, and the registry/service integration.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import CodeSet
from repro.core.engines import (
    ENGINES,
    build_index,
    engine_choices,
    engine_names,
    get_engine,
    paper_families,
)
from repro.core.errors import (
    CodeLengthError,
    IndexStateError,
    InvalidParameterError,
)
from repro.core.knn import exact_knn_codes, knn_select
from repro.core.select import INDEX_FAMILIES
from repro.engines.mih import MIHIndex, default_num_tables


def _oracle(codes, ids, query, threshold):
    return sorted(
        tuple_id
        for code, tuple_id in zip(codes, ids)
        if (code ^ query).bit_count() <= threshold
    )


# -- construction ----------------------------------------------------------


def test_default_num_tables_targets_byte_substrings() -> None:
    assert default_num_tables(8) == 1
    assert default_num_tables(32) == 4
    assert default_num_tables(64) == 8
    assert default_num_tables(96) == 12
    # Short codes never get more tables than bits.
    assert default_num_tables(3) == 1


def test_default_num_tables_scales_with_corpus_size() -> None:
    """Known corpus sizes widen substrings toward log2(n) bits."""
    # Small corpora keep the 8-bit rule: max(8, log2 n) == 8.
    assert default_num_tables(32, 200) == 4
    assert default_num_tables(64, 256) == 8
    # Large corpora target ~log2(n)-bit substrings (15 at n=30000).
    assert default_num_tables(32, 30_000) == 2
    assert default_num_tables(64, 30_000) == 4
    # Clamps still hold: >64-bit substrings are never produced.
    assert default_num_tables(96, 1 << 40) >= 2
    # build() wires the corpus size through automatically.
    rng = random.Random(41)
    big = CodeSet([rng.getrandbits(32) for _ in range(2048)], 32)
    assert MIHIndex.build(big).num_tables == default_num_tables(32, 2048)
    assert MIHIndex.build(big, num_tables=4).num_tables == 4


def test_substring_widths_cover_the_code() -> None:
    index = MIHIndex(26, num_tables=4)
    assert sum(index.substring_widths) == 26
    assert max(index.substring_widths) - min(index.substring_widths) <= 1


def test_invalid_table_counts_rejected() -> None:
    with pytest.raises(InvalidParameterError):
        MIHIndex(16, num_tables=0)
    with pytest.raises(InvalidParameterError):
        MIHIndex(16, num_tables=17)
    # One table over a 96-bit code would need a 96-bit key.
    with pytest.raises(InvalidParameterError):
        MIHIndex(96, num_tables=1)


def test_keeps_ids_and_stats() -> None:
    codes = CodeSet([5, 9, 5, 12], 8)
    index = MIHIndex.build(codes, num_tables=2)
    assert index.keeps_ids
    stats = index.stats()
    assert stats.entries == 4 * 2
    assert stats.edges == stats.entries
    assert stats.code_bits == 4 * 8
    # Three distinct codes, two tables: at most 3 keys per table.
    assert 0 < stats.nodes <= 6


# -- empty and degenerate probes -------------------------------------------


def test_empty_index_probes() -> None:
    index = MIHIndex(16)
    assert index.search(0x1234, 16) == []
    assert index.search_with_distances(0, 5) == []
    assert index.search_codes(0, 5) == []
    assert index.search_batch([1, 2], 3) == [[], []]
    assert index.knn_search(7, 4) == []
    assert index.last_search_ops == 0
    assert not index.contains_within(0, 16)
    assert index.count_within(0, 16) == 0


def test_probe_degenerates_to_scan_at_huge_threshold() -> None:
    rng = random.Random(3)
    codes = [rng.getrandbits(32) for _ in range(50)]
    index = MIHIndex.build(CodeSet(codes, 32))
    # threshold = width: every perturbation would be enumerated, so the
    # guard verifies all rows instead; answers stay exact.
    got = sorted(index.search(codes[0], 32))
    assert got == list(range(50))
    assert index.last_search_ops == 50


# -- mutation semantics ----------------------------------------------------


def test_insert_delete_with_duplicate_codes() -> None:
    index = MIHIndex(16, num_tables=2)
    index.insert(0xABCD, 1)
    index.insert(0xABCD, 1)  # duplicate (code, id) pair
    index.insert(0xABCD, 2)
    index.insert(0x1234, 3)
    assert sorted(index.search(0xABCD, 0)) == [1, 1, 2]
    index.delete(0xABCD, 1)
    assert sorted(index.search(0xABCD, 0)) == [1, 2]
    index.delete(0xABCD, 1)
    assert sorted(index.search(0xABCD, 0)) == [2]
    with pytest.raises(IndexStateError):
        index.delete(0xABCD, 1)
    index.delete(0x1234, 3)
    index.delete(0xABCD, 2)
    assert len(index) == 0
    assert index.search(0xABCD, 16) == []


def test_delete_swaps_tail_row_correctly() -> None:
    """Swap-remove must re-home the moved tail row in every table."""
    index = MIHIndex(16, num_tables=2)
    rows = [(10, 0), (20, 1), (30, 2), (40, 3)]
    for code, tuple_id in rows:
        index.insert(code, tuple_id)
    index.delete(10, 0)  # tail row (40, 3) moves into slot 0
    assert sorted(index.search(40, 0)) == [3]
    assert index.search(10, 0) == []
    index.delete(40, 3)
    assert sorted(index.search(20, 0)) == [1]
    assert sorted(index.search(30, 0)) == [2]


def test_mutation_count_and_lazy_layout() -> None:
    index = MIHIndex.build(CodeSet([1, 2, 3], 8))
    base = index.mutation_count
    index.insert(4, 3)
    index.delete(4, 3)
    assert index.mutation_count == base + 2
    # Queries after mutations see the refreshed layout.
    assert sorted(index.search(1, 1)) == _oracle(
        [1, 2, 3], [0, 1, 2], 1, 1
    )


def test_snapshot_is_independent() -> None:
    index = MIHIndex.build(CodeSet([3, 5, 9], 8))
    snap = index.snapshot()
    snap.insert(200, 99)
    assert snap.search(200, 0) == [99]
    assert index.search(200, 0) == []


def test_rejects_out_of_range_codes() -> None:
    index = MIHIndex(8)
    with pytest.raises(CodeLengthError):
        index.insert(256, 0)
    with pytest.raises(CodeLengthError):
        index.search(-1, 2)


# -- kNN ------------------------------------------------------------------


def test_knn_ties_at_radius_boundary() -> None:
    """All ties at the k-th distance resolve by id, deterministically.

    Eight codes at exactly distance 1 from the query, k cutting the
    tie group in half: the returned half must be the lowest ids.
    """
    query = 0
    codes = [1 << bit for bit in range(8)]  # all at distance 1
    index = MIHIndex.build(CodeSet(codes, 16), num_tables=2)
    got = index.knn_search(query, 4)
    assert got == [(0, 1), (1, 1), (2, 1), (3, 1)]
    # And the full group at k = 8.
    assert index.knn_search(query, 8) == [
        (tuple_id, 1) for tuple_id in range(8)
    ]


def test_knn_matches_exact_oracle_and_front_end() -> None:
    rng = random.Random(11)
    codes = [rng.getrandbits(24) for _ in range(80)]
    ids = list(range(80))
    index = MIHIndex.build(CodeSet(codes, 24))
    for k in (1, 5, 80, 100):
        query = rng.getrandbits(24)
        expected = exact_knn_codes(query, codes, ids, k)
        assert index.knn_search(query, k) == expected
        # The knn front-end dispatches to the native implementation.
        assert knn_select(query, index, k) == expected


def test_knn_k_validation() -> None:
    index = MIHIndex.build(CodeSet([1, 2], 8))
    with pytest.raises(InvalidParameterError):
        index.knn_search(5, 0)


def test_knn_single_table_degenerates_gracefully() -> None:
    """m = 1 gives a guarantee of radius r' per round; still exact."""
    rng = random.Random(13)
    codes = [rng.getrandbits(16) for _ in range(40)]
    index = MIHIndex.build(CodeSet(codes, 16), num_tables=1)
    query = rng.getrandbits(16)
    assert index.knn_search(query, 5) == exact_knn_codes(
        query, codes, list(range(40)), 5
    )


# -- op accounting ---------------------------------------------------------


def test_ops_count_verified_candidates() -> None:
    rng = random.Random(17)
    codes = [rng.getrandbits(32) for _ in range(500)]
    index = MIHIndex.build(CodeSet(codes, 32))
    index.search(codes[0], 2)
    single_ops = index.last_search_ops
    assert 0 < single_ops <= 500
    # Batch ops are the per-query sum.
    index.search_batch([codes[0], codes[1]], 2)
    batch_ops = index.last_search_ops
    index.search(codes[1], 2)
    assert batch_ops == single_ops + index.last_search_ops


def test_wide_codes_probe_and_verify() -> None:
    rng = random.Random(19)
    codes = [rng.getrandbits(96) for _ in range(60)]
    ids = list(range(60))
    index = MIHIndex.build(CodeSet(codes, 96))
    query = codes[7]
    for threshold in (0, 30, 50):
        assert sorted(index.search(query, threshold)) == _oracle(
            codes, ids, query, threshold
        )
    assert index.knn_search(query, 6) == exact_knn_codes(
        query, codes, ids, 6
    )


# -- registry --------------------------------------------------------------


def test_registry_resolves_names_and_aliases() -> None:
    assert get_engine("mih").name == "mih"
    assert get_engine("nodes").name == "dha"  # alias
    assert "mih" in engine_names()
    assert set(engine_names()) <= set(engine_choices())
    assert "nodes" in engine_choices()
    with pytest.raises(InvalidParameterError):
        get_engine("no-such-engine")


def test_registry_paper_families_match_table4() -> None:
    assert list(paper_families()) == [
        "Nested-Loops", "MH-4", "MH-10", "HEngine",
        "Radix-Tree", "SHA-Index", "DHA-Index",
    ]
    assert INDEX_FAMILIES is not None
    assert list(INDEX_FAMILIES) == list(paper_families())


def test_registry_builds_every_engine() -> None:
    rng = random.Random(23)
    codes = CodeSet([rng.getrandbits(16) for _ in range(30)], 16)
    query = codes[0]
    expected = _oracle(codes.codes, codes.ids, query, 2)
    for name in engine_names():
        index = build_index(name, codes)
        assert sorted(index.search(query, 2)) == expected, name


def test_registry_batched_flags() -> None:
    assert ENGINES["mih"].batched
    assert ENGINES["flat"].batched
    assert not ENGINES["dha"].batched


# -- service integration ---------------------------------------------------


def test_single_service_serves_mih() -> None:
    from repro.service import HammingQueryService

    rng = random.Random(29)
    codes = CodeSet([rng.getrandbits(24) for _ in range(200)], 24)
    index = MIHIndex.build(codes)
    with HammingQueryService(
        index, workers=2, batch_kernel=True, queue_limit=64
    ) as service:
        query = codes[3]
        ticket = service.submit("select", query, 3)
        assert sorted(ticket.result().value) == _oracle(
            codes.codes, codes.ids, query, 3
        )
        knn = service.submit("knn", query, 5).result().value
        assert list(knn) == exact_knn_codes(
            query, codes.codes, codes.ids, 5
        )
        service.insert(0xABCDEF, 777)
        assert (
            777
            in service.submit("select", 0xABCDEF, 0).result().value
        )
        service.delete(0xABCDEF, 777)


def test_sharded_service_serves_mih_shards() -> None:
    from repro.service import ShardedQueryService

    rng = random.Random(31)
    codes = CodeSet([rng.getrandbits(24) for _ in range(300)], 24)
    with ShardedQueryService(
        codes,
        num_shards=3,
        engine="mih",
        workers=2,
        queue_limit=128,
    ) as service:
        for query in (codes[0], rng.getrandbits(24)):
            got = service.submit("select", query, 3).result().value
            assert sorted(got) == _oracle(
                codes.codes, codes.ids, query, 3
            )
        knn = service.submit("knn", codes[1], 4).result().value
        assert list(knn) == exact_knn_codes(
            codes[1], codes.codes, codes.ids, 4
        )


def test_sharded_store_rejects_non_dha_engine(tmp_path) -> None:
    from repro.core.errors import StoreError
    from repro.service import ShardedQueryService

    codes = CodeSet([1, 2, 3, 4], 8)
    with pytest.raises(StoreError):
        ShardedQueryService(
            codes,
            num_shards=2,
            engine="mih",
            data_dir=str(tmp_path / "store"),
            start=False,
        )
