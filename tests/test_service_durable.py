"""Warm-start equality and store observability for the query services.

A service opened from a persisted store must be indistinguishable from
a freshly built one that applied the same mutation history: identical
select/knn/join answers and identical epochs — including mutations
still sitting in the index's rebuild buffer (never merged into the
tree) when the process died.
"""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError, StoreError
from repro.data.synthetic import random_codes
from repro.service.server import HammingQueryService
from repro.service.sharded import ShardedQueryService

BITS = 20


def _codes(n=300, seed=9):
    return CodeSet(random_codes(n, BITS, seed=seed), BITS)


def _mutations(n=25, seed=4):
    rng = random.Random(seed)
    return [(rng.getrandbits(BITS), 5000 + i) for i in range(n)]


class TestDurableQueryService:
    def test_warm_start_matches_fresh_service(self, tmp_path):
        codes = _codes()
        mutations = _mutations()
        durable = HammingQueryService(
            DynamicHAIndex.build(codes),
            data_dir=tmp_path / "d",
            workers=2,
        )
        fresh = HammingQueryService(
            DynamicHAIndex.build(codes), workers=2
        )
        for code, tuple_id in mutations:
            durable.insert(code, tuple_id)
            fresh.insert(code, tuple_id)
        durable.delete(*mutations[0])
        fresh.delete(*mutations[0])
        durable.close()

        warm = HammingQueryService.open(tmp_path / "d", workers=2)
        assert warm.epoch == fresh.epoch
        assert len(warm) == len(fresh)
        rng = random.Random(1)
        for _ in range(12):
            probe = rng.getrandbits(BITS)
            threshold = rng.randrange(0, 5)
            assert (
                warm.select(probe, threshold).value
                == fresh.select(probe, threshold).value
            )
            assert (
                warm.probe(probe, threshold).value
                == fresh.probe(probe, threshold).value
            )
        for _ in range(4):
            probe = rng.getrandbits(BITS)
            assert warm.knn(probe, 7).value == fresh.knn(probe, 7).value
        warm.close()
        fresh.close()

    def test_unflushed_buffer_survives_restart(self, tmp_path):
        # A rebuild buffer large enough that the inserts are never
        # merged into the tree: the WAL, not the snapshot, carries them.
        codes = _codes(120)
        durable = HammingQueryService(
            DynamicHAIndex.build(codes, rebuild_buffer=4096),
            data_dir=tmp_path / "d",
            workers=1,
        )
        for code, tuple_id in _mutations(10):
            durable.insert(code, tuple_id)
        assert durable._index._buffer  # still buffered
        # snapshot=False models a crash-ish stop: no final rotation, so
        # recovery must get the buffered inserts back from the WAL.
        durable.close(snapshot=False)
        warm = HammingQueryService.open(tmp_path / "d", workers=1)
        assert warm.epoch == 10
        for code, tuple_id in _mutations(10):
            assert tuple_id in warm.select(code, 0).value
        warm.close()

    def test_save_snapshot_empties_replay(self, tmp_path):
        durable = HammingQueryService(
            DynamicHAIndex.build(_codes(100)),
            data_dir=tmp_path / "d",
            workers=1,
        )
        for code, tuple_id in _mutations(8):
            durable.insert(code, tuple_id)
        assert durable.save_snapshot() == 2
        durable.close()
        warm = HammingQueryService.open(tmp_path / "d", workers=1)
        stats = warm.stats().store
        assert stats.wal_replayed == 0  # all folded into generation 2
        assert stats.last_seq == 8
        assert warm.epoch == 8
        warm.close()

    def test_data_dir_refuses_existing_store(self, tmp_path):
        first = HammingQueryService(
            DynamicHAIndex.build(_codes(50)),
            data_dir=tmp_path / "d",
            workers=1,
        )
        first.close()
        with pytest.raises(StoreError, match="already holds"):
            HammingQueryService(
                DynamicHAIndex.build(_codes(50)),
                data_dir=tmp_path / "d",
                workers=1,
            )

    def test_failed_mutation_never_reaches_wal(self, tmp_path):
        durable = HammingQueryService(
            DynamicHAIndex.build(_codes(50)),
            data_dir=tmp_path / "d",
            workers=1,
        )
        with pytest.raises(IndexStateError, match="not present"):
            durable.delete(0x1, 999_999)
        assert durable.stats().store.wal_appends == 0
        durable.close()
        warm = HammingQueryService.open(tmp_path / "d", workers=1)
        assert warm.epoch == 0
        warm.close()


class TestDurableShardedService:
    def test_warm_start_matches_fresh_service(self, tmp_path):
        codes = _codes(400, seed=13)
        mutations = _mutations(20, seed=6)
        durable = ShardedQueryService(
            codes,
            num_shards=4,
            replication=2,
            data_dir=tmp_path / "s",
            workers=2,
        )
        fresh = ShardedQueryService(
            codes,
            num_shards=4,
            pivots=durable.pivots,
            replication=2,
            workers=2,
        )
        for code, tuple_id in mutations:
            durable.insert(code, tuple_id)
            fresh.insert(code, tuple_id)
        durable.delete(*mutations[3])
        fresh.delete(*mutations[3])
        durable.close()

        warm = ShardedQueryService.open(tmp_path / "s", workers=2)
        assert warm.epoch == fresh.epoch
        assert warm.pivots == fresh.pivots
        assert warm.shard_sizes() == fresh.shard_sizes()
        assert (
            warm.shard_stats().shard_epochs
            == fresh.shard_stats().shard_epochs
        )
        rng = random.Random(2)
        for _ in range(12):
            probe = rng.getrandbits(BITS)
            threshold = rng.randrange(0, 5)
            assert (
                warm.select(probe, threshold).value
                == fresh.select(probe, threshold).value
            )
        for _ in range(3):
            probe = rng.getrandbits(BITS)
            assert warm.knn(probe, 6).value == fresh.knn(probe, 6).value
        outer = CodeSet(random_codes(25, BITS, seed=77), BITS)
        assert warm.join(outer, 2) == fresh.join(outer, 2)
        warm.close()
        fresh.close()

    def test_topology_required_to_open(self, tmp_path):
        with pytest.raises(StoreError, match="topology"):
            ShardedQueryService.open(tmp_path / "nothing")

    def test_data_dir_refuses_existing_store(self, tmp_path):
        svc = ShardedQueryService(
            _codes(80), num_shards=2, data_dir=tmp_path / "s", workers=1
        )
        svc.close()
        with pytest.raises(StoreError, match="already holds"):
            ShardedQueryService(
                _codes(80),
                num_shards=2,
                data_dir=tmp_path / "s",
                workers=1,
            )

    def test_store_stats_aggregate_shards(self, tmp_path):
        svc = ShardedQueryService(
            _codes(200), num_shards=3, data_dir=tmp_path / "s", workers=1
        )
        for code, tuple_id in _mutations(9, seed=8):
            svc.insert(code, tuple_id)
        stats = svc.store_stats()
        assert stats.wal_appends == 9
        assert stats.snapshot_generations == 3  # one per shard
        assert stats.last_seq == 9  # summed across shards
        svc.close()


class TestStoreMetricsExposition:
    def test_store_counters_reach_prometheus(self, tmp_path):
        from repro.obs import registry, set_metrics_enabled

        set_metrics_enabled(True)
        try:
            service = HammingQueryService(
                DynamicHAIndex.build(_codes(100)),
                data_dir=tmp_path / "d",
                workers=1,
            )
            for code, tuple_id in _mutations(5):
                service.insert(code, tuple_id)
            service.publish_metrics()
            service.close(snapshot=False)
            warm = HammingQueryService.open(tmp_path / "d", workers=1)
            warm.publish_metrics()
            # snapshot=False: a closing rotation would bump the
            # directly-set generation gauges after the publish above.
            warm.close(snapshot=False)
            text = registry().render_prometheus()
        finally:
            set_metrics_enabled(False)
            registry().clear()
        # Process-lifetime counters accumulate across both instances.
        assert "store_wal_appends_total 5" in text
        assert "store_wal_replayed_total 5" in text
        # Gauges carry the *last published* (warm) instance's snapshot:
        # it appended nothing itself but replayed all five records.
        assert "store_wal_appends 0" in text
        assert "store_wal_replayed 5" in text
        assert "store_recovery_fallbacks 0" in text
        assert "store_last_seq 5" in text
        assert "store_snapshot_generations 1" in text
        assert "store_generation 1" in text
