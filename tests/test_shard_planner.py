"""Tests for the scatter-gather planner and its Gray-range bound."""

from __future__ import annotations

import random

import pytest

from repro.core.errors import InvalidParameterError
from repro.core.gray import gray_rank, to_gray
from repro.service import (
    ScatterGatherPlanner,
    ShardPlan,
    min_hamming_to_gray_range,
)


def brute_force_min(query: int, lo: int, hi: int) -> int:
    return min(
        bin(to_gray(rank) ^ query).count("1") for rank in range(lo, hi + 1)
    )


class TestMinHammingToGrayRange:
    def test_exhaustive_small_space(self):
        """Exact against brute force for every (lo, hi, q) at L=5."""
        length = 5
        for lo in range(32):
            for hi in range(lo, 32):
                for query in range(32):
                    assert min_hamming_to_gray_range(
                        query, length, lo, hi
                    ) == brute_force_min(query, lo, hi)

    def test_decision_mode_agrees_exhaustively(self):
        """``limit`` mode must preserve the <= comparison, always."""
        length = 4
        for lo in range(16):
            for hi in range(lo, 16):
                for query in range(16):
                    exact = brute_force_min(query, lo, hi)
                    for limit in range(length + 1):
                        value = min_hamming_to_gray_range(
                            query, length, lo, hi, limit
                        )
                        assert (value <= limit) == (exact <= limit)

    @pytest.mark.parametrize("length", [8, 16, 32])
    def test_random_intervals(self, length):
        rng = random.Random(length)
        top = (1 << length) - 1
        for _ in range(300):
            lo = rng.randint(0, top)
            hi = min(top, lo + rng.randint(0, 2048))
            query = rng.randint(0, top)
            assert min_hamming_to_gray_range(
                query, length, lo, hi
            ) == brute_force_min(query, lo, hi)

    def test_full_interval_always_zero(self):
        for query in range(256):
            assert min_hamming_to_gray_range(query, 8, 0, 255) == 0

    def test_single_rank_interval(self):
        assert min_hamming_to_gray_range(0b1010, 4, 6, 6) == bin(
            to_gray(6) ^ 0b1010
        ).count("1")

    def test_empty_interval_exceeds_any_threshold(self):
        assert min_hamming_to_gray_range(5, 8, 10, 3) == 9

    def test_bounds_clamped_to_rank_space(self):
        assert min_hamming_to_gray_range(5, 8, -100, 10_000) == 0

    def test_member_query_is_zero(self):
        rng = random.Random(11)
        for _ in range(50):
            rank = rng.randint(0, 255)
            lo = rng.randint(0, rank)
            hi = rng.randint(rank, 255)
            assert min_hamming_to_gray_range(
                to_gray(rank), 8, lo, hi
            ) == 0


class TestScatterGatherPlanner:
    def make_planner(self, pivots=(64, 128, 192), length=8):
        return ScatterGatherPlanner(pivots, length)

    def test_rejects_non_positive_code_length(self):
        with pytest.raises(InvalidParameterError):
            ScatterGatherPlanner([4], 0)

    def test_intervals_tile_rank_space(self):
        planner = self.make_planner()
        assert planner.num_shards == 4
        assert planner.interval(0) == (0, 64)
        assert planner.interval(1) == (64, 128)
        assert planner.interval(3) == (192, 256)

    def test_route_follows_gray_rank(self):
        planner = self.make_planner()
        for code in range(256):
            rank = gray_rank(code)
            expected = min(3, sum(rank >= pivot for pivot in (64, 128, 192)))
            assert planner.route(code) == expected

    def test_empty_shards_are_always_pruned(self):
        planner = self.make_planner()
        plan = planner.plan(query=0b1010, threshold=8)
        assert plan.contacted == ()
        assert plan.pruned == 4

    def test_observe_widens_and_plan_contacts(self):
        planner = self.make_planner()
        code = to_gray(70)  # rank 70: shard 1
        planner.observe(1, code)
        assert planner.occupied(1) == (70, 70)
        plan = planner.plan(code, 0)
        assert plan.contacted == (1,)
        assert plan.pruned == 3

    def test_broadcast_flag_when_bound_vacuous(self):
        planner = self.make_planner()
        for shard, rank in enumerate((10, 70, 130, 200)):
            planner.observe(shard, to_gray(rank))
        plan = planner.plan(0, planner.code_length)
        assert plan.broadcast
        assert len(plan.contacted) == 4

    def test_non_vacuous_plan_is_not_broadcast(self):
        planner = self.make_planner()
        near = 0b0000_0000  # rank 0: shard 0
        far = 0b1111_1111  # rank 170: shard 2, Hamming 8 from `near`
        planner.observe(planner.route(near), near)
        planner.observe(planner.route(far), far)
        plan = planner.plan(near, 1)
        assert plan.contacted == (0,)
        assert not plan.broadcast

    def test_plan_is_sound_against_brute_force(self):
        """A shard holding a code within h of the query is contacted."""
        rng = random.Random(5)
        planner = self.make_planner()
        shard_codes = {shard: [] for shard in range(4)}
        for _ in range(200):
            code = rng.randint(0, 255)
            shard = planner.route(code)
            planner.observe(shard, code)
            shard_codes[shard].append(code)
        for _ in range(100):
            query = rng.randint(0, 255)
            threshold = rng.randint(0, 4)
            plan = planner.plan(query, threshold)
            for shard, codes in shard_codes.items():
                has_match = any(
                    bin(code ^ query).count("1") <= threshold
                    for code in codes
                )
                if has_match:
                    assert shard in plan.contacted

    def test_reset_range_recomputes_exactly(self):
        planner = self.make_planner()
        planner.observe(1, to_gray(70))
        planner.observe(1, to_gray(100))
        planner.reset_range(1, [to_gray(90)])
        assert planner.occupied(1) == (90, 90)
        planner.reset_range(1, [])
        assert planner.occupied(1) is None

    def test_memo_invalidated_by_observe(self):
        planner = self.make_planner()
        planner.observe(1, to_gray(70))
        before = planner.plan(to_gray(100), 0)
        assert before.contacted == ()
        planner.observe(1, to_gray(100))
        after = planner.plan(to_gray(100), 0)
        assert after.contacted == (1,)

    def test_memo_returns_identical_plan(self):
        planner = self.make_planner()
        planner.observe(2, to_gray(150))
        first = planner.plan(7, 3)
        assert planner.plan(7, 3) is first

    def test_plan_is_frozen(self):
        plan = ShardPlan(contacted=(0,), pruned=3, broadcast=False)
        with pytest.raises(AttributeError):
            plan.pruned = 0
