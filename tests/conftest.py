"""Shared fixtures: the paper's running example and random workloads."""

from __future__ import annotations

import random

import pytest

from repro.core.bitvector import CodeSet
from repro.data.synthetic import random_codes

#: Table 2a of the paper: dataset S as binary strings (t0..t7).
TABLE_S = [
    "001001010",
    "001011101",
    "011001100",
    "101001010",
    "101110110",
    "101011101",
    "101101010",
    "111001100",
]

#: Table 2b of the paper: dataset R (r0..r2).
TABLE_R = [
    "101100010",
    "101010010",
    "110000010",
]

#: The paper's Example 1 query tuple code.
EXAMPLE_QUERY = 0b101100010

#: Expected h-select output of Example 1 (h = 3): {t0, t3, t4, t6}.
EXAMPLE_SELECT_IDS = [0, 3, 4, 6]

#: Expected h-join output of Example 1 (h = 3).
EXAMPLE_JOIN_PAIRS = [
    (0, 0), (0, 3), (0, 4), (0, 6),
    (1, 0), (1, 3), (1, 4), (1, 6),
    (2, 3),
]


@pytest.fixture
def table_s() -> CodeSet:
    return CodeSet.from_strings(TABLE_S)


@pytest.fixture
def table_r() -> CodeSet:
    return CodeSet.from_strings(TABLE_R)


@pytest.fixture
def random_codeset() -> CodeSet:
    """2000 random (non-distinct) 32-bit codes."""
    return CodeSet(random_codes(2000, 32, seed=42), 32)


@pytest.fixture
def clustered_codeset() -> CodeSet:
    """Codes with heavy duplication and clustering (skewed workload)."""
    rng = random.Random(7)
    centers = [rng.getrandbits(32) for _ in range(20)]
    codes = []
    for _ in range(1500):
        center = rng.choice(centers)
        noise = 0
        for _ in range(rng.randint(0, 3)):
            noise |= 1 << rng.randrange(32)
        codes.append(center ^ noise)
    return CodeSet(codes, 32)


@pytest.fixture
def query_rng() -> random.Random:
    return random.Random(1234)
