"""Unit tests for the durable store's building blocks.

WAL encode/scan semantics, snapshot format validation (magic, version,
CRC, memmap views), the flat-state roundtrip, generation rotation and
pruning, and the on-disk format-compatibility fixture committed under
``tests/fixtures/``.
"""

from __future__ import annotations

import shutil
import zlib
from pathlib import Path

import pytest

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError, StoreCorruptionError, StoreError
from repro.data.synthetic import random_codes
from repro.store import (
    DurableIndexStore,
    LazySnapshotIndex,
    OP_DELETE,
    OP_INSERT,
    SNAP_MAGIC,
    StoreStats,
    WalWriter,
    decode_dynamic,
    lazy_decode,
    load_flat,
    read_snapshot,
    read_wal,
    write_snapshot,
)
from repro.store.wal import encode_record, record_size

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture
def built_index():
    codes = CodeSet(random_codes(300, 24, seed=5), 24)
    return DynamicHAIndex.build(codes), codes


class TestWal:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter.create(path, 24, next_seq=1)
        writer.append(OP_INSERT, 0xABCDEF, 7)
        writer.append(OP_DELETE, 0x000001, 8)
        writer.close()
        scan = read_wal(path, 24)
        assert not scan.torn
        assert [
            (r.seq, r.op, r.code, r.tuple_id) for r in scan.records
        ] == [(1, OP_INSERT, 0xABCDEF, 7), (2, OP_DELETE, 0x000001, 8)]

    def test_torn_record_is_dropped(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter.create(path, 24, next_seq=1)
        for i in range(4):
            writer.append(OP_INSERT, i, i)
        writer.close()
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - record_size(24) // 2])
        scan = read_wal(path, 24)
        assert scan.torn
        assert len(scan.records) == 3
        assert scan.last_seq == 3

    def test_corrupt_record_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter.create(path, 24, next_seq=1)
        for i in range(3):
            writer.append(OP_INSERT, i, i)
        writer.close()
        data = bytearray(path.read_bytes())
        data[16 + record_size(24) + 4] ^= 0xFF  # second record's body
        path.write_bytes(bytes(data))
        scan = read_wal(path, 24)
        assert scan.torn
        assert scan.last_seq == 1

    def test_seq_gap_stops_scan(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter.create(path, 24, next_seq=1)
        writer.append(OP_INSERT, 1, 1)
        writer.close()
        with open(path, "ab") as stream:
            stream.write(encode_record(5, OP_INSERT, 2, 2, 24))
        scan = read_wal(path, 24)
        assert scan.torn
        assert scan.last_seq == 1

    def test_bad_header_scans_empty(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"junk header bytes")
        scan = read_wal(path, 24)
        assert scan.torn
        assert scan.records == ()

    def test_resume_after_torn_tail_truncates(self, tmp_path):
        path = tmp_path / "wal.log"
        writer = WalWriter.create(path, 24, next_seq=1)
        writer.append(OP_INSERT, 1, 1)
        writer.close()
        with open(path, "ab") as stream:
            stream.write(b"\x01\x02\x03")  # torn tail
        scan = read_wal(path, 24)
        writer = WalWriter.resume(path, 24, scan, next_seq=2)
        writer.append(OP_INSERT, 2, 2)
        writer.close()
        scan = read_wal(path, 24)
        assert not scan.torn
        assert scan.last_seq == 2


class TestSnapshot:
    def test_roundtrip_matches_flat_and_dynamic(
        self, built_index, tmp_path
    ):
        index, codes = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=17)
        view = read_snapshot(path)
        assert view.last_seq == 17
        assert view.code_length == 24
        flat = load_flat(view)
        dynamic = decode_dynamic(view)
        dynamic.check_invariants()
        assert sorted(dynamic.code_id_pairs()) == sorted(
            index.code_id_pairs()
        )
        original = index.compile()
        for probe in list(codes.codes[:4]) + [0, 0xFFFFFF]:
            for threshold in (0, 2, 4):
                want = sorted(original.search(probe, threshold))
                assert sorted(flat.search(probe, threshold)) == want
                assert sorted(dynamic.search(probe, threshold)) == want

    def test_rejects_bad_magic(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="magic"):
            read_snapshot(path)

    def test_rejects_flipped_payload_byte(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError):
            read_snapshot(path)

    def test_rejects_truncation(self, built_index, tmp_path):
        index, _ = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(StoreError):
            read_snapshot(path)

    def test_rejects_frozen_index(self, built_index, tmp_path):
        index, _ = built_index
        index._frozen = True
        with pytest.raises(IndexStateError):
            write_snapshot(tmp_path / "snap.ha", index, last_seq=0)

    def test_buffered_inserts_survive(self, built_index, tmp_path):
        # Codes still in the rebuild buffer (not yet merged into the
        # tree) must appear in the decoded snapshot.
        index, _ = built_index
        index.insert(0xF0F0F0, 5001)
        index.insert(0x0F0F0F, 5002)
        assert index._buffer  # still buffered, not merged
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=2)
        dynamic = decode_dynamic(read_snapshot(path))
        assert 5001 in dynamic.search(0xF0F0F0, 0)
        assert 5002 in dynamic.search(0x0F0F0F, 0)


class TestLazySnapshotIndex:
    """Warm starts defer the node-graph decode to first need."""

    def test_kernel_reads_stay_lazy(self, built_index, tmp_path):
        index, codes = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        lazy = lazy_decode(read_snapshot(path))
        assert isinstance(lazy, LazySnapshotIndex)
        assert not lazy.materialized
        probe = codes.codes[0]
        assert lazy.count_within(probe, 3) == index.count_within(probe, 3)
        assert lazy.contains_within(probe, 0)
        assert sorted(lazy.search_codes(probe, 2)) == sorted(
            index.search_codes(probe, 2)
        )
        assert sorted(lazy.search_with_distances(probe, 2)) == sorted(
            index.search_with_distances(probe, 2)
        )
        assert sorted(lazy.search_batch([probe, 0], 2)[0]) == sorted(
            index.search(probe, 2)
        )
        assert lazy.ids_for_code(probe) == index.ids_for_code(probe)
        assert sorted(lazy.code_id_pairs()) == sorted(
            index.code_id_pairs()
        )
        assert len(lazy) == len(index)
        assert lazy.num_distinct_codes == index.num_distinct_codes
        assert not lazy.materialized  # none of the above decoded nodes

    def test_node_walk_materializes(self, built_index, tmp_path):
        index, codes = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        lazy = lazy_decode(read_snapshot(path))
        # Plain search's node-walk result ordering is observable API,
        # so it must come from the real node graph.
        assert lazy.search(codes.codes[1], 2) == index.search(
            codes.codes[1], 2
        )
        assert lazy.materialized
        lazy.check_invariants()

    def test_mutation_materializes_and_applies(
        self, built_index, tmp_path
    ):
        index, _ = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        lazy = lazy_decode(read_snapshot(path))
        lazy.insert(0xBEEF42, 7001)
        assert lazy.materialized
        assert 7001 in lazy.search(0xBEEF42, 0)
        lazy.delete(0xBEEF42, 7001)
        assert 7001 not in lazy.search(0xBEEF42, 0)

    def test_copies_come_back_plain(self, built_index, tmp_path):
        index, codes = built_index
        path = tmp_path / "snap.ha"
        write_snapshot(path, index, last_seq=0)
        lazy = lazy_decode(read_snapshot(path))
        copy = lazy.snapshot()
        assert type(copy) is DynamicHAIndex
        assert sorted(copy.code_id_pairs()) == sorted(
            index.code_id_pairs()
        )

    def test_open_with_empty_tail_is_lazy(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.close()
        recovered = DurableIndexStore(tmp_path / "d").open()
        assert isinstance(recovered, LazySnapshotIndex)
        assert not recovered.materialized

    def test_replay_tail_materializes(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.append_insert(0x424242, 8001)
        store.close()
        fresh = DurableIndexStore(tmp_path / "d")
        recovered = fresh.open()
        assert recovered.materialized  # replay forced the decode
        assert 8001 in recovered.search(0x424242, 0)
        fresh.close()

    def test_wal_tail_counter(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        assert store.wal_tail == 0
        index.insert(0x111111, 9100)
        store.append_insert(0x111111, 9100)
        assert store.wal_tail == 1
        store.snapshot(index)
        assert store.wal_tail == 0
        store.close()


class TestDurableIndexStore:
    def test_initialize_then_open(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.append_insert(0x101010, 900)
        store.close()
        fresh = DurableIndexStore(tmp_path / "d")
        recovered = fresh.open()
        assert fresh.last_seq == 1
        assert 900 in recovered.search(0x101010, 0)
        fresh.close()

    def test_double_initialize_rejected(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.close()
        with pytest.raises(StoreError):
            DurableIndexStore(tmp_path / "d").initialize(index)

    def test_exists(self, built_index, tmp_path):
        index, _ = built_index
        assert not DurableIndexStore.exists(tmp_path / "d")
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.close()
        assert DurableIndexStore.exists(tmp_path / "d")

    def test_rotation_prunes_old_generations(
        self, built_index, tmp_path
    ):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d", retain=2)
        store.initialize(index)
        for generation in range(2, 6):
            index.insert(generation, 4000 + generation)
            store.append_insert(generation, 4000 + generation)
            assert store.snapshot(index) == generation
        snaps = sorted(p.name for p in (tmp_path / "d").glob("*.ha"))
        assert snaps == ["snap-00000004.ha", "snap-00000005.ha"]
        store.close()

    def test_open_empty_directory_fails(self, tmp_path):
        with pytest.raises(StoreCorruptionError):
            DurableIndexStore(tmp_path / "nothing").open()

    def test_retain_must_be_positive(self, tmp_path):
        with pytest.raises(StoreError):
            DurableIndexStore(tmp_path, retain=0)

    def test_stats_merge(self):
        a = StoreStats(
            wal_appends=3, wal_replayed=1, replay_skipped=0,
            snapshots_written=2, snapshot_generations=2,
            recovery_fallbacks=0, last_seq=5, generation=2,
        )
        b = StoreStats(
            wal_appends=1, wal_replayed=4, replay_skipped=1,
            snapshots_written=0, snapshot_generations=1,
            recovery_fallbacks=1, last_seq=9, generation=4,
        )
        merged = StoreStats.merge([a, b])
        assert merged.wal_appends == 4
        assert merged.wal_replayed == 5
        assert merged.replay_skipped == 1
        assert merged.recovery_fallbacks == 1
        assert merged.generation == 4
        assert StoreStats.merge([]).generation == 0


class TestOpenReadonly:
    """A reader's recovery: full fidelity, zero directory writes."""

    def test_sees_writer_state_including_wal_tail(
        self, built_index, tmp_path
    ):
        index, _ = built_index
        writer = DurableIndexStore(tmp_path / "d")
        writer.initialize(index)
        writer.append_insert(0x101010, 900)
        writer.append_insert(0x101011, 901)
        reader = DurableIndexStore(tmp_path / "d")
        recovered = reader.open_readonly()
        assert reader.last_seq == 2
        assert 900 in recovered.search(0x101010, 0)
        assert 901 in recovered.search(0x101011, 0)
        writer.close()

    def test_never_writes_to_the_directory(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.append_insert(0xBEEF, 42)
        store.close()
        stray = tmp_path / "d" / "snap-00000009.ha.tmp"
        stray.write_bytes(b"partial")
        listing = sorted(p.name for p in (tmp_path / "d").iterdir())
        DurableIndexStore(tmp_path / "d").open_readonly()
        after = sorted(p.name for p in (tmp_path / "d").iterdir())
        assert after == listing  # stray tmp untouched, no WAL resume

    def test_fallback_writes_no_repair_generation(
        self, built_index, tmp_path
    ):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        index.insert(0xF00D, 7000)
        store.append_insert(0xF00D, 7000)
        assert store.snapshot(index) == 2
        store.close()
        snap2 = tmp_path / "d" / "snap-00000002.ha"
        payload = bytearray(snap2.read_bytes())
        payload[-1] ^= 0xFF
        snap2.write_bytes(payload)
        listing = sorted(p.name for p in (tmp_path / "d").iterdir())

        reader = DurableIndexStore(tmp_path / "d")
        recovered = reader.open_readonly()
        assert reader.recovery_fallbacks == 1
        # Fell back to generation 1 + its WAL: state still exact.
        assert 7000 in recovered.search(0xF00D, 0)
        after = sorted(p.name for p in (tmp_path / "d").iterdir())
        assert after == listing  # a writer would add snap-00000003.ha

        writer = DurableIndexStore(tmp_path / "d")
        writer.open()
        repaired = sorted(
            p.name for p in (tmp_path / "d").glob("snap-*.ha")
        )
        assert "snap-00000003.ha" in repaired
        writer.close()

    def test_readonly_store_rejects_appends(self, built_index, tmp_path):
        index, _ = built_index
        store = DurableIndexStore(tmp_path / "d")
        store.initialize(index)
        store.close()
        reader = DurableIndexStore(tmp_path / "d")
        reader.open_readonly()
        with pytest.raises(StoreError):
            reader.append_insert(0x1, 1)
        with pytest.raises(StoreError):
            reader.append_delete(0x1, 1)


class TestFormatCompatibility:
    """The committed v1 fixture must stay loadable forever.

    Regenerate (only for a deliberate, versioned format change) with::

        PYTHONPATH=src python tests/fixtures/make_snapshot_fixture.py
    """

    def test_fixture_exists(self):
        fixture = FIXTURES / "store_v1"
        assert (fixture / "snap-00000001.ha").is_file()
        assert (fixture / "wal-00000001.log").is_file()

    def test_fixture_snapshot_magic(self):
        head = (FIXTURES / "store_v1" / "snap-00000001.ha").read_bytes()[
            : len(SNAP_MAGIC)
        ]
        assert head == SNAP_MAGIC

    def test_fixture_recovers_expected_state(self, tmp_path):
        # Copy first: recovery may legitimately resume/extend the WAL,
        # and the committed fixture must never be modified by a test.
        shutil.copytree(FIXTURES / "store_v1", tmp_path / "store_v1")
        store = DurableIndexStore(tmp_path / "store_v1")
        index = store.open()
        expected = __import__("json").loads(
            (FIXTURES / "store_v1" / "expected.json").read_text()
        )
        assert store.last_seq == expected["last_seq"]
        assert len(index) == expected["size"]
        assert index.code_length == expected["code_length"]
        pairs = sorted(index.code_id_pairs())
        digest = zlib.crc32(repr(pairs).encode()) & 0xFFFFFFFF
        assert digest == expected["pairs_crc32"]
        for probe in expected["probes"]:
            assert (
                sorted(index.search(probe["code"], probe["threshold"]))
                == probe["ids"]
            )
        store.close()
