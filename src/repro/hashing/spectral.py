"""Spectral Hashing (Weiss, Torralba, Fergus; NIPS 2008).

The paper's experiments use Spectral Hashing as the learned similarity
hash ("We choose the state-of-the-art Spectral Hashing [2] as the hash
function").  This is a from-scratch numpy implementation of the published
algorithm:

1. PCA onto the top principal components,
2. fit a uniform box over each PCA dimension's range,
3. enumerate analytical eigenfunctions of the 1-D Laplacian on each
   interval, ``Phi_k(x) = sin(pi/2 + k*pi/(b-a) * (x-a))`` with eigenvalue
   ``1 - exp(-(eps**2/2) * (k*pi/(b-a))**2)``,
4. keep the ``num_bits`` smallest-eigenvalue (dimension, mode) pairs and
   threshold each eigenfunction at zero to obtain the code bits.

Because the eigenvalue ranking prefers long directions with low modes,
spectral codes reflect the data distribution — unlike the data-independent
hyperplane hash — which is what gives the HA-Index its clustered, highly
shareable code population.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.hashing.base import SimilarityHash

_RANGE_EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class _Eigenfunction:
    """One retained analytical eigenfunction: PCA dimension + mode."""

    dimension: int
    mode: int
    eigenvalue: float


class SpectralHash(SimilarityHash):
    """Spectral Hashing with analytical Laplacian eigenfunctions.

    Args:
        num_bits: code length ``L``.
        num_components: PCA dimensions retained; defaults to ``num_bits``
            capped by the data dimensionality.
    """

    def __init__(self, num_bits: int, num_components: int | None = None) -> None:
        super().__init__(num_bits)
        if num_components is not None and num_components < 1:
            raise InvalidParameterError("num_components must be positive")
        self._num_components = num_components
        self._mean: np.ndarray | None = None
        self._basis: np.ndarray | None = None
        self._minima: np.ndarray | None = None
        self._ranges: np.ndarray | None = None
        self._functions: list[_Eigenfunction] = []

    @property
    def eigenfunctions(self) -> list[_Eigenfunction]:
        """The retained (dimension, mode, eigenvalue) triples."""
        return list(self._functions)

    def _fit(self, matrix: np.ndarray) -> None:
        n, d = matrix.shape
        if n < 2:
            raise InvalidParameterError(
                "spectral hashing needs at least 2 sample rows"
            )
        components = min(self._num_components or self._num_bits, d, n)
        self._mean = matrix.mean(axis=0)
        centered = matrix - self._mean
        # PCA via SVD of the centered sample.
        _, _, v_transposed = np.linalg.svd(centered, full_matrices=False)
        self._basis = v_transposed[:components].T
        projected = centered @ self._basis
        # Fit the uniform box to robust percentiles rather than the raw
        # min/max of the sample: the analytical eigenfunctions flip sign
        # at fixed fractions of the interval, so a single outlier that
        # stretches the box would push the sign boundaries away from the
        # data bulk and produce near-constant (uninformative) bits.
        self._minima = np.percentile(projected, 2.0, axis=0)
        maxima = np.percentile(projected, 98.0, axis=0)
        self._ranges = np.maximum(maxima - self._minima, _RANGE_EPSILON)
        self._functions = self._select_eigenfunctions(components)

    def _select_eigenfunctions(self, components: int) -> list[_Eigenfunction]:
        """Rank (dimension, mode) pairs by analytical eigenvalue."""
        assert self._ranges is not None
        max_mode = self._num_bits + 1
        candidates = []
        omegas = {}
        for dimension in range(components):
            interval = float(self._ranges[dimension])
            for mode in range(1, max_mode + 1):
                omega = mode * np.pi / interval
                eigenvalue = 1.0 - np.exp(-0.5 * omega * omega)
                function = _Eigenfunction(dimension, mode, float(eigenvalue))
                candidates.append(function)
                omegas[(dimension, mode)] = omega
        # The eigenvalue is monotone in omega but saturates to exactly 1.0
        # in float arithmetic once omega is large (small PCA ranges), which
        # would collapse the ranking onto ties; sorting by omega gives the
        # exact-arithmetic order without the saturation.
        candidates.sort(
            key=lambda f: (omegas[(f.dimension, f.mode)], f.dimension)
        )
        return candidates[: self._num_bits]

    def _project(self, matrix: np.ndarray) -> np.ndarray:
        assert self._basis is not None and self._mean is not None
        assert self._minima is not None and self._ranges is not None
        if matrix.shape[1] != self._basis.shape[0]:
            raise InvalidParameterError(
                f"expected {self._basis.shape[0]}-d rows, "
                f"got {matrix.shape[1]}-d"
            )
        projected = (matrix - self._mean) @ self._basis
        bits = np.empty((matrix.shape[0], self._num_bits), dtype=bool)
        for column, function in enumerate(self._functions):
            x = projected[:, function.dimension]
            offset = x - self._minima[function.dimension]
            omega = function.mode * np.pi / self._ranges[function.dimension]
            bits[:, column] = np.sin(np.pi / 2.0 + omega * offset) > 0.0
        return bits
