"""Z-order (Morton) curve mapping for the LSB-Tree baseline.

The LSB-Tree (Tao et al., TODS 2010) maps each high-dimensional point to a
one-dimensional Z-value — the bit-interleaving of its quantized
coordinates, after a random shift — and indexes the Z-values in a B-tree.
This module provides the quantization and interleaving kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError


class ZOrderMapper:
    """Quantize points onto a grid and interleave coordinate bits.

    Args:
        bits_per_dimension: grid resolution per axis.
        seed: seed of the random shift vector (``None`` disables the
            shift, giving the plain Morton code).
    """

    def __init__(self, bits_per_dimension: int, seed: int | None = None) -> None:
        if bits_per_dimension < 1:
            raise InvalidParameterError("bits_per_dimension must be positive")
        self._bits = bits_per_dimension
        self._seed = seed
        self._low: np.ndarray | None = None
        self._scale: np.ndarray | None = None
        self._shift: np.ndarray | None = None

    @property
    def bits_per_dimension(self) -> int:
        return self._bits

    def fit(self, data: np.ndarray) -> "ZOrderMapper":
        """Learn the bounding box (and draw the random shift)."""
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise InvalidParameterError("fit expects a non-empty 2-D matrix")
        low = matrix.min(axis=0)
        high = matrix.max(axis=0)
        extent = np.maximum(high - low, 1e-12)
        if self._seed is not None:
            rng = np.random.default_rng(self._seed)
            shift = rng.uniform(0.0, extent)
        else:
            shift = np.zeros_like(extent)
        # After shifting, coordinates live in [low, high + extent].
        self._low = low
        self._scale = ((1 << self._bits) - 1) / (2.0 * extent)
        self._shift = shift
        return self

    def z_values(self, data: np.ndarray) -> list[int]:
        """Morton codes of the rows of ``data``."""
        if self._low is None or self._scale is None or self._shift is None:
            raise InvalidParameterError("ZOrderMapper used before fit")
        matrix = np.asarray(data, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[1] != self._low.shape[0]:
            raise InvalidParameterError(
                f"expected {self._low.shape[0]}-d rows, got {matrix.shape[1]}-d"
            )
        cells = (matrix - self._low + self._shift) * self._scale
        max_cell = (1 << self._bits) - 1
        grid = np.clip(cells, 0, max_cell).astype(np.int64)
        return [interleave_bits(row.tolist(), self._bits) for row in grid]


def interleave_matrix(grid: np.ndarray, bits_per_dimension: int) -> np.ndarray:
    """Vectorized Morton codes for a whole (n, d) integer grid.

    Returns a ``uint64`` array; requires ``d * bits_per_dimension <= 64``.
    Bit layout matches :func:`interleave_bits`.
    """
    cells = np.asarray(grid, dtype=np.uint64)
    if cells.ndim != 2 or cells.shape[1] == 0:
        raise InvalidParameterError("expected a non-empty 2-D grid")
    dimensions = cells.shape[1]
    if dimensions * bits_per_dimension > 64:
        raise InvalidParameterError(
            f"{dimensions} dims x {bits_per_dimension} bits exceeds 64"
        )
    codes = np.zeros(cells.shape[0], dtype=np.uint64)
    one = np.uint64(1)
    for bit in range(bits_per_dimension - 1, -1, -1):
        shift = np.uint64(bit)
        for dimension in range(dimensions):
            codes = (codes << one) | (
                (cells[:, dimension] >> shift) & one
            )
    return codes


def interleave_bits(coordinates: list[int], bits_per_dimension: int) -> int:
    """Bit-interleave integer coordinates into a single Morton code.

    Bit ``b`` of coordinate ``i`` lands at position
    ``b * d + (d - 1 - i)`` from the least-significant end, so the most
    significant interleaved bits come from the highest coordinate bits.
    """
    dimensions = len(coordinates)
    if dimensions == 0:
        raise InvalidParameterError("no coordinates to interleave")
    code = 0
    for bit in range(bits_per_dimension - 1, -1, -1):
        for coordinate in coordinates:
            code = (code << 1) | ((coordinate >> bit) & 1)
    return code
