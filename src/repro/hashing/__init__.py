"""Similarity hash functions mapping vectors to binary codes."""

from repro.hashing.base import SimilarityHash
from repro.hashing.hyperplane import HyperplaneHash
from repro.hashing.spectral import SpectralHash
from repro.hashing.zorder import ZOrderMapper, interleave_bits

__all__ = [
    "SimilarityHash",
    "HyperplaneHash",
    "SpectralHash",
    "ZOrderMapper",
    "interleave_bits",
]
