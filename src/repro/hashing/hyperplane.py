"""Random-hyperplane (simhash) similarity hashing (Charikar, STOC '02).

The data-independent hash used for the document-deduplication use case the
paper motivates with Manku et al. [4]: each bit is the sign of a random
projection, so the Hamming distance between codes estimates the angular
distance between the original vectors.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.hashing.base import SimilarityHash


class HyperplaneHash(SimilarityHash):
    """Sign-of-random-projection hashing.

    The hyperplanes are drawn i.i.d. Gaussian at :meth:`fit` time (only the
    dimensionality is learned from the data); ``seed`` makes the family
    reproducible.  Data is mean-centered so that splits are balanced even
    for non-centered inputs.
    """

    def __init__(self, num_bits: int, seed: int = 0) -> None:
        super().__init__(num_bits)
        self._seed = seed
        self._planes: np.ndarray | None = None
        self._mean: np.ndarray | None = None

    def _fit(self, matrix: np.ndarray) -> None:
        if matrix.shape[0] < 1:
            raise InvalidParameterError("cannot fit on an empty sample")
        rng = np.random.default_rng(self._seed)
        dimensions = matrix.shape[1]
        self._planes = rng.standard_normal((dimensions, self._num_bits))
        self._mean = matrix.mean(axis=0)

    def _project(self, matrix: np.ndarray) -> np.ndarray:
        assert self._planes is not None and self._mean is not None
        if matrix.shape[1] != self._planes.shape[0]:
            raise InvalidParameterError(
                f"expected {self._planes.shape[0]}-d rows, "
                f"got {matrix.shape[1]}-d"
            )
        return (matrix - self._mean) @ self._planes > 0.0
