"""Similarity-hash interface: vectors in, binary codes out.

The paper assumes a learned similarity hash ``H`` mapping each
``d``-dimensional tuple to an ``L``-bit binary code (Section 3).  All hash
families here implement the same two-phase protocol: :meth:`fit` learns
parameters from (a sample of) the data, :meth:`encode` maps a matrix of
row vectors to a :class:`~repro.core.bitvector.CodeSet`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.errors import HashNotFittedError, InvalidParameterError


class SimilarityHash(ABC):
    """Base class for learned similarity hash functions."""

    def __init__(self, num_bits: int) -> None:
        if num_bits < 1:
            raise InvalidParameterError("num_bits must be positive")
        self._num_bits = num_bits
        self._fitted = False

    @property
    def num_bits(self) -> int:
        """Length ``L`` of the produced binary codes."""
        return self._num_bits

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def fit(self, data: np.ndarray) -> "SimilarityHash":
        """Learn hash parameters from sample rows; returns ``self``."""
        matrix = _as_matrix(data)
        self._fit(matrix)
        self._fitted = True
        return self

    def encode(self, data: np.ndarray) -> CodeSet:
        """Map rows of ``data`` to binary codes."""
        if not self._fitted:
            raise HashNotFittedError(
                f"{type(self).__name__}.encode called before fit"
            )
        matrix = _as_matrix(data)
        signs = self._project(matrix)
        return CodeSet(_signs_to_codes(signs), self._num_bits)

    def fit_encode(self, data: np.ndarray) -> CodeSet:
        """Convenience: fit on ``data`` and encode the same rows."""
        return self.fit(data).encode(data)

    def bit_weights(self, data: np.ndarray) -> tuple[float, ...]:
        """Learned per-bit weights from this hash's bit balance.

        Encodes ``data`` and derives one weight per bit position from
        how evenly that bit splits the sample (balanced bits are the
        most discriminative); see
        :func:`repro.core.weighted.learned_weights`.  Attach the
        result to a :class:`~repro.core.bitvector.CodeSet` (its
        ``weights=`` argument) to serve weighted queries over the
        hash's codes.
        """
        from repro.core.weighted import learned_weights

        codes = self.encode(data)
        return tuple(learned_weights(codes).values.tolist())

    @abstractmethod
    def _fit(self, matrix: np.ndarray) -> None:
        """Learn parameters from a 2-D sample matrix."""

    @abstractmethod
    def _project(self, matrix: np.ndarray) -> np.ndarray:
        """Return a boolean (n, num_bits) matrix of hash bits."""


def _as_matrix(data: np.ndarray) -> np.ndarray:
    matrix = np.asarray(data, dtype=np.float64)
    if matrix.ndim == 1:
        matrix = matrix.reshape(1, -1)
    if matrix.ndim != 2:
        raise InvalidParameterError(
            f"expected a 2-D data matrix, got ndim={matrix.ndim}"
        )
    return matrix


def _signs_to_codes(bits: np.ndarray) -> list[int]:
    """Pack a boolean (n, L) matrix into ints, column 0 most significant."""
    n, num_bits = bits.shape
    codes = np.zeros(n, dtype=object)
    for column in range(num_bits):
        codes = (codes << 1) | bits[:, column].astype(int)
    return [int(code) for code in codes]
