"""Datasets: containers, synthetic generators, paper-style scaling."""

from repro.data.containers import Dataset
from repro.data.scaling import scale_dataset, shift_to_next_larger
from repro.data.synthetic import (
    PAPER_DATASETS,
    dbpedia_like,
    flickr_like,
    nuswide_like,
    random_codes,
)

__all__ = [
    "Dataset",
    "scale_dataset",
    "shift_to_next_larger",
    "PAPER_DATASETS",
    "dbpedia_like",
    "flickr_like",
    "nuswide_like",
    "random_codes",
]
