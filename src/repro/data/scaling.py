"""The paper's dataset-scaling technique (Section 6).

To evaluate larger data sizes the paper synthetically generates more data
"while maintaining the same distribution as the original": for each
dimension ``j`` the values are sorted by frequency, and each tuple ``t``
spawns a shifted copy whose ``j``-th component is the next larger value in
the frequency-sorted copy ``D_j`` (the largest value maps to itself).
Applying the transformation repeatedly and concatenating produces the
``x s`` datasets of Figures 7 and 9.

This module implements that transformation verbatim on numpy matrices.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.data.containers import Dataset


def shift_to_next_larger(matrix: np.ndarray) -> np.ndarray:
    """One application of the paper's per-dimension shift.

    For every dimension ``j``, each value is replaced by the smallest value
    of that column that is strictly larger; column maxima are kept
    unchanged, exactly as specified ("if ``t_j`` is the largest element in
    copy ``D_j``, then ``t_j = t_j``").
    """
    data = np.asarray(matrix, dtype=np.float64)
    if data.ndim != 2:
        raise InvalidParameterError("expected a 2-D matrix")
    shifted = np.empty_like(data)
    for column in range(data.shape[1]):
        values = data[:, column]
        order = np.sort(values)
        # Index of the first element strictly larger than each value.
        positions = np.searchsorted(order, values, side="right")
        positions = np.minimum(positions, len(order) - 1)
        candidate = order[positions]
        shifted[:, column] = np.where(candidate > values, candidate, values)
    return shifted


def scale_dataset(dataset: Dataset, factor: int) -> Dataset:
    """Grow ``dataset`` to ``factor`` times its size, paper-style.

    Copy ``k`` is the original shifted ``k`` times, so every copy follows
    the original distribution while remaining distinct where possible.
    ``factor`` = 1 returns the dataset unchanged.
    """
    if factor < 1:
        raise InvalidParameterError("scale factor must be >= 1")
    if factor == 1:
        return dataset
    blocks = [dataset.vectors]
    current = dataset.vectors
    for _ in range(factor - 1):
        current = shift_to_next_larger(current)
        blocks.append(current)
    grown = np.vstack(blocks)
    return Dataset(grown, name=f"{dataset.name}-x{factor}")
