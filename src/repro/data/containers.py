"""Dataset container tying feature vectors to binary codes.

A :class:`Dataset` is an ordered collection of ``d``-dimensional feature
vectors with stable integer tuple ids.  Encoding a dataset with a fitted
similarity hash yields the :class:`~repro.core.bitvector.CodeSet` that the
indexes operate on; the vectors themselves are retained for the kNN
baselines (LSH, LSB-Tree, PGBJ) which work in the original space.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.hashing.base import SimilarityHash


class Dataset:
    """Feature vectors plus optional cached binary codes.

    Args:
        vectors: an (n, d) float matrix, one row per tuple.
        name: human-readable label used in benchmark output.
        ids: explicit tuple ids; defaults to ``0..n-1``.
    """

    def __init__(
        self,
        vectors: np.ndarray,
        name: str = "dataset",
        ids: Sequence[int] | None = None,
    ) -> None:
        matrix = np.asarray(vectors, dtype=np.float64)
        if matrix.ndim != 2:
            raise InvalidParameterError("vectors must form a 2-D matrix")
        if ids is not None and len(ids) != matrix.shape[0]:
            raise InvalidParameterError(
                f"{len(ids)} ids for {matrix.shape[0]} rows"
            )
        self._vectors = matrix
        self._name = name
        self._ids = tuple(ids) if ids is not None else None
        self._codes: CodeSet | None = None

    @property
    def name(self) -> str:
        return self._name

    @property
    def vectors(self) -> np.ndarray:
        return self._vectors

    @property
    def dimensions(self) -> int:
        return self._vectors.shape[1]

    @property
    def ids(self) -> tuple[int, ...]:
        if self._ids is not None:
            return self._ids
        return tuple(range(len(self)))

    def __len__(self) -> int:
        return self._vectors.shape[0]

    def __repr__(self) -> str:
        return (
            f"Dataset({self._name!r}, n={len(self)}, d={self.dimensions})"
        )

    def encode(self, hasher: SimilarityHash, cache: bool = True) -> CodeSet:
        """Binary codes of all rows under ``hasher`` (cached by default)."""
        codes = hasher.encode(self._vectors).with_ids(self.ids)
        if cache:
            self._codes = codes
        return codes

    @property
    def codes(self) -> CodeSet:
        """The cached codes; raises if :meth:`encode` has not run."""
        if self._codes is None:
            raise InvalidParameterError(
                f"dataset {self._name!r} has no cached codes; call encode()"
            )
        return self._codes

    def sample(self, fraction: float, seed: int = 0) -> "Dataset":
        """A uniform random sample (without replacement) of the rows."""
        if not 0.0 < fraction <= 1.0:
            raise InvalidParameterError("fraction must be in (0, 1]")
        rng = np.random.default_rng(seed)
        count = max(1, int(round(fraction * len(self))))
        chosen = np.sort(rng.choice(len(self), size=count, replace=False))
        own_ids = self.ids
        return Dataset(
            self._vectors[chosen],
            name=f"{self._name}-sample",
            ids=[own_ids[i] for i in chosen],
        )

    def take(self, count: int) -> "Dataset":
        """The first ``count`` rows as a new dataset."""
        if count < 0:
            raise InvalidParameterError("count must be non-negative")
        count = min(count, len(self))
        return Dataset(
            self._vectors[:count],
            name=self._name,
            ids=self.ids[:count],
        )
