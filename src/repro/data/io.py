"""Dataset and code-set persistence, plus CSV import/export.

Downstream users bring their own feature vectors; this module gives the
library a stable on-disk story:

* datasets round-trip through ``.npz`` (vectors + ids + name);
* code sets round-trip through ``.npz`` in the multi-word packed layout,
  so any code length survives;
* feature matrices load from delimited text files, and join/select
  results export to CSV for downstream analysis.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core.bitvector import CodeSet, pack_codes_wide
from repro.core.errors import InvalidParameterError
from repro.data.containers import Dataset

_DATASET_FORMAT = "repro-dataset-v1"
_CODES_FORMAT = "repro-codes-v1"


def save_dataset(dataset: Dataset, path) -> None:
    """Write a dataset to ``path`` as a compressed ``.npz`` archive."""
    np.savez_compressed(
        path,
        format=np.asarray(_DATASET_FORMAT),
        name=np.asarray(dataset.name),
        vectors=dataset.vectors,
        ids=np.asarray(dataset.ids, dtype=np.int64),
    )


def load_dataset(path) -> Dataset:
    """Read a dataset written by :func:`save_dataset`."""
    with np.load(path, allow_pickle=False) as archive:
        if str(archive.get("format", "")) != _DATASET_FORMAT:
            raise InvalidParameterError(
                f"{path!s} is not a saved repro dataset"
            )
        return Dataset(
            archive["vectors"],
            name=str(archive["name"]),
            ids=archive["ids"].tolist(),
        )


def save_codes(codes: CodeSet, path) -> None:
    """Write a code set to ``path``; any code length is supported."""
    np.savez_compressed(
        path,
        format=np.asarray(_CODES_FORMAT),
        length=np.asarray(codes.length, dtype=np.int64),
        words=pack_codes_wide(codes.codes, codes.length),
        ids=np.asarray(codes.ids, dtype=np.int64),
    )


def load_codes(path) -> CodeSet:
    """Read a code set written by :func:`save_codes`."""
    with np.load(path, allow_pickle=False) as archive:
        if str(archive.get("format", "")) != _CODES_FORMAT:
            raise InvalidParameterError(
                f"{path!s} is not a saved repro code set"
            )
        length = int(archive["length"])
        words = archive["words"]
        codes = []
        for row in words:
            code = 0
            for word_index in range(words.shape[1] - 1, -1, -1):
                code = (code << 64) | int(row[word_index])
            codes.append(code)
        return CodeSet(codes, length, ids=archive["ids"].tolist())


def load_vectors_csv(
    path,
    delimiter: str = ",",
    has_header: bool = False,
    id_column: int | None = None,
    name: str | None = None,
) -> Dataset:
    """Load a feature matrix from a delimited text file.

    Args:
        path: the file to read.
        delimiter: field separator.
        has_header: skip the first row.
        id_column: optional column holding integer tuple ids; the
            remaining columns are the features.
        name: dataset label; defaults to the file stem.
    """
    path = Path(path)
    ids: list[int] = []
    rows: list[list[float]] = []
    with open(path, newline="") as stream:
        reader = csv.reader(stream, delimiter=delimiter)
        for row_index, row in enumerate(reader):
            if has_header and row_index == 0:
                continue
            if not row:
                continue
            fields = list(row)
            if id_column is not None:
                ids.append(int(fields.pop(id_column)))
            rows.append([float(field) for field in fields])
    if not rows:
        raise InvalidParameterError(f"{path!s} holds no data rows")
    return Dataset(
        np.asarray(rows, dtype=np.float64),
        name=name or path.stem,
        ids=ids if id_column is not None else None,
    )


def export_pairs_csv(
    pairs: Iterable[tuple[int, int]],
    path,
    header: Sequence[str] = ("left_id", "right_id"),
) -> int:
    """Write join pairs to CSV; returns the number of rows written."""
    count = 0
    with open(path, "w", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(header)
        for left_id, right_id in pairs:
            writer.writerow([left_id, right_id])
            count += 1
    return count


def export_matches_csv(
    matches: dict[int, list[int]],
    path,
    header: Sequence[str] = ("query_id", "match_id"),
) -> int:
    """Write per-query select/kNN matches to CSV; returns rows written."""
    count = 0
    with open(path, "w", newline="") as stream:
        writer = csv.writer(stream)
        writer.writerow(header)
        for query_id in sorted(matches):
            for match_id in matches[query_id]:
                writer.writerow([query_id, match_id])
                count += 1
    return count
