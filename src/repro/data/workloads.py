"""Query workload generators for benchmarks and soak tests.

The paper queries with tuples drawn from the dataset; real deployments
see richer mixes.  These generators produce the standard shapes:

* :func:`member_queries` — uniform draws from the indexed codes (the
  paper's methodology);
* :func:`zipf_queries` — popularity-skewed repeats of a few hot codes
  (search-engine query logs are Zipfian);
* :func:`near_miss_queries` — indexed codes with a few random bit flips
  (a novel image similar to known ones: the common select workload);
* :func:`novel_queries` — uniform random codes (the adversarial case:
  far from the data, maximal pruning opportunity).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError


def _require(codes: CodeSet, count: int) -> None:
    if count < 1:
        raise InvalidParameterError("count must be positive")
    if len(codes) == 0:
        raise InvalidParameterError("cannot draw queries from no codes")


def member_queries(
    codes: CodeSet, count: int, seed: int = 0
) -> list[int]:
    """Uniform draws (with replacement) from the dataset's codes."""
    _require(codes, count)
    rng = random.Random(seed)
    return [codes[rng.randrange(len(codes))] for _ in range(count)]


def zipf_queries(
    codes: CodeSet,
    count: int,
    seed: int = 0,
    exponent: float = 1.2,
    distinct: int = 32,
) -> list[int]:
    """Popularity-skewed queries: few hot codes dominate the stream.

    ``distinct`` codes are sampled as the candidate pool and repeated
    with Zipf(``exponent``) frequencies.
    """
    _require(codes, count)
    if exponent <= 0 or distinct < 1:
        raise InvalidParameterError(
            "need exponent > 0 and distinct >= 1"
        )
    rng = random.Random(seed)
    pool_size = min(distinct, len(codes))
    pool = [codes[rng.randrange(len(codes))] for _ in range(pool_size)]
    weights = [1.0 / (rank + 1) ** exponent for rank in range(pool_size)]
    return rng.choices(pool, weights=weights, k=count)


def near_miss_queries(
    codes: CodeSet, count: int, flips: int = 2, seed: int = 0
) -> list[int]:
    """Dataset codes perturbed by ``flips`` random bit flips each."""
    _require(codes, count)
    if flips < 0 or flips > codes.length:
        raise InvalidParameterError(
            f"flips must be in [0, {codes.length}]"
        )
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        code = codes[rng.randrange(len(codes))]
        for position in rng.sample(range(codes.length), flips):
            code ^= 1 << position
        queries.append(code)
    return queries


def novel_queries(length: int, count: int, seed: int = 0) -> list[int]:
    """Uniform random codes, unrelated to any dataset."""
    if length < 1 or count < 1:
        raise InvalidParameterError("length and count must be positive")
    rng = random.Random(seed)
    return [rng.getrandbits(length) for _ in range(count)]


def cluster_codes(codes: CodeSet, clusters: int) -> CodeSet:
    """Re-prefix codes into well-separated Hamming clusters.

    Each cluster id is spread over a 4x-repetition prefix (pairwise
    prefix distance >= 4) and a code keeps only its low bits — the
    clustered layout Gray-range pruning exploits.  Tuple ids are
    preserved.  ``clusters < 2`` returns the codes unchanged.
    """
    if clusters < 2:
        return codes
    id_bits = max(1, (clusters - 1).bit_length())
    prefix_bits = 4 * id_bits
    if prefix_bits >= codes.length:
        raise InvalidParameterError(
            f"{clusters} clusters need more than "
            f"{codes.length}-bit codes"
        )
    low_bits = codes.length - prefix_bits
    low_mask = (1 << low_bits) - 1
    reclustered = []
    for position, code in enumerate(codes.codes):
        cluster = position % clusters
        prefix = 0
        for bit in range(id_bits):
            if (cluster >> bit) & 1:
                prefix |= 0b1111 << (4 * bit)
        reclustered.append((prefix << low_bits) | (code & low_mask))
    return CodeSet(reclustered, codes.length, ids=codes.ids)


#: Named generators for sweep-style benches; all take (codes, count, seed).
WORKLOAD_SHAPES = {
    "member": member_queries,
    "zipf": zipf_queries,
    "near-miss": near_miss_queries,
}


def mixed_workload(
    codes: CodeSet,
    count: int,
    seed: int = 0,
    shares: Sequence[tuple[str, float]] = (
        ("member", 0.4),
        ("zipf", 0.3),
        ("near-miss", 0.3),
    ),
) -> list[int]:
    """A blend of the named shapes in the given proportions."""
    _require(codes, count)
    total_share = sum(share for _, share in shares)
    if total_share <= 0:
        raise InvalidParameterError("shares must sum to a positive value")
    queries: list[int] = []
    for offset, (name, share) in enumerate(shares):
        if name not in WORKLOAD_SHAPES:
            raise InvalidParameterError(f"unknown workload shape {name!r}")
        portion = int(round(count * share / total_share))
        if portion:
            queries.extend(
                WORKLOAD_SHAPES[name](codes, portion, seed + offset)
            )
    rng = random.Random(seed)
    rng.shuffle(queries)
    return queries[:count] if len(queries) >= count else queries
