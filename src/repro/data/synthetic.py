"""Synthetic stand-ins for the paper's three real datasets.

The paper evaluates on NUS-WIDE (269 648 images, 225-d block colour
moments), a 1 M-image Flickr crawl (512-d GIST descriptors) and 1 M
DBPedia documents (250 LDA topics).  Those corpora are not redistributable
here, so each generator below produces a *clustered, skewed* population of
the same dimensionality:

* image-feature datasets are Gaussian mixtures with Zipf-skewed cluster
  weights and anisotropic covariance (visual features concentrate on a few
  dominant appearance clusters);
* the document dataset samples sparse topic mixtures from a Dirichlet, the
  standard generative model behind LDA topic vectors.

What the indexes actually consume is the *binary code* distribution, and
clustered input yields the non-uniform, pattern-sharing code population
the HA-Index exploits — which is the behaviour the substitution must
preserve (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import InvalidParameterError
from repro.data.containers import Dataset

#: Dimensionalities of the paper's datasets.
NUSWIDE_DIMENSIONS = 225
FLICKR_DIMENSIONS = 512
DBPEDIA_DIMENSIONS = 250


def _zipf_weights(num_clusters: int, exponent: float = 1.2) -> np.ndarray:
    ranks = np.arange(1, num_clusters + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


def _gaussian_mixture(
    n: int,
    dimensions: int,
    num_clusters: int,
    spread: float,
    seed: int,
) -> np.ndarray:
    """Skewed Gaussian-mixture rows: the image-feature generator core."""
    if n < 1:
        raise InvalidParameterError("dataset size must be positive")
    rng = np.random.default_rng(seed)
    weights = _zipf_weights(num_clusters)
    assignments = rng.choice(num_clusters, size=n, p=weights)
    centers = rng.uniform(-1.0, 1.0, size=(num_clusters, dimensions))
    # Anisotropic per-cluster scales: a few dominant feature directions.
    scales = rng.uniform(0.1, spread, size=(num_clusters, dimensions))
    noise = rng.standard_normal((n, dimensions))
    return centers[assignments] + noise * scales[assignments]


def nuswide_like(n: int = 10_000, seed: int = 7) -> Dataset:
    """225-d block-colour-moment-like vectors (NUS-WIDE substitute).

    Cluster count and spread are calibrated so that 32-bit spectral codes
    over the mixture have a realistic population: most codes distinct, a
    few tens of matches for an h = 3 select at n = 20 k (mirroring the
    selectivity regime of the paper's image workloads).
    """
    vectors = _gaussian_mixture(
        n, NUSWIDE_DIMENSIONS, num_clusters=150, spread=0.8, seed=seed
    )
    return Dataset(vectors, name="nuswide-like")


def flickr_like(n: int = 10_000, seed: int = 11) -> Dataset:
    """512-d GIST-like vectors (Flickr crawl substitute).

    GIST is smooth and highly correlated across dimensions, so the mixture
    uses fewer, broader clusters than the colour-moment generator.
    """
    vectors = _gaussian_mixture(
        n, FLICKR_DIMENSIONS, num_clusters=60, spread=1.2, seed=seed
    )
    return Dataset(vectors, name="flickr-like")


def dbpedia_like(n: int = 10_000, seed: int = 13) -> Dataset:
    """250-topic LDA-like document vectors (DBPedia substitute).

    Rows are sparse points on the topic simplex drawn from a symmetric
    Dirichlet with small concentration, matching how LDA topic mixtures
    look in practice (a handful of dominant topics per document).
    """
    if n < 1:
        raise InvalidParameterError("dataset size must be positive")
    rng = np.random.default_rng(seed)
    vectors = rng.dirichlet([0.05] * DBPEDIA_DIMENSIONS, size=n)
    return Dataset(vectors, name="dbpedia-like")


#: Generators keyed by the paper's dataset names, for the benches.
PAPER_DATASETS = {
    "NUS-WIDE": nuswide_like,
    "Flickr": flickr_like,
    "DBPedia": dbpedia_like,
}


def random_codes(
    n: int, length: int, seed: int = 0, distinct: bool = False
) -> list[int]:
    """Uniform random binary codes, a convenience for unit tests.

    With ``distinct=True`` the codes are sampled without replacement
    (requires ``n <= 2**length``).
    """
    if length < 1 or n < 0:
        raise InvalidParameterError("need length >= 1 and n >= 0")
    rng = np.random.default_rng(seed)
    space = 1 << length

    def draw() -> int:
        # Assemble from 32-bit chunks so any code length works.
        code = 0
        for _ in range((length + 31) // 32):
            code = (code << 32) | int(rng.integers(0, 1 << 32))
        return code & (space - 1)

    if distinct:
        if n > space:
            raise InvalidParameterError(
                f"cannot draw {n} distinct {length}-bit codes"
            )
        if length <= 24:
            chosen = rng.choice(space, size=n, replace=False)
            return [int(code) for code in chosen]
        codes: set[int] = set()
        while len(codes) < n:
            codes.add(draw())
        return sorted(codes)
    return [draw() for _ in range(n)]
