"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``    — the paper's running example (Table 2, Example 1).
* ``select``  — Hamming-select on a synthetic paper-like dataset.
* ``join``    — centralized Hamming self-join with index comparison.
* ``knn``     — approximate kNN-select through the HA-Index.
* ``mrjoin``  — the distributed three-phase join with shuffle stats.
* ``serve-bench`` — the online query service under a skewed workload.
* ``serve-sharded`` — the sharded scatter-gather service with
  Gray-range pruning, replica failover and hedged dispatch.
* ``bench-shard`` — pruning ratio and latency of the sharded service
  against the single-index service.
* ``bench-kernel`` — flat compiled kernel vs node walk (``--verify``
  runs an exact-equivalence smoke instead of timing).
* ``trace``   — span tree of one traced Hamming-select (per-level op
  attribution, checked against ``last_search_ops``).
* ``metrics`` — short instrumented serving run, then the metrics
  registry in Prometheus or JSON form.
* ``index save`` / ``index load`` — persist a built index into a
  crash-safe durable store and recover it (snapshot + WAL replay).
* ``info``    — version, registered index families, dataset generators.

Every command prints a small, self-describing report; sizes stay
laptop-friendly by default and scale through ``--n``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence

from repro import __version__
from repro.core.bitvector import CodeSet, code_to_string
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.engines import (
    ENGINES,
    build_index,
    engine_choices,
    engine_names,
    get_engine,
)
from repro.core.knn import knn_select
from repro.core.select import INDEX_FAMILIES, hamming_select
from repro.data.synthetic import PAPER_DATASETS
from repro.hashing.spectral import SpectralHash
from repro.metrics import format_bytes

_DATASET_CHOICES = {
    "nuswide": "NUS-WIDE",
    "flickr": "Flickr",
    "dbpedia": "DBPedia",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "HA-Index reproduction (EDBT 2015): Hamming-distance "
            "similarity search over MapReduce"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="run the paper's running example")
    commands.add_parser("info", help="show registered components")

    def add_workload_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--dataset",
            choices=sorted(_DATASET_CHOICES),
            default="nuswide",
            help="paper-like synthetic dataset (default: nuswide)",
        )
        sub.add_argument(
            "--n", type=int, default=10_000, help="tuples (default 10000)"
        )
        sub.add_argument(
            "--bits", type=int, default=32, help="code length (default 32)"
        )
        sub.add_argument(
            "--seed", type=int, default=1, help="dataset seed (default 1)"
        )

    def add_weight_arguments(sub: argparse.ArgumentParser) -> None:
        weighted = sub.add_argument_group(
            "weighted",
            "rank by weighted Hamming distance "
            "(repro.core.weighted; docs/weighted.md)",
        )
        weighted.add_argument(
            "--weights",
            choices=["uniform", "learned", "random"],
            default=None,
            help="per-bit weight vector: uniform (reproduces the "
                 "unweighted answer exactly), learned (bit-variance "
                 "weights from the codes), or random (seeded, "
                 "mean-1.0)",
        )
        weighted.add_argument(
            "--weight-seed", type=int, default=0,
            help="seed for --weights random (default 0)",
        )
        weighted.add_argument(
            "--weight-strategy",
            choices=["auto", "native", "rerank"],
            default="auto",
            help="weighted traversal: native per-mask lower-bound "
                 "sweep or rerank over unweighted candidates "
                 "(default auto)",
        )

    select = commands.add_parser("select", help="Hamming-select demo")
    add_workload_arguments(select)
    select.add_argument("--threshold", type=int, default=3)
    select.add_argument(
        "--index",
        choices=sorted(INDEX_FAMILIES),
        default="DHA-Index",
    )
    select.add_argument(
        "--query-id", type=int, default=0, help="tuple used as the query"
    )
    select.add_argument(
        "--engine", choices=engine_choices(), default="nodes",
        help="H-Search plane: nodes/flat run against --index; any "
             "other registry engine serves its own index",
    )
    add_weight_arguments(select)

    join = commands.add_parser("join", help="Hamming self-join demo")
    add_workload_arguments(join)
    join.add_argument("--threshold", type=int, default=3)
    join.add_argument(
        "--engine", choices=engine_choices(), default="nodes",
        help="probe plane (needs search_codes: nodes/dha, flat, mih)",
    )
    join.add_argument(
        "--workers", type=int, default=0,
        help="parallel probe workers (0 = serial; implies --engine flat)",
    )

    knn = commands.add_parser("knn", help="approximate kNN-select demo")
    add_workload_arguments(knn)
    knn.add_argument("--k", type=int, default=10)
    knn.add_argument("--query-id", type=int, default=0)
    add_weight_arguments(knn)

    mrjoin = commands.add_parser(
        "mrjoin", help="distributed Hamming-join demo"
    )
    add_workload_arguments(mrjoin)
    mrjoin.add_argument("--threshold", type=int, default=3)
    mrjoin.add_argument("--workers", type=int, default=16)
    mrjoin.add_argument(
        "--option", choices=["A", "B", "auto"], default="auto"
    )
    chaos = mrjoin.add_argument_group(
        "chaos", "deterministic fault injection for the simulated cluster"
    )
    chaos.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the injected fault sequence (default 0)",
    )
    chaos.add_argument(
        "--crash-prob", type=float, default=0.0,
        help="per-attempt task crash probability (default 0)",
    )
    chaos.add_argument(
        "--straggler-factor", type=float, default=1.0,
        help="slowdown multiplier for straggler attempts (default 1)",
    )
    chaos.add_argument(
        "--straggler-prob", type=float, default=0.0,
        help="probability a (task, worker) pairing straggles (default 0)",
    )
    chaos.add_argument(
        "--worker-death-prob", type=float, default=0.0,
        help="per-attempt permanent worker death probability (default 0)",
    )
    chaos.add_argument(
        "--no-speculation", action="store_true",
        help="disable speculative execution of straggler tasks",
    )

    serve = commands.add_parser(
        "serve-bench",
        help="drive the online query service and print ServiceStats",
    )
    add_workload_arguments(serve)
    serve.add_argument("--threshold", type=int, default=3)
    serve.add_argument(
        "--queries", type=int, default=2000,
        help="queries issued through the service (default 2000)",
    )
    serve.add_argument(
        "--workload", choices=["member", "zipf", "near-miss", "mixed"],
        default="zipf",
        help="query stream shape (default zipf: skewed hot codes)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="micro-batch worker threads (default 4)",
    )
    serve.add_argument(
        "--batch", type=int, default=32,
        help="max queries coalesced per batch (default 32)",
    )
    serve.add_argument(
        "--cache", type=int, default=4096,
        help="result cache capacity, 0 disables (default 4096)",
    )
    serve.add_argument(
        "--updates", type=int, default=32,
        help="H-Insert/H-Delete pairs interleaved with the stream "
             "(default 32; each bumps the epoch)",
    )
    serve.add_argument(
        "--engine", choices=engine_choices(), default="flat",
        help="served engine: nodes/flat serve the DHA-Index (flat "
             "batches through the vectorized kernel); other registry "
             "engines serve their own index (default flat)",
    )
    serve.add_argument(
        "--data-dir", default=None,
        help="serve from a crash-safe durable store under this "
             "directory: an existing store is recovered (warm start), "
             "a fresh directory is initialized, and every interleaved "
             "update is WAL-logged",
    )

    index_cmd = commands.add_parser(
        "index",
        help="durable index store: save a built index, load/recover one",
    )
    index_sub = index_cmd.add_subparsers(
        dest="index_command", required=True
    )
    index_save = index_sub.add_parser(
        "save",
        help="H-Build an index over a synthetic workload and persist "
             "it as snapshot generation 1",
    )
    add_workload_arguments(index_save)
    index_save.add_argument(
        "--data-dir", required=True,
        help="fresh directory for the store (must not hold one already)",
    )
    index_save.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsync barriers (faster, loses crash safety)",
    )
    index_load = index_sub.add_parser(
        "load",
        help="recover a persisted index (newest valid snapshot + WAL "
             "replay) and report what recovery did",
    )
    index_load.add_argument(
        "--data-dir", required=True, help="store directory to recover"
    )
    index_load.add_argument(
        "--query", type=lambda s: int(s, 0), default=None,
        help="optional code (int, 0x.. ok) to h-select after recovery",
    )
    index_load.add_argument("--threshold", type=int, default=3)

    def add_shard_arguments(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--shards", type=int, default=4,
            help="Gray-range shard count (default 4)",
        )
        sub.add_argument(
            "--replicas", type=int, default=1,
            help="replicas per shard (default 1)",
        )
        sub.add_argument("--threshold", type=int, default=3)
        sub.add_argument(
            "--queries", type=int, default=2000,
            help="queries issued through the service (default 2000)",
        )
        sub.add_argument(
            "--workload",
            choices=["member", "zipf", "near-miss", "mixed"],
            default="zipf",
            help="query stream shape (default zipf)",
        )
        sub.add_argument(
            "--clusters", type=int, default=0,
            help="re-cluster the codes into this many separated "
                 "Hamming clusters before serving (0 keeps the "
                 "hashed codes; clustering is what Gray-range "
                 "pruning exploits)",
        )
        sub.add_argument(
            "--pool", choices=["serial", "thread", "process"],
            default="serial",
            help="scatter execution pool: in-thread loop, persistent "
                 "thread pool, or spawned worker processes that "
                 "warm-start each shard from its memmap snapshot "
                 "(default serial)",
        )
        sub.add_argument(
            "--pool-workers", type=int, default=None,
            help="pool width (default min(shards, cores))",
        )
        sub.add_argument(
            "--task-timeout", type=float, default=None,
            help="per-scatter deadline in seconds before the "
                 "coordinator falls back inline (default: wait)",
        )

    serve_sharded = commands.add_parser(
        "serve-sharded",
        help="drive the sharded scatter-gather service and print "
             "ServiceStats plus shard/pruning stats",
    )
    add_workload_arguments(serve_sharded)
    add_shard_arguments(serve_sharded)
    serve_sharded.add_argument(
        "--workers", type=int, default=4,
        help="micro-batch worker threads (default 4)",
    )
    serve_sharded.add_argument(
        "--batch", type=int, default=32,
        help="max queries coalesced per batch (default 32)",
    )
    serve_sharded.add_argument(
        "--cache", type=int, default=4096,
        help="result cache capacity, 0 disables (default 4096)",
    )
    serve_sharded.add_argument(
        "--fail-prob", type=float, default=0.0,
        help="seeded per-dispatch replica failure probability "
             "(exercises failover; needs --replicas > 1)",
    )
    serve_sharded.add_argument(
        "--straggler-prob", type=float, default=0.0,
        help="seeded slow-primary probability (hedged dispatch)",
    )
    serve_sharded.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the replica fault plan (default 0)",
    )
    serve_sharded.add_argument(
        "--engine", choices=engine_choices(), default="dha",
        help="per-shard index engine (default dha)",
    )

    bench_shard = commands.add_parser(
        "bench-shard",
        help="pruning ratio and latency of the sharded service vs "
             "the single-index service",
    )
    add_workload_arguments(bench_shard)
    add_shard_arguments(bench_shard)
    bench_shard.add_argument(
        "--batch", type=int, default=64,
        help="max queries coalesced per micro-batch (default 64)",
    )

    bench_kernel = commands.add_parser(
        "bench-kernel",
        help="time the flat H-Search kernel against the node walk",
    )
    add_workload_arguments(bench_kernel)
    bench_kernel.add_argument("--threshold", type=int, default=3)
    bench_kernel.add_argument(
        "--queries", type=int, default=64,
        help="queries timed per engine (default 64)",
    )
    bench_kernel.add_argument(
        "--batch", type=int, default=32,
        help="batch size for search_batch timing (default 32)",
    )
    bench_kernel.add_argument(
        "--repeats", type=int, default=5,
        help="timing repetitions, best-of (default 5)",
    )
    bench_kernel.add_argument(
        "--verify", action="store_true",
        help="equivalence smoke instead of timing: the engine vs the "
             "node walk on a seeded workload, thresholds 0..8; exits "
             "nonzero on any mismatch",
    )
    bench_kernel.add_argument(
        "--engine", choices=[*engine_choices(), "all"], default="flat",
        help="rival engine timed (or verified) against the node walk "
             "(default flat); 'all' verifies every engine in the "
             "central registry (requires --verify)",
    )

    verify = commands.add_parser(
        "verify", help="cross-check every index family against a scan"
    )
    add_workload_arguments(verify)

    trace = commands.add_parser(
        "trace",
        help="span tree of one traced Hamming-select, with the "
             "per-level ops checked against last_search_ops",
    )
    add_workload_arguments(trace)
    trace.add_argument("--threshold", type=int, default=3)
    trace.add_argument(
        "--query-id", type=int, default=0, help="tuple used as the query"
    )
    trace.add_argument(
        "--engine",
        choices=["nodes", "flat", "native", "both", "all"],
        default="both",
        help="which H-Search plane(s) to trace (default both; 'all' "
             "adds the native plane)",
    )

    metrics = commands.add_parser(
        "metrics",
        help="run a short instrumented serving workload and print the "
             "metrics registry",
    )
    add_workload_arguments(metrics)
    metrics.add_argument("--threshold", type=int, default=3)
    metrics.add_argument(
        "--queries", type=int, default=500,
        help="queries driven through the service (default 500)",
    )
    metrics.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="Prometheus text exposition or a JSON snapshot",
    )
    metrics.add_argument(
        "--data-dir", default=None,
        help="serve from a durable store (created or recovered) so the "
             "store_* gauges appear in the exposition",
    )

    docs_gen = commands.add_parser(
        "docs-gen",
        help="regenerate the generated docs: docs/cli.md from this "
             "argparse tree, engine tables from the registry",
    )
    docs_gen.add_argument(
        "--check", action="store_true",
        help="drift check: exit 1 listing stale files instead of "
             "rewriting them (CI runs this)",
    )
    docs_gen.add_argument(
        "--root", default=None,
        help="repository root holding docs/ (default: auto-detected "
             "from the package location)",
    )
    return parser


def _encoded_workload(args: argparse.Namespace):
    name = _DATASET_CHOICES[args.dataset]
    dataset = PAPER_DATASETS[name](args.n, seed=args.seed)
    hasher = SpectralHash(args.bits)
    codes = dataset.encode(hasher.fit(dataset.vectors))
    return dataset, codes


def _command_demo() -> int:
    table_s = CodeSet.from_strings(
        ["001001010", "001011101", "011001100", "101001010",
         "101110110", "101011101", "101101010", "111001100"]
    )
    query = 0b101100010
    print("Table 2a codes (t0..t7):")
    for tuple_id, code in enumerate(table_s):
        print(f"  t{tuple_id}: {code_to_string(code, 9)}")
    matches = sorted(hamming_select(query, table_s, 3))
    print(f"\nh-select({code_to_string(query, 9)}, S) with h=3 -> "
          + ", ".join(f"t{i}" for i in matches))
    index = DynamicHAIndex.build(table_s, window=2, max_depth=3)
    print(f"DHA-Index levels (top->leaves): {index.level_sizes()}")
    return 0


def _command_info() -> int:
    print(f"repro {__version__}")
    print("index families:")
    for name in INDEX_FAMILIES:
        print(f"  {name}")
    print("engines (--engine):")
    for spec in ENGINES.values():
        aliases = (
            f" (alias: {', '.join(spec.aliases)})" if spec.aliases else ""
        )
        print(f"  {spec.name:13s}{aliases} - {spec.description}")
    print("dataset generators:")
    for alias, name in sorted(_DATASET_CHOICES.items()):
        print(f"  {alias} -> {name}")
    print("serving:")
    print("  HammingQueryService (micro-batching, epoch cache, "
          "backpressure) -> repro serve-bench")
    return 0


def _weight_vector(args: argparse.Namespace, codes: CodeSet):
    """The CLI-selected weight vector, or ``None`` when unweighted."""
    if getattr(args, "weights", None) is None:
        return None
    from repro.core.weighted import (
        learned_weights,
        random_weights,
        uniform_weights,
    )

    if args.weights == "uniform":
        return uniform_weights(codes.length)
    if args.weights == "learned":
        return learned_weights(codes)
    return random_weights(codes.length, seed=args.weight_seed)


def _command_select(args: argparse.Namespace) -> int:
    _, codes = _encoded_workload(args)
    canonical = get_engine(args.engine).name
    weights = _weight_vector(args, codes)
    if weights is not None:
        # Weighted plane: the registry's weighted engine wraps the DHA
        # kernel; --index is ignored like for other registry engines.
        canonical = "weighted"
        label = f"weighted[{args.weights}]"

        def builder(codes):
            return build_index(
                "weighted", codes,
                weights=weights, strategy=args.weight_strategy,
            )
    elif canonical in ("dha", "flat"):
        builder = INDEX_FAMILIES[args.index]
        label = args.index
    else:
        # A registry engine serves its own index; --index is ignored.
        def builder(codes):
            return build_index(canonical, codes)

        label = canonical
    started = time.perf_counter()
    index = builder(codes)
    build_seconds = time.perf_counter() - started
    engine = index
    if canonical == "flat":
        compile_index = getattr(index, "compile", None)
        if compile_index is None:
            print(f"error: {args.index} has no compiled flat plane; "
                  f"use --engine nodes", file=sys.stderr)
            return 2
        started = time.perf_counter()
        engine = compile_index()
        compile_ms = (time.perf_counter() - started) * 1000.0
        print(f"compiled flat kernel in {compile_ms:.1f} ms "
              f"({engine.num_nodes} nodes, {engine.num_levels} levels)")
    query = codes[args.query_id % len(codes)]
    started = time.perf_counter()
    matches = engine.search(query, args.threshold)
    query_ms = (time.perf_counter() - started) * 1000.0
    stats = index.stats()
    print(f"{label} [{args.engine}] over {len(codes)} x "
          f"{args.bits}-bit codes")
    print(f"  build: {build_seconds:.2f} s, "
          f"memory (modelled): {format_bytes(stats.memory_bytes)}")
    print(f"  h-select(h={args.threshold}): {len(matches)} matches "
          f"in {query_ms:.3f} ms "
          f"({engine.last_search_ops} distance computations)")
    return 0


def _command_join(args: argparse.Namespace) -> int:
    from repro.core.errors import InvalidParameterError
    from repro.core.join import self_join

    _, codes = _encoded_workload(args)
    engine = "flat" if args.workers else args.engine
    started = time.perf_counter()
    try:
        pairs = self_join(
            codes,
            args.threshold,
            engine=engine,
            parallel=args.workers > 0,
            workers=args.workers or None,
        )
    except InvalidParameterError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    elapsed = time.perf_counter() - started
    workers = f", {args.workers} workers" if args.workers else ""
    print(f"self h-join [{engine}{workers}] over {len(codes)} codes, "
          f"h={args.threshold}:")
    print(f"  {len(pairs)} pairs in {elapsed:.2f} s")
    return 0


def _command_knn(args: argparse.Namespace) -> int:
    _, codes = _encoded_workload(args)
    index = DynamicHAIndex.build(codes)
    query = codes[args.query_id % len(codes)]
    weights = _weight_vector(args, codes)
    started = time.perf_counter()
    if weights is not None:
        neighbors = knn_select(
            query, index, args.k,
            weights=weights.values,
            weight_strategy=args.weight_strategy,
        )
    else:
        neighbors = knn_select(query, index, args.k)
    elapsed = (time.perf_counter() - started) * 1000.0
    ranking = f"weighted[{args.weights}] " if weights is not None else ""
    print(f"{ranking}{args.k}-NN of tuple {args.query_id} "
          f"in {elapsed:.2f} ms:")
    for tuple_id, distance in neighbors:
        print(f"  tuple {tuple_id}  (distance {distance:g})"
              if weights is not None
              else f"  tuple {tuple_id}  (distance {distance})")
    return 0


def _command_verify(args: argparse.Namespace) -> int:
    from repro.core.validation import verify_all_families

    _, codes = _encoded_workload(args)
    print(f"verifying all index families over {len(codes)} x "
          f"{args.bits}-bit codes...")
    for name, report in verify_all_families(codes).items():
        print(f"  {name:14s} OK - {report}")
    return 0


def _command_mrjoin(args: argparse.Namespace) -> int:
    from repro.distributed.hamming_join import mapreduce_hamming_join
    from repro.mapreduce.cluster import Cluster
    from repro.mapreduce.counters import (
        BACKOFF_SECONDS,
        TASK_RETRIES,
        TASK_SPECULATIVE,
        WORKERS_BLACKLISTED,
        WORKERS_LOST,
    )
    from repro.mapreduce.faults import ChaosPolicy, FaultPlan
    from repro.mapreduce.runtime import MapReduceRuntime

    dataset, _ = _encoded_workload(args)
    records = list(zip(range(len(dataset)), dataset.vectors))
    policy = ChaosPolicy(
        seed=args.chaos_seed,
        crash_prob=args.crash_prob,
        straggler_prob=args.straggler_prob,
        straggler_factor=args.straggler_factor,
        worker_death_prob=args.worker_death_prob,
    )
    cluster = Cluster(args.workers)
    runtime = MapReduceRuntime(
        cluster,
        fault_plan=FaultPlan(policy) if policy.enabled else None,
        speculative_execution=not args.no_speculation,
    )
    report = mapreduce_hamming_join(
        runtime, records, records, args.threshold,
        num_bits=args.bits, option=args.option, exclude_self_pairs=True,
    )
    print(f"MRHA-Index-{report.option} self-join over {len(records)} "
          f"tuples on {args.workers} workers, h={args.threshold}:")
    print(f"  pairs:           {len(report.pairs)}")
    print(f"  shuffle volume:  {format_bytes(report.shuffle_bytes)}")
    print(f"  modelled time:   {report.total_seconds:.2f} s "
          f"(preprocess {report.preprocess_seconds:.2f}, "
          f"build {report.build_seconds:.2f}, "
          f"join {report.join_seconds:.2f})")
    print(f"  partition sizes: {report.partition_sizes}")
    if policy.enabled:
        counters = cluster.counters
        print(f"  fault tolerance: {counters.get(TASK_RETRIES)} retries, "
              f"{counters.get(TASK_SPECULATIVE)} speculative attempts, "
              f"{counters.get(WORKERS_LOST)} workers lost, "
              f"{counters.get(WORKERS_BLACKLISTED)} blacklisted, "
              f"{counters.get(BACKOFF_SECONDS):.2f} s backoff")
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    from repro.data.workloads import WORKLOAD_SHAPES, mixed_workload
    from repro.service import HammingQueryService

    _, codes = _encoded_workload(args)
    if args.workload == "mixed":
        queries = mixed_workload(codes, args.queries, seed=args.seed)
    else:
        queries = WORKLOAD_SHAPES[args.workload](
            codes, args.queries, args.seed
        )

    # Naive baseline: one uncached, unbatched search per query.
    baseline = DynamicHAIndex.build(codes)
    started = time.perf_counter()
    for query in queries:
        baseline.search(query, args.threshold)
    naive_seconds = time.perf_counter() - started
    naive_qps = len(queries) / naive_seconds if naive_seconds else 0.0

    spec = get_engine(args.engine)
    canonical = spec.name
    service_kwargs = dict(
        workers=args.workers,
        max_batch=args.batch,
        queue_limit=len(queries) + 2 * args.updates + 8,
        cache_capacity=args.cache,
        batch_kernel=canonical == "flat" or spec.batched,
        # The read-only compiled planes serve through a mutable
        # DHA-Index: batched misses route through the chosen kernel,
        # single queries and live updates through the node walk.
        kernel="native" if canonical == "native" else "auto",
    )
    if args.data_dir is not None:
        from repro.store import DurableIndexStore

        if canonical not in ("dha", "flat", "native"):
            print(f"error: --data-dir needs the dha, flat, or native "
                  f"engine, not {canonical!r} (durable stores persist "
                  f"the DHA-Index)", file=sys.stderr)
            return 2

        if DurableIndexStore.exists(args.data_dir):
            service = HammingQueryService.open(
                args.data_dir, **service_kwargs
            )
            print(f"warm start from {args.data_dir}: "
                  f"{len(service)} codes at epoch {service.epoch}")
        else:
            service = HammingQueryService(
                DynamicHAIndex.build(codes),
                data_dir=args.data_dir,
                **service_kwargs,
            )
            print(f"initialized durable store at {args.data_dir}")
    elif canonical in ("dha", "flat", "native"):
        service = HammingQueryService(
            DynamicHAIndex.build(codes), **service_kwargs
        )
    else:
        service = HammingQueryService(
            build_index(canonical, codes), **service_kwargs
        )
    update_every = (
        max(1, len(queries) // (args.updates + 1)) if args.updates else 0
    )
    started = time.perf_counter()
    tickets = []
    fresh_id = len(codes)
    with service:
        for position, query in enumerate(queries):
            tickets.append(
                service.submit("select", query, args.threshold)
            )
            if update_every and position % update_every == 0:
                # One H-Insert + H-Delete pair through the live service:
                # the epoch bumps twice and stale cache entries die.
                victim = codes[position % len(codes)]
                service.insert(victim, fresh_id)
                service.delete(victim, fresh_id)
                fresh_id += 1
        for ticket in tickets:
            ticket.result()
        elapsed = time.perf_counter() - started
        stats = service.stats()
    served_qps = len(queries) / elapsed if elapsed else 0.0
    speedup = served_qps / naive_qps if naive_qps else float("inf")
    print(f"online serving of {len(queries)} {args.workload} queries "
          f"over {len(codes)} x {args.bits}-bit codes, "
          f"h={args.threshold}:")
    print(f"  naive loop:  {naive_qps:,.0f} queries/s")
    print(f"  service:     {served_qps:,.0f} queries/s "
          f"({speedup:.2f}x, {args.workers} workers, "
          f"batch {args.batch}, cache {args.cache})")
    print(stats.render())
    return 0


def _shard_workload(args: argparse.Namespace):
    from repro.data.workloads import (
        WORKLOAD_SHAPES,
        cluster_codes,
        mixed_workload,
    )

    _, codes = _encoded_workload(args)
    codes = cluster_codes(codes, args.clusters)
    if args.workload == "mixed":
        queries = mixed_workload(codes, args.queries, seed=args.seed)
    else:
        queries = WORKLOAD_SHAPES[args.workload](
            codes, args.queries, args.seed
        )
    return codes, queries


def _command_serve_sharded(args: argparse.Namespace) -> int:
    from repro.mapreduce.faults import ChaosPolicy
    from repro.service import ShardedQueryService

    codes, queries = _shard_workload(args)
    chaos = None
    if args.fail_prob or args.straggler_prob:
        chaos = ChaosPolicy(
            seed=args.chaos_seed,
            crash_prob=args.fail_prob,
            straggler_prob=args.straggler_prob,
            straggler_factor=2.0,
        )
    service = ShardedQueryService(
        codes,
        num_shards=args.shards,
        replication=args.replicas,
        chaos=chaos,
        workers=args.workers,
        max_batch=args.batch,
        queue_limit=len(queries) + 8,
        cache_capacity=args.cache,
        engine=args.engine,
        pool=args.pool,
        pool_workers=args.pool_workers,
        task_timeout=args.task_timeout,
    )
    started = time.perf_counter()
    with service:
        tickets = [
            service.submit("select", query, args.threshold)
            for query in queries
        ]
        for ticket in tickets:
            ticket.result()
        elapsed = time.perf_counter() - started
        stats = service.stats()
        shard_stats = service.shard_stats()
    qps = len(queries) / elapsed if elapsed else 0.0
    print(f"sharded serving of {len(queries)} {args.workload} queries "
          f"over {len(codes)} x {args.bits}-bit codes, "
          f"h={args.threshold}, {args.shards} shards x "
          f"{args.replicas} replicas:")
    print(f"  throughput: {qps:,.0f} queries/s")
    print(stats.render())
    print(shard_stats.render())
    return 0


def _drain_selects(service, queries, threshold: int) -> float:
    """Pipelined select sweep: submit everything, gather every ticket."""
    started = time.perf_counter()
    tickets = [
        service.submit("select", query, threshold) for query in queries
    ]
    for ticket in tickets:
        ticket.result()
    return time.perf_counter() - started


def _command_bench_shard(args: argparse.Namespace) -> int:
    from repro.service import HammingQueryService, ShardedQueryService

    codes, queries = _shard_workload(args)
    limit = len(queries) + 8
    single = HammingQueryService(
        DynamicHAIndex.build(codes),
        workers=1,
        max_batch=args.batch,
        cache_capacity=0,
        queue_limit=limit,
    )
    with single:
        single_seconds = _drain_selects(single, queries, args.threshold)
    shard_kwargs = dict(
        num_shards=args.shards,
        replication=args.replicas,
        workers=1,
        max_batch=args.batch,
        cache_capacity=0,
        queue_limit=limit,
        pool=args.pool,
        pool_workers=args.pool_workers,
        task_timeout=args.task_timeout,
    )
    broadcast = ShardedQueryService(codes, pruning=False, **shard_kwargs)
    with broadcast:
        broadcast_seconds = _drain_selects(
            broadcast, queries, args.threshold
        )
    sharded = ShardedQueryService(codes, **shard_kwargs)
    with sharded:
        sharded_seconds = _drain_selects(sharded, queries, args.threshold)
        shard_stats = sharded.shard_stats()
    vs_single = (
        single_seconds / sharded_seconds if sharded_seconds else 0.0
    )
    vs_broadcast = (
        broadcast_seconds / sharded_seconds if sharded_seconds else 0.0
    )
    print(f"sharded vs single-index select, {len(queries)} "
          f"{args.workload} queries, h={args.threshold}, "
          f"{args.shards} shards"
          + (f", {args.clusters} clusters" if args.clusters else "")
          + f", batch {args.batch}, pool {shard_stats.pool} x "
          f"{shard_stats.pool_workers}:")
    print(f"  single index:     {single_seconds * 1000:.1f} ms total")
    print(f"  sharded broadcast:{broadcast_seconds * 1000:.1f} ms total")
    print(f"  sharded pruned:   {sharded_seconds * 1000:.1f} ms total "
          f"({vs_broadcast:.2f}x vs broadcast, "
          f"{vs_single:.2f}x vs single)")
    print(f"  pruning:          {shard_stats.pruning_ratio * 100:.1f}% "
          f"of shard visits avoided, mean "
          f"{shard_stats.mean_contacted:.2f}/{args.shards} "
          f"shards contacted, {shard_stats.broadcasts} broadcasts")
    return 0


def _command_bench_kernel(args: argparse.Namespace) -> int:
    _, codes = _encoded_workload(args)
    if args.engine == "all":
        if not args.verify:
            print("--engine all requires --verify")
            return 2
        names = engine_names()
        failed = [
            name for name in names
            if _verify_engine(args, name, codes) != 0
        ]
        if failed:
            print(f"kernel equivalence FAILED for: {', '.join(failed)}")
            return 1
        print(f"kernel equivalence OK for all {len(names)} registered "
              f"engines")
        return 0
    canonical = get_engine(args.engine).name
    if args.verify:
        return _verify_engine(args, canonical, codes)
    if canonical != "flat":
        return _bench_engine(args, canonical, codes)
    index = DynamicHAIndex.build(codes)
    flat = index.compile()

    queries = [codes[i * 31 % len(codes)] for i in range(args.queries)]
    batches = [
        queries[lo:lo + args.batch]
        for lo in range(0, len(queries), args.batch)
    ]

    def best_of(run) -> float:
        run()  # warm-up
        return min(
            _timed(run) for _ in range(max(1, args.repeats))
        )

    def _timed(run) -> float:
        started = time.perf_counter()
        run()
        return time.perf_counter() - started

    node_s = best_of(
        lambda: [index.search(q, args.threshold) for q in queries]
    )
    flat_s = best_of(
        lambda: [flat.search(q, args.threshold) for q in queries]
    )
    batch_s = best_of(
        lambda: [flat.search_batch(b, args.threshold) for b in batches]
    )
    per = len(queries)
    print(f"H-Search kernel over {len(codes)} x {args.bits}-bit codes, "
          f"h={args.threshold}, {per} queries "
          f"(best of {args.repeats}):")
    print(f"  node walk:          {node_s / per * 1000:8.3f} ms/query")
    print(f"  flat kernel:        {flat_s / per * 1000:8.3f} ms/query "
          f"({node_s / flat_s:5.1f}x)")
    print(f"  flat batch({args.batch:>3}):    "
          f"{batch_s / per * 1000:8.3f} ms/query "
          f"({node_s / batch_s:5.1f}x)")
    return 0


def _verify_engine(
    args: argparse.Namespace, canonical: str, codes: CodeSet
) -> int:
    """Equivalence smoke: one registry engine vs the DHA node walk.

    Every registered engine gets the same probe plane (seeded member +
    random queries, thresholds 0..8).  Engines built on the flat kernel
    (``FlatHAIndex`` subclasses: flat, native) are held to the stricter
    contract — buffered H-Inserts, ``count_within``, and exact
    ``last_search_ops`` agreement — and the native plane is replayed a
    second time with the compiled backend force-disabled, proving the
    numpy fallback produces identical answers.
    """
    import random

    from repro.core.flat_ha import FlatHAIndex

    index = DynamicHAIndex.build(codes)
    rng = random.Random(args.seed)
    probes = [codes[rng.randrange(len(codes))] for _ in range(12)]
    probes += [rng.getrandbits(args.bits) for _ in range(12)]
    rival = build_index(canonical, codes)
    strict = isinstance(rival, FlatHAIndex)
    if strict:
        # Buffered H-Inserts so the smoke covers the buffer scan too;
        # recompile from the mutated tree so both planes see them.
        for offset in range(8):
            index.insert(rng.getrandbits(args.bits), len(codes) + offset)
        compile_native = getattr(index, "compile_native", None)
        rival = (
            compile_native() if canonical == "native"
            and compile_native is not None else index.compile()
        )
    mismatches = _verify_sweep(index, rival, probes, canonical, strict)
    detail = ""
    if canonical == "native":
        from repro.core import native as native_backends

        detail = f"; backend {rival.backend}"
        with native_backends.force_backend("numpy"):
            mismatches += _verify_sweep(
                index, rival, probes, f"{canonical}[numpy]", strict
            )
        detail += " + numpy fallback"
    if mismatches:
        print(f"kernel equivalence FAILED: {canonical}: "
              f"{mismatches} mismatches")
        return 1
    extras = (
        " (search, search_batch, count_within, ops; 8 buffered inserts)"
        if strict else ""
    )
    print(f"kernel equivalence OK: {canonical} vs node walk, "
          f"{len(probes)} queries x thresholds 0..8 over "
          f"{len(codes)} codes{extras}{detail}")
    return 0


def _verify_sweep(
    index: DynamicHAIndex,
    rival,
    probes: list[int],
    label: str,
    strict: bool,
) -> int:
    """Mismatch count of ``rival`` vs the node walk over the probes."""
    batched = getattr(rival, "search_batch", None)
    mismatches = 0
    for threshold in range(9):
        batch_results = (
            batched(probes, threshold) if batched is not None
            else [None] * len(probes)
        )
        for query, batch_ids in zip(probes, batch_results):
            expected = sorted(index.search(query, threshold))
            node_ops = index.last_search_ops
            got = sorted(rival.search(query, threshold))
            same = expected == got and (
                batch_ids is None or expected == sorted(batch_ids)
            )
            if strict:
                same = (
                    same
                    and node_ops == rival.last_search_ops
                    and index.count_within(query, threshold)
                    == rival.count_within(query, threshold)
                )
            if not same:
                mismatches += 1
                print(f"MISMATCH h={threshold} query={query:#x}: "
                      f"nodes={expected} {label}={got}")
    return mismatches


def _bench_engine(
    args: argparse.Namespace, canonical: str, codes: CodeSet
) -> int:
    """``bench-kernel`` timing for any non-flat registry engine.

    Same shape as the flat path: the engine's ``search`` (and
    ``search_batch`` when offered) is timed against the node walk.
    Verification lives in :func:`_verify_engine`.
    """
    index = DynamicHAIndex.build(codes)
    rival = build_index(canonical, codes)

    queries = [codes[i * 31 % len(codes)] for i in range(args.queries)]
    batches = [
        queries[lo:lo + args.batch]
        for lo in range(0, len(queries), args.batch)
    ]

    def _timed(run) -> float:
        started = time.perf_counter()
        run()
        return time.perf_counter() - started

    def best_of(run) -> float:
        run()  # warm-up
        return min(_timed(run) for _ in range(max(1, args.repeats)))

    node_s = best_of(
        lambda: [index.search(q, args.threshold) for q in queries]
    )
    rival_s = best_of(
        lambda: [rival.search(q, args.threshold) for q in queries]
    )
    per = len(queries)
    backend = getattr(rival, "backend", None)
    print(f"H-Search over {len(codes)} x {args.bits}-bit codes, "
          f"h={args.threshold}, {per} queries "
          f"(best of {args.repeats})"
          + (f", {canonical} backend {backend}" if backend else "")
          + ":")
    print(f"  node walk:          {node_s / per * 1000:8.3f} ms/query")
    print(f"  {canonical + ':':19s} {rival_s / per * 1000:8.3f} ms/query "
          f"({node_s / rival_s:5.1f}x)")
    if hasattr(rival, "search_batch"):
        batch_s = best_of(
            lambda: [
                rival.search_batch(b, args.threshold) for b in batches
            ]
        )
        print(f"  {canonical} batch({args.batch:>3}): "
              f"{batch_s / per * 1000:8.3f} ms/query "
              f"({node_s / batch_s:5.1f}x)")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    from repro.obs import last_trace, render_span_tree, trace

    _, codes = _encoded_workload(args)
    index = DynamicHAIndex.build(codes)
    query = codes[args.query_id % len(codes)]
    if args.engine == "both":
        engines = ["nodes", "flat"]
    elif args.engine == "all":
        engines = ["nodes", "flat", "native"]
    else:
        engines = [args.engine]
    print(f"h-select(h={args.threshold}) over {len(codes)} x "
          f"{args.bits}-bit codes, query tuple {args.query_id}:\n")
    failures = 0
    for engine_name in engines:
        if engine_name == "nodes":
            engine = index
        elif engine_name == "native":
            engine = index.compile_native()
        else:
            engine = index.compile()
        with trace("h_select", engine=engine_name,
                   threshold=args.threshold):
            matches = engine.search(query, args.threshold)
        tree = last_trace()
        print(render_span_tree(tree))
        expected = engine.last_search_ops
        total = tree.total_ops
        verdict = "OK" if total == expected else "MISMATCH"
        print(f"{engine_name}: {len(matches)} matches; span ops {total} "
              f"vs last_search_ops {expected} -> {verdict}\n")
        if total != expected:
            failures += 1
    return 1 if failures else 0


def _command_index_save(args: argparse.Namespace) -> int:
    from repro.store import DurableIndexStore

    _, codes = _encoded_workload(args)
    started = time.perf_counter()
    index = DynamicHAIndex.build(codes)
    build_seconds = time.perf_counter() - started
    store = DurableIndexStore(args.data_dir, fsync=not args.no_fsync)
    started = time.perf_counter()
    store.initialize(index)
    store.close()
    save_seconds = time.perf_counter() - started
    print(f"saved {len(index)} x {args.bits}-bit codes to "
          f"{args.data_dir} (generation 1)")
    print(f"  build: {build_seconds:.2f} s, save: {save_seconds:.2f} s")
    return 0


def _command_index_load(args: argparse.Namespace) -> int:
    from repro.store import DurableIndexStore

    store = DurableIndexStore(args.data_dir)
    started = time.perf_counter()
    index = store.open()
    load_seconds = time.perf_counter() - started
    stats = store.stats()
    print(f"recovered {len(index)} x {index.code_length}-bit codes "
          f"from {args.data_dir} in {load_seconds:.2f} s")
    print(f"  generation {stats.generation}, seq {stats.last_seq}, "
          f"{stats.wal_replayed} WAL records replayed "
          f"({stats.replay_skipped} skipped), "
          f"{stats.recovery_fallbacks} generation fallbacks")
    if args.query is not None:
        matches = index.search(args.query, args.threshold)
        print(f"  h-select({args.query:#x}, h={args.threshold}): "
              f"{len(matches)} matches")
    store.close()
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    import json

    from repro.data.workloads import WORKLOAD_SHAPES
    from repro.obs import registry, set_metrics_enabled
    from repro.service import HammingQueryService

    _, codes = _encoded_workload(args)
    queries = WORKLOAD_SHAPES["zipf"](codes, args.queries, args.seed)
    set_metrics_enabled(True)
    try:
        if args.data_dir is not None:
            from repro.store import DurableIndexStore

            if DurableIndexStore.exists(args.data_dir):
                service = HammingQueryService.open(
                    args.data_dir, queue_limit=len(queries) + 8
                )
            else:
                service = HammingQueryService(
                    DynamicHAIndex.build(codes),
                    data_dir=args.data_dir,
                    queue_limit=len(queries) + 8,
                )
        else:
            service = HammingQueryService(
                DynamicHAIndex.build(codes),
                queue_limit=len(queries) + 8,
            )
        with service:
            tickets = [
                service.submit("select", query, args.threshold)
                for query in queries
            ]
            for ticket in tickets:
                ticket.result()
            service.publish_metrics()
        if args.format == "json":
            print(json.dumps(
                registry().snapshot(), indent=2, sort_keys=True
            ))
        else:
            print(registry().render_prometheus(), end="")
    finally:
        set_metrics_enabled(False)
        registry().clear()
    return 0


def _command_docs_gen(args: argparse.Namespace) -> int:
    from repro.docsgen import generate_docs, stale_docs

    if args.check:
        stale = stale_docs(root=args.root)
        if stale:
            print("generated docs out of date "
                  "(run: python -m repro docs-gen):")
            for path in stale:
                print(f"  {path}")
            return 1
        print("generated docs are current")
        return 0
    for path in generate_docs(root=args.root):
        print(f"wrote {path}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _command_demo()
    if args.command == "info":
        return _command_info()
    if args.command == "select":
        return _command_select(args)
    if args.command == "join":
        return _command_join(args)
    if args.command == "knn":
        return _command_knn(args)
    if args.command == "mrjoin":
        return _command_mrjoin(args)
    if args.command == "serve-bench":
        return _command_serve_bench(args)
    if args.command == "serve-sharded":
        return _command_serve_sharded(args)
    if args.command == "bench-shard":
        return _command_bench_shard(args)
    if args.command == "bench-kernel":
        return _command_bench_kernel(args)
    if args.command == "verify":
        return _command_verify(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "metrics":
        return _command_metrics(args)
    if args.command == "docs-gen":
        return _command_docs_gen(args)
    if args.command == "index":
        if args.index_command == "save":
            return _command_index_save(args)
        if args.index_command == "load":
            return _command_index_load(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
