"""Versioned, checksummed, memory-mappable HA-Index snapshots.

Layout (little-endian)::

    magic(8) | version(u32) | meta_len(u32) | meta JSON | pad to 64
    | array blobs (each 64-byte aligned, raw C-order bytes)
    | crc32(u32) over everything before it

The JSON meta block carries the index configuration, the WAL sequence
number the snapshot is consistent with (``last_seq``), and an array
table (name, dtype, shape, offset) for the
:attr:`~repro.core.flat_ha.FlatHAIndex.STATE_ARRAYS` blobs.  Reading
maps the file with :class:`numpy.memmap` and takes zero-copy views
into it, so a warm start touches pages lazily instead of re-deriving
the arrays from a full H-Build.

Loading offers two levels: :func:`load_flat` reconstructs just the
immutable query kernel, and :func:`decode_dynamic` rebuilds the full
mutable :class:`~repro.core.dynamic_ha.DynamicHAIndex` (node graph and
insert buffer) with the flat kernel pre-attached to its compile cache.
"""

from __future__ import annotations

import json
import struct
from pathlib import Path

import numpy as np

from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import IndexStateError, StoreError
from repro.core.flat_ha import FlatHAIndex
from repro.store.faults import KillPointInjector
from repro.store.format import atomic_write, crc32

SNAP_MAGIC = b"HASNAP\x00\x01"
SNAP_VERSION = 1
_HEADER = struct.Struct("<8sII")
_ALIGN = 64


def _pad(offset: int) -> int:
    return -offset % _ALIGN


class SnapshotView:
    """A validated, memory-mapped snapshot file.

    Attributes:
        meta: the parsed JSON meta block.
        arrays: name -> zero-copy ndarray view into the mapped file.
        last_seq: WAL sequence number folded into this snapshot.
    """

    def __init__(self, path: Path, meta: dict, arrays: dict) -> None:
        self.path = path
        self.meta = meta
        self.arrays = arrays

    @property
    def last_seq(self) -> int:
        return int(self.meta["last_seq"])

    @property
    def code_length(self) -> int:
        return int(self.meta["code_length"])


def encode_snapshot(index: DynamicHAIndex, *, last_seq: int) -> bytes:
    """Serialize ``index`` (flushed through its compiled kernel)."""
    if index._frozen:
        raise IndexStateError(
            "cannot snapshot a frozen (merged) HA-Index"
        )
    state = index.compile().to_state()
    meta = {
        "format": SNAP_VERSION,
        "code_length": state["code_length"],
        "words": state["words"],
        "size": state["size"],
        "keep_ids": state["keep_ids"],
        "gray_order": index._gray_order,
        "window": index.window,
        "max_depth": index.max_depth,
        "rebuild_buffer": index._rebuild_buffer,
        "last_seq": int(last_seq),
        "level_offsets": state["level_offsets"],
        "arrays": {},
    }
    blobs: list[tuple[str, bytes]] = []
    for name in FlatHAIndex.STATE_ARRAYS:
        array = np.ascontiguousarray(state[name])
        blobs.append((name, array.tobytes()))
        meta["arrays"][name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
        }
    # Absolute blob offsets depend on the meta block's own length, so
    # iterate to the (quickly reached) fixed point.
    meta_bytes = b""
    for _ in range(8):
        offset = _HEADER.size + len(meta_bytes)
        offset += _pad(offset)
        for name, blob in blobs:
            meta["arrays"][name]["offset"] = offset
            offset += len(blob) + _pad(len(blob))
        candidate = json.dumps(meta, sort_keys=True).encode()
        if len(candidate) == len(meta_bytes):
            break
        meta_bytes = candidate
    else:  # pragma: no cover - offsets converge within digits of growth
        raise StoreError("snapshot meta offsets failed to converge")
    meta_bytes = json.dumps(meta, sort_keys=True).encode()
    parts = [
        _HEADER.pack(SNAP_MAGIC, SNAP_VERSION, len(meta_bytes)),
        meta_bytes,
        b"\x00" * _pad(_HEADER.size + len(meta_bytes)),
    ]
    for _, blob in blobs:
        parts.append(blob)
        parts.append(b"\x00" * _pad(len(blob)))
    payload = b"".join(parts)
    return payload + struct.pack("<I", crc32(payload))


def write_snapshot(
    path: Path,
    index: DynamicHAIndex,
    *,
    last_seq: int,
    fsync: bool = True,
    injector: KillPointInjector | None = None,
) -> None:
    """Atomically persist ``index`` to ``path``."""
    atomic_write(
        path,
        encode_snapshot(index, last_seq=last_seq),
        fsync=fsync,
        injector=injector,
        site="snapshot",
    )


def read_snapshot(path: Path) -> SnapshotView:
    """Map and validate one snapshot file.

    Raises :class:`~repro.core.errors.StoreError` on any corruption
    (bad magic/version, malformed meta, checksum mismatch).
    """
    try:
        buf = np.memmap(path, dtype=np.uint8, mode="r")
    except (OSError, ValueError) as error:
        raise StoreError(f"cannot map snapshot {path}: {error}") from error
    if buf.size < _HEADER.size + 4:
        raise StoreError(f"snapshot {path} is truncated")
    magic, version, meta_len = _HEADER.unpack_from(buf[: _HEADER.size])
    if magic != SNAP_MAGIC:
        raise StoreError(f"{path} is not an HA-Index snapshot (bad magic)")
    if version != SNAP_VERSION:
        raise StoreError(
            f"unsupported snapshot version {version} in {path}"
        )
    (stored_crc,) = struct.unpack("<I", buf[-4:].tobytes())
    if stored_crc != crc32(memoryview(buf)[:-4]):
        raise StoreError(f"snapshot {path} failed its checksum")
    if _HEADER.size + meta_len + 4 > buf.size:
        raise StoreError(f"snapshot {path} meta block is truncated")
    try:
        meta = json.loads(
            buf[_HEADER.size : _HEADER.size + meta_len].tobytes()
        )
        table = meta["arrays"]
        arrays = {}
        for name in FlatHAIndex.STATE_ARRAYS:
            entry = table[name]
            dtype = np.dtype(entry["dtype"])
            shape = tuple(int(v) for v in entry["shape"])
            count = int(np.prod(shape)) if shape else 1
            start = int(entry["offset"])
            stop = start + count * dtype.itemsize
            if stop > buf.size - 4:
                raise StoreError(
                    f"snapshot {path} array {name} overruns the file"
                )
            arrays[name] = (
                buf[start:stop].view(dtype).reshape(shape)
            )
    except StoreError:
        raise
    except Exception as error:  # noqa: BLE001 - malformed meta
        raise StoreError(
            f"snapshot {path} has a malformed meta block: {error}"
        ) from error
    return SnapshotView(path, meta, arrays)


def _flat_state(view: SnapshotView) -> dict:
    state = {
        "code_length": view.meta["code_length"],
        "keep_ids": view.meta["keep_ids"],
        "size": view.meta["size"],
        "words": view.meta["words"],
        "level_offsets": view.meta["level_offsets"],
    }
    state.update(view.arrays)
    return state


def load_flat(view: SnapshotView) -> FlatHAIndex:
    """The immutable query kernel, backed by the mapped arrays."""
    return FlatHAIndex.from_state(_flat_state(view))


def decode_dynamic(view: SnapshotView) -> DynamicHAIndex:
    """Rebuild the mutable index; its compile cache holds the kernel.

    The node graph is reconstructed from the flat arrays through the
    same wire format ``__setstate__`` consumes, then the flat kernel
    (zero-copy over the mapped file) is attached to the compile cache
    so the first batched query after a warm start pays no recompile.
    """
    flat = load_flat(view)
    index = DynamicHAIndex.__new__(DynamicHAIndex)
    index.__setstate__(_wire_state(view, flat))
    index._compiled = flat
    index._compiled_mutations = 0
    index._compiled_tree_version = 0
    return index


def _wire_state(view: SnapshotView, flat: FlatHAIndex) -> dict:
    """The ``__setstate__`` wire dict encoded by a snapshot's arrays."""
    meta = view.meta
    length = int(meta["code_length"])
    keep_ids = bool(meta["keep_ids"])
    arrays = view.arrays
    bits_list = _combine(arrays["bits"])
    masks_list = _combine(arrays["masks"])
    child_first = arrays["child_first"].tolist()
    child_count = arrays["child_count"].tolist()
    leaf_lo = arrays["leaf_lo"].tolist()
    id_offsets = arrays["id_offsets"].tolist()
    ids_flat = arrays["ids_flat"].tolist()
    frequency = arrays["frequency"].tolist()
    nodes = []
    for slot in range(len(bits_list)):
        count = child_count[slot]
        if count:
            ids: list[int] = []
            children = list(
                range(child_first[slot], child_first[slot] + count)
            )
        else:
            children = []
            if keep_ids:
                position = leaf_lo[slot]
                ids = ids_flat[
                    id_offsets[position] : id_offsets[position + 1]
                ]
            else:
                ids = []
        nodes.append(
            (
                bits_list[slot],
                masks_list[slot],
                children,
                ids,
                frequency[slot],
            )
        )
    offsets = meta["level_offsets"]
    top_count = offsets[1] if len(offsets) > 1 else 0
    buffer = list(
        zip(flat._buf_codes, arrays["buf_ids"].tolist())
    )
    return {
        "code_length": length,
        "window": int(meta["window"]),
        "max_depth": int(meta["max_depth"]),
        "rebuild_buffer": int(meta["rebuild_buffer"]),
        "keep_ids": keep_ids,
        "gray_order": bool(meta["gray_order"]),
        "frozen": False,
        "size": int(meta["size"]),
        "buffer": buffer,
        "top": list(range(top_count)),
        "nodes": nodes,
    }


def _rebuild_plain(state: dict) -> DynamicHAIndex:
    """Unpickle target for copies of a :class:`LazySnapshotIndex`."""
    index = DynamicHAIndex.__new__(DynamicHAIndex)
    index.__setstate__(state)
    return index


class LazySnapshotIndex(DynamicHAIndex):
    """A recovered index that defers node-graph materialization.

    :func:`decode_dynamic` spends nearly all of its time rebuilding the
    Python pattern tree (hundreds of thousands of node objects at paper
    scale) even though a warm-started service answers queries through
    the compiled flat kernel, which loads zero-copy from the mapped
    snapshot in milliseconds.  This subclass therefore starts with only
    the kernel attached and materializes the node graph on first need:
    any mutation, and any API that walks nodes (``check_invariants``,
    ``trace_search``, ``merge``, plain ``search`` — whose node-walk
    result *ordering* is observable API — ...), triggers the decode
    transparently through attribute access on ``_top`` /
    ``_leaf_by_code`` / ``_buffer``.

    Order-insensitive read paths (``count_within``,
    ``contains_within``, ``search_codes``, ``search_with_distances``,
    the batched queries via :meth:`compile`, and the id lookups) are
    answered by the kernel without materializing, so a clean-shutdown
    warm start serves its first queries without ever paying the
    node-graph rebuild.
    """

    _NODE_ATTRS = frozenset({"_top", "_leaf_by_code", "_buffer"})

    def __init__(self, *args, **kwargs) -> None:
        raise TypeError(
            "LazySnapshotIndex is created by lazy_decode(view)"
        )

    # -- lazy plumbing -----------------------------------------------------

    def __getattr__(self, name: str):
        if name in LazySnapshotIndex._NODE_ATTRS and not self.__dict__.get(
            "_lazy_ready", True
        ):
            self._materialize()
            return self.__dict__[name]
        raise AttributeError(name)

    @property
    def materialized(self) -> bool:
        """Has the Python node graph been decoded yet?"""
        return self._lazy_ready

    def _materialize(self) -> None:
        if self._lazy_ready:
            return
        flat = self._lazy_flat
        DynamicHAIndex.__setstate__(
            self, _wire_state(self._lazy_view, flat)
        )
        self._compiled = flat
        self._compiled_mutations = 0
        self._compiled_tree_version = 0
        self._lazy_ready = True

    def __reduce__(self):
        # Copies (the service's copy-on-swap refresh, strip_ids) come
        # back as plain DynamicHAIndex instances: the mapped snapshot
        # file may be gone by the time the copy is unpickled.
        self._materialize()
        return (_rebuild_plain, (DynamicHAIndex.__getstate__(self),))

    # -- kernel-served reads ------------------------------------------------

    def count_within(self, query: int, threshold: int) -> int:
        if self._lazy_ready:
            return DynamicHAIndex.count_within(self, query, threshold)
        return self._lazy_flat.count_within(query, threshold)

    def contains_within(self, query: int, threshold: int) -> bool:
        if self._lazy_ready:
            return DynamicHAIndex.contains_within(
                self, query, threshold
            )
        return self._lazy_flat.contains_within(query, threshold)

    def search_codes(self, query: int, threshold: int) -> list[int]:
        if self._lazy_ready:
            return DynamicHAIndex.search_codes(self, query, threshold)
        codes = self._lazy_flat.search_codes(query, threshold)
        self.last_search_ops = self._lazy_flat.last_search_ops
        return codes

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        if self._lazy_ready:
            return DynamicHAIndex.search_with_distances(
                self, query, threshold
            )
        pairs = self._lazy_flat.search_with_distances(query, threshold)
        self.last_search_ops = self._lazy_flat.last_search_ops
        return pairs

    def _lazy_leaf_positions(self) -> dict[int, int]:
        positions = self.__dict__.get("_lazy_leaf_pos")
        if positions is None:
            positions = {
                code: position
                for position, code in enumerate(
                    self._lazy_flat._leaf_codes
                )
            }
            self._lazy_leaf_pos = positions
        return positions

    def ids_for_code(self, code: int) -> list[int]:
        if self._lazy_ready:
            return DynamicHAIndex.ids_for_code(self, code)
        flat = self._lazy_flat
        position = self._lazy_leaf_positions().get(code)
        ids: list[int] = []
        if position is not None:
            lo = int(flat._id_offsets[position])
            hi = int(flat._id_offsets[position + 1])
            ids = flat._ids_flat[lo:hi].tolist()
        ids.extend(
            tuple_id
            for buffered, tuple_id in zip(
                flat._buf_codes, flat._buf_ids.tolist()
            )
            if buffered == code
        )
        return ids

    def code_id_pairs(self):
        if self._lazy_ready:
            yield from DynamicHAIndex.code_id_pairs(self)
            return
        flat = self._lazy_flat
        offsets = flat._id_offsets.tolist()
        ids_flat = flat._ids_flat.tolist()
        for position, code in enumerate(flat._leaf_codes):
            for tuple_id in ids_flat[
                offsets[position] : offsets[position + 1]
            ]:
                yield code, tuple_id
        yield from zip(flat._buf_codes, flat._buf_ids.tolist())

    @property
    def num_distinct_codes(self) -> int:
        if self._lazy_ready:
            return DynamicHAIndex.num_distinct_codes.fget(self)
        flat = self._lazy_flat
        return len(set(flat._leaf_codes)) + len(set(flat._buf_codes))


def lazy_decode(view: SnapshotView) -> LazySnapshotIndex:
    """A :class:`LazySnapshotIndex` over ``view``'s mapped kernel."""
    flat = load_flat(view)
    meta = view.meta
    index = LazySnapshotIndex.__new__(LazySnapshotIndex)
    index._code_length = int(meta["code_length"])
    index._size = int(meta["size"])
    index._mutations = 0
    index.last_search_ops = 0
    index._window = int(meta["window"])
    index._max_depth = int(meta["max_depth"])
    index._rebuild_buffer = int(meta["rebuild_buffer"])
    index._keep_ids = bool(meta["keep_ids"])
    index._gray_order = bool(meta["gray_order"])
    index._frozen = False
    index._tree_version = 0
    index._compiled = flat
    index._compiled_mutations = 0
    index._compiled_tree_version = 0
    index._lazy_view = view
    index._lazy_flat = flat
    index._lazy_ready = False
    return index


def _combine(matrix: np.ndarray) -> list[int]:
    values = [0] * matrix.shape[0]
    for word in range(matrix.shape[1]):
        shift = word * 64
        values = [
            value | (chunk << shift)
            for value, chunk in zip(values, matrix[:, word].tolist())
        ]
    return values


__all__ = [
    "SNAP_MAGIC",
    "SNAP_VERSION",
    "LazySnapshotIndex",
    "SnapshotView",
    "encode_snapshot",
    "write_snapshot",
    "read_snapshot",
    "load_flat",
    "decode_dynamic",
    "lazy_decode",
]
