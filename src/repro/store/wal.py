"""Write-ahead log for H-Insert / H-Delete mutations.

Format (all little-endian):

* 16-byte header — ``magic(8) | version(u32) | code_length(u32)``;
* fixed-size records — ``seq(u64) | op(u8) | tuple_id(i64) | code
  ((code_length + 7) // 8 bytes) | crc32(u32)`` where the CRC covers
  everything before it.

Records are appended *before* the mutation touches the in-memory
index; a record is acknowledged once it is written and (by default)
fsynced.  Sequence numbers are global per store — they continue across
snapshot generations, so ``snapshot.last_seq`` tells recovery exactly
which WAL prefix is already folded in.

:func:`read_wal` never raises on bad bytes: it scans the file front to
back, verifying each record's CRC, sequence contiguity and field
ranges, and stops at the first invalid record.  Everything before the
stop is the valid prefix (``valid_bytes``); everything after is a torn
tail the next writer truncates.  A foreign or truncated header yields
an empty scan, which recovery treats as "this generation's WAL carries
nothing" rather than an error.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import StoreError
from repro.store.faults import KillPointInjector
from repro.store.format import crc32

WAL_MAGIC = b"HAWAL\x00\x00\x01"
WAL_VERSION = 1
_HEADER = struct.Struct("<8sII")
_BODY = struct.Struct("<QBq")

OP_INSERT = 1
OP_DELETE = 2
_VALID_OPS = (OP_INSERT, OP_DELETE)


def record_size(code_length: int) -> int:
    """On-disk bytes of one WAL record for this code length."""
    return _BODY.size + (code_length + 7) // 8 + 4


@dataclass(frozen=True, slots=True)
class WalRecord:
    """One durably logged mutation."""

    seq: int
    op: int
    code: int
    tuple_id: int


@dataclass(frozen=True, slots=True)
class WalScan:
    """Result of scanning a WAL file.

    ``valid_bytes`` is the length of the longest valid prefix
    (including the header); ``torn`` reports whether trailing bytes
    beyond it were present and discarded.
    """

    records: tuple[WalRecord, ...]
    valid_bytes: int
    torn: bool

    @property
    def last_seq(self) -> int:
        return self.records[-1].seq if self.records else 0


def encode_record(
    seq: int, op: int, code: int, tuple_id: int, code_length: int
) -> bytes:
    body = _BODY.pack(seq, op, tuple_id) + code.to_bytes(
        (code_length + 7) // 8, "little"
    )
    return body + struct.pack("<I", crc32(body))


def read_wal(path: Path, code_length: int) -> WalScan:
    """Scan one WAL file; returns its valid record prefix (never raises)."""
    try:
        data = path.read_bytes()
    except OSError:
        return WalScan((), 0, False)
    if len(data) < _HEADER.size:
        return WalScan((), 0, bool(data))
    magic, version, length = _HEADER.unpack_from(data)
    if magic != WAL_MAGIC or version != WAL_VERSION or length != code_length:
        return WalScan((), 0, True)
    size = record_size(code_length)
    code_bytes = (code_length + 7) // 8
    records: list[WalRecord] = []
    offset = _HEADER.size
    expected_seq: int | None = None
    while offset + size <= len(data):
        body = data[offset : offset + size - 4]
        (stored,) = struct.unpack_from("<I", data, offset + size - 4)
        if stored != crc32(body):
            break
        seq, op, tuple_id = _BODY.unpack_from(body)
        code = int.from_bytes(
            body[_BODY.size : _BODY.size + code_bytes], "little"
        )
        if op not in _VALID_OPS or code >> code_length:
            break
        if expected_seq is not None and seq != expected_seq:
            break
        expected_seq = seq + 1
        records.append(WalRecord(seq, op, code, tuple_id))
        offset += size
    return WalScan(tuple(records), offset, offset < len(data))


class WalWriter:
    """Append-side of one WAL file.

    ``fsync=False`` trades durability of the last few records for
    speed (group commit is out of scope); the validity scan still
    recovers every fully written record.
    """

    def __init__(
        self,
        path: Path,
        code_length: int,
        next_seq: int,
        *,
        fsync: bool = True,
        injector: KillPointInjector | None = None,
    ) -> None:
        self.path = path
        self.code_length = code_length
        self.next_seq = next_seq
        #: Highest sequence fully written to the OS (crash-survivable
        #: under simulated process death; the harness oracle cutoff).
        self.complete_seq = next_seq - 1
        #: Highest sequence known fsynced to stable media.
        self.durable_seq = next_seq - 1
        self._fsync = fsync
        self.injector = injector
        self._stream = None

    @classmethod
    def create(
        cls,
        path: Path,
        code_length: int,
        next_seq: int,
        *,
        fsync: bool = True,
        injector: KillPointInjector | None = None,
    ) -> "WalWriter":
        """Start a fresh WAL file (header only)."""
        writer = cls(
            path, code_length, next_seq, fsync=fsync, injector=injector
        )
        header = _HEADER.pack(WAL_MAGIC, WAL_VERSION, code_length)
        stream = open(path, "wb")
        try:
            if injector is not None:
                injector.write_gate("wal.header", stream, header)
            else:
                stream.write(header)
            stream.flush()
            if injector is not None:
                injector.gate("wal.header_fsync")
            if fsync:
                os.fsync(stream.fileno())
        except BaseException:
            stream.close()
            raise
        writer._stream = stream
        return writer

    @classmethod
    def resume(
        cls,
        path: Path,
        code_length: int,
        scan: WalScan,
        next_seq: int,
        *,
        fsync: bool = True,
        injector: KillPointInjector | None = None,
    ) -> "WalWriter":
        """Reopen an existing WAL, truncating any torn tail.

        ``scan`` must be ``read_wal(path, code_length)``; a WAL whose
        header itself was invalid (``valid_bytes == 0``) is rewritten
        from scratch.
        """
        if scan.valid_bytes == 0:
            return cls.create(
                path,
                code_length,
                next_seq,
                fsync=fsync,
                injector=injector,
            )
        writer = cls(
            path,
            code_length,
            next_seq,
            fsync=fsync,
            injector=injector,
        )
        stream = open(path, "r+b")
        try:
            if scan.torn:
                stream.truncate(scan.valid_bytes)
            stream.seek(0, os.SEEK_END)
        except BaseException:
            stream.close()
            raise
        writer._stream = stream
        return writer

    def append(self, op: int, code: int, tuple_id: int) -> int:
        """Durably log one mutation; returns its sequence number."""
        stream = self._stream
        if stream is None:
            raise StoreError("WAL writer is closed")
        seq = self.next_seq
        payload = encode_record(
            seq, op, code, tuple_id, self.code_length
        )
        injector = self.injector
        if injector is not None:
            injector.write_gate("wal.record", stream, payload)
        else:
            stream.write(payload)
        stream.flush()
        # From here the record is in the OS page cache: it survives
        # simulated process death (though not power loss until fsync).
        self.next_seq = seq + 1
        self.complete_seq = seq
        if injector is not None:
            injector.gate("wal.fsync")
        if self._fsync:
            os.fsync(stream.fileno())
        self.durable_seq = seq
        return seq

    def close(self) -> None:
        stream, self._stream = self._stream, None
        if stream is not None:
            stream.close()
