"""Shared on-disk format helpers: checksums and atomic file rotation.

Every durable artifact is written with the same protocol:

1. serialize the full payload in memory,
2. write it to ``<path>.tmp`` (one gated write),
3. flush + fsync the temporary file,
4. ``os.replace`` it over the final name (atomic on POSIX),
5. fsync the containing directory so the rename itself is durable.

A crash at any step leaves either the old file intact or a stray
``*.tmp`` the next recovery ignores and removes — never a partially
visible artifact under the final name.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

from repro.store.faults import KillPointInjector


def crc32(payload: bytes | memoryview) -> int:
    """CRC-32 of ``payload`` as an unsigned 32-bit int."""
    return zlib.crc32(payload) & 0xFFFFFFFF


def fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write(
    path: Path,
    payload: bytes,
    *,
    fsync: bool = True,
    injector: KillPointInjector | None = None,
    site: str = "file",
) -> None:
    """Write ``payload`` to ``path`` with the temp-fsync-rename protocol.

    ``site`` names the artifact in injected kill points
    (``<site>.write`` / ``<site>.fsync`` / ``<site>.rename``).
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as stream:
        if injector is not None:
            injector.write_gate(f"{site}.write", stream, payload)
        else:
            stream.write(payload)
        stream.flush()
        if injector is not None:
            injector.gate(f"{site}.fsync")
        if fsync:
            os.fsync(stream.fileno())
    if injector is not None:
        injector.gate(f"{site}.rename")
    os.replace(tmp, path)
    if fsync:
        fsync_dir(path.parent)


def remove_stray_tmp(directory: Path) -> None:
    """Delete leftover ``*.tmp`` files from interrupted rotations."""
    for stray in directory.glob("*.tmp"):
        stray.unlink(missing_ok=True)
