"""Crash-loop recovery harness: kill points + corruption vs an oracle.

The harness proves the durable store's central claim — *recovery never
raises, and the recovered index answers exactly like one that never
crashed* — by brute force:

* **Kill-point lane.**  A scripted workload (H-Build, then a seeded
  stream of inserts/deletes with periodic snapshot rotations) runs with
  a :class:`~repro.store.faults.KillPointInjector` armed to die at step
  ``k``, for every gated write/fsync/rename/unlink step the script
  performs, with and without torn trailing writes.  After each
  simulated death the directory is recovered with a fresh store and
  compared against an oracle built by replaying the acknowledged
  operation prefix in memory.
* **Corruption lane.**  A clean run's directory is copied and damaged —
  seeded byte flips in the newest snapshot and the active WAL, WAL
  truncations, a deleted and a garbage-overwritten newest snapshot —
  and each damaged copy must still recover (falling back a generation
  where needed) to a state matching the oracle at the store's own
  recovered sequence number.

The oracle invariant: after recovery, ``store.last_seq == n`` implies
the recovered index is byte-equivalent to H-Build(base) plus the first
``n`` scripted operations — checked on the stored (code, id) pair set,
node-walk and compiled-kernel select answers, and ``count_within``.
For kill points, ``n`` must also land in ``{acknowledged,
acknowledged + 1}``: no acknowledged operation may be lost, and only
the single in-flight operation may additionally survive.
"""

from __future__ import annotations

import random
import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.data.synthetic import random_codes
from repro.store.faults import KillPointInjector, SimulatedCrash
from repro.store.store import DurableIndexStore
from repro.store.wal import record_size

#: One scripted mutation: ("insert" | "delete", code, tuple_id).
Op = tuple[str, int, int]


@dataclass(frozen=True, slots=True)
class CrashScript:
    """A deterministic workload for the crash loop."""

    code_length: int
    base: CodeSet
    ops: tuple[Op, ...]
    snapshot_every: int
    index_params: dict = field(default_factory=dict)


@dataclass(slots=True)
class HarnessReport:
    """Outcome of one :func:`run_crash_loop` invocation."""

    scenarios: int = 0
    kill_points: int = 0
    corruptions: int = 0
    failures: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def make_script(
    *,
    code_length: int = 24,
    n_base: int = 48,
    n_ops: int = 40,
    snapshot_every: int = 9,
    seed: int = 0,
    index_params: dict | None = None,
) -> CrashScript:
    """A seeded base set plus a mixed insert/delete stream.

    Deletes always target a pair that is live at that point of the
    stream, so replaying any prefix is well-defined.
    """
    rng = random.Random(seed)
    base_codes = random_codes(n_base, code_length, seed=seed + 1)
    base = CodeSet(base_codes, code_length)
    live: list[tuple[int, int]] = list(zip(base.codes, base.ids))
    ops: list[Op] = []
    for i in range(n_ops):
        if live and rng.random() < 0.3:
            code, tuple_id = live.pop(rng.randrange(len(live)))
            ops.append(("delete", code, tuple_id))
        else:
            code = rng.getrandbits(code_length)
            tuple_id = 1000 + i
            ops.append(("insert", code, tuple_id))
            live.append((code, tuple_id))
    return CrashScript(
        code_length=code_length,
        base=base,
        ops=tuple(ops),
        snapshot_every=snapshot_every,
        index_params=dict(index_params or {}),
    )


def _apply(index: DynamicHAIndex, op: Op) -> None:
    kind, code, tuple_id = op
    if kind == "insert":
        index.insert(code, tuple_id)
    else:
        index.delete(code, tuple_id)


def build_oracle(script: CrashScript, n_ops: int) -> DynamicHAIndex:
    """H-Build the base set and replay the first ``n_ops`` operations."""
    index = DynamicHAIndex.build(script.base, **script.index_params)
    for op in script.ops[:n_ops]:
        _apply(index, op)
    return index


def run_script(
    data_dir: Path,
    script: CrashScript,
    injector: KillPointInjector | None = None,
    *,
    fsync: bool = True,
) -> int:
    """Execute the scripted workload against a fresh store.

    The injector is armed only *after* ``initialize`` — losing the very
    first snapshot leaves nothing durable to recover, which is outside
    the crash-safety contract (every rotation thereafter exercises the
    identical write/fsync/rename sites).  Returns the number of
    operations acknowledged (WAL append + in-memory apply completed);
    a :class:`~repro.store.faults.SimulatedCrash` propagates to the
    caller.
    """
    index = DynamicHAIndex.build(script.base, **script.index_params)
    store = DurableIndexStore(data_dir, fsync=fsync)
    store.initialize(index)
    store.set_injector(injector)
    acknowledged = 0
    try:
        for position, op in enumerate(script.ops):
            kind, code, tuple_id = op
            if kind == "insert":
                store.append_insert(code, tuple_id)
            else:
                store.append_delete(code, tuple_id)
            _apply(index, op)
            acknowledged += 1
            if (position + 1) % script.snapshot_every == 0:
                store.snapshot(index)
    finally:
        if injector is None:
            store.close()
    return acknowledged


def _probes(script: CrashScript, count: int = 6) -> list[int]:
    rng = random.Random(4242)
    probes = list(script.base.codes[:3])
    probes.extend(
        rng.getrandbits(script.code_length) for _ in range(count)
    )
    return probes


def verify_recovery(
    data_dir: Path,
    script: CrashScript,
    *,
    label: str,
    failures: list[str],
    acknowledged: int | None = None,
    expect_fallback: bool = False,
) -> None:
    """Recover ``data_dir`` and compare against the oracle prefix."""
    store = DurableIndexStore(data_dir)
    try:
        recovered = store.open()
    except Exception as error:  # noqa: BLE001 - the claim under test
        failures.append(f"{label}: recovery raised {error!r}")
        return
    finally_seq = store.last_seq
    store.close()
    if acknowledged is not None and finally_seq not in (
        acknowledged,
        acknowledged + 1,
    ):
        failures.append(
            f"{label}: recovered seq {finally_seq}, acknowledged "
            f"{acknowledged} (acknowledged op lost or phantom op)"
        )
        return
    if finally_seq > len(script.ops):
        failures.append(
            f"{label}: recovered seq {finally_seq} beyond the script"
        )
        return
    if expect_fallback and store.recovery_fallbacks == 0:
        failures.append(f"{label}: expected a recovery fallback")
    oracle = build_oracle(script, finally_seq)
    try:
        recovered.check_invariants()
    except Exception as error:  # noqa: BLE001
        failures.append(f"{label}: invariants violated: {error!r}")
        return
    if sorted(recovered.code_id_pairs()) != sorted(
        oracle.code_id_pairs()
    ):
        failures.append(
            f"{label}: recovered pair set differs from oracle at "
            f"seq {finally_seq}"
        )
        return
    flat = recovered.compile()
    for probe in _probes(script):
        for threshold in (0, 2, script.code_length // 6):
            want = sorted(oracle.search(probe, threshold))
            if sorted(recovered.search(probe, threshold)) != want:
                failures.append(
                    f"{label}: node-walk answers differ at "
                    f"probe={probe:#x} t={threshold}"
                )
                return
            if sorted(flat.search(probe, threshold)) != want:
                failures.append(
                    f"{label}: flat-kernel answers differ at "
                    f"probe={probe:#x} t={threshold}"
                )
                return
            if recovered.count_within(probe, threshold) != len(want):
                failures.append(
                    f"{label}: count_within differs at "
                    f"probe={probe:#x} t={threshold}"
                )
                return


def enumerate_steps(script: CrashScript, base_dir: Path) -> list[str]:
    """Dry-run the script to discover its gated I/O step sites."""
    probe = KillPointInjector(None)
    dry_dir = base_dir / "dry-run"
    run_script(dry_dir, script, probe)
    shutil.rmtree(dry_dir, ignore_errors=True)
    return list(probe.sites)


def run_crash_loop(
    base_dir: str | Path,
    *,
    seed: int = 0,
    kill_stride: int = 1,
    torn_variants: tuple[bool, ...] = (False, True),
    corruption_flips: int = 24,
    truncations: int = 8,
    script: CrashScript | None = None,
) -> HarnessReport:
    """Run the full kill-point + corruption crash loop.

    ``kill_stride`` subsamples the kill steps (CI smoke uses a stride;
    the slow lane runs every step).  Every scenario directory is
    removed after its verdict, so disk use stays bounded.
    """
    base_dir = Path(base_dir)
    base_dir.mkdir(parents=True, exist_ok=True)
    if script is None:
        script = make_script(seed=seed)
    report = HarnessReport()
    sites = enumerate_steps(script, base_dir)

    # -- kill-point lane ---------------------------------------------------
    for kill_step in range(0, len(sites), kill_stride):
        for torn in torn_variants:
            label = (
                f"kill@{kill_step}:{sites[kill_step]}"
                f"{':torn' if torn else ''}"
            )
            scenario_dir = base_dir / "scenario"
            shutil.rmtree(scenario_dir, ignore_errors=True)
            injector = KillPointInjector(
                kill_step, seed=seed + kill_step, torn=torn
            )
            acknowledged = None
            try:
                acknowledged = run_script(scenario_dir, script, injector)
                # The chosen step was never reached (ops after the
                # last gate): treat as a clean run.
            except SimulatedCrash as crash:
                acknowledged = _acknowledged_at(
                    script, sites, crash.step
                )
            verify_recovery(
                scenario_dir,
                script,
                label=label,
                failures=report.failures,
                acknowledged=acknowledged,
            )
            shutil.rmtree(scenario_dir, ignore_errors=True)
            report.scenarios += 1
            report.kill_points += 1

    # -- corruption lane ---------------------------------------------------
    clean_dir = base_dir / "clean"
    shutil.rmtree(clean_dir, ignore_errors=True)
    run_script(clean_dir, script)
    rng = random.Random(seed + 77)

    def corrupted(mutate, label: str, **kwargs) -> None:
        scenario_dir = base_dir / "corrupt"
        shutil.rmtree(scenario_dir, ignore_errors=True)
        shutil.copytree(clean_dir, scenario_dir)
        mutate(scenario_dir)
        verify_recovery(
            scenario_dir,
            script,
            label=label,
            failures=report.failures,
            **kwargs,
        )
        shutil.rmtree(scenario_dir, ignore_errors=True)
        report.scenarios += 1
        report.corruptions += 1

    snaps = sorted(clean_dir.glob("snap-*.ha"))
    wals = sorted(clean_dir.glob("wal-*.log"))
    newest_snap = snaps[-1].name
    newest_wal = wals[-1].name
    snap_size = snaps[-1].stat().st_size
    wal_size = wals[-1].stat().st_size

    for flip in range(corruption_flips):
        # Bias flips toward the snapshot (larger target, richer decode
        # surface); the rest hit the active WAL's records.
        if flip % 3 != 2:
            offset = rng.randrange(snap_size)
            corrupted(
                _flip_byte(newest_snap, offset, rng.randrange(1, 256)),
                f"flip:snap@{offset}",
                expect_fallback=True,
            )
        else:
            if wal_size <= 16:
                continue
            offset = rng.randrange(16, wal_size)
            corrupted(
                _flip_byte(newest_wal, offset, rng.randrange(1, 256)),
                f"flip:wal@{offset}",
            )

    rsize = record_size(script.code_length)
    for cut in range(truncations):
        length = rng.randrange(wal_size + 1)
        corrupted(
            _truncate(newest_wal, length), f"truncate:wal@{length}"
        )
        length = rng.randrange(snap_size)
        corrupted(
            _truncate(newest_snap, length),
            f"truncate:snap@{length}",
            expect_fallback=True,
        )
    # Mid-record truncation specifically (a torn final record).
    corrupted(
        _truncate(newest_wal, max(16, wal_size - rsize // 2)),
        "truncate:wal-mid-record",
    )
    corrupted(_delete(newest_snap), "delete:newest-snapshot")
    corrupted(
        _overwrite(newest_snap, b"not a snapshot at all"),
        "garbage:newest-snapshot",
        expect_fallback=True,
    )
    shutil.rmtree(clean_dir, ignore_errors=True)
    return report


def _acknowledged_at(
    script: CrashScript, sites: list[str], step: int
) -> int:
    """Operations acknowledged before gated step ``step`` crashed.

    Each op gates ``wal.record`` then ``wal.fsync``; counting completed
    ``wal.fsync`` gates *before* the crash step undercounts by design —
    an op is acknowledged only after its fsync gate returns, and the
    crash step itself never returned.
    """
    return sum(1 for site in sites[:step] if site == "wal.fsync")


def _flip_byte(name: str, offset: int, delta: int):
    def mutate(directory: Path) -> None:
        path = directory / name
        data = bytearray(path.read_bytes())
        data[offset] ^= delta
        path.write_bytes(bytes(data))

    return mutate


def _truncate(name: str, length: int):
    def mutate(directory: Path) -> None:
        path = directory / name
        path.write_bytes(path.read_bytes()[:length])

    return mutate


def _delete(name: str):
    def mutate(directory: Path) -> None:
        (directory / name).unlink()

    return mutate


def _overwrite(name: str, payload: bytes):
    def mutate(directory: Path) -> None:
        (directory / name).write_bytes(payload)

    return mutate
