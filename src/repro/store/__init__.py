"""Crash-safe durable persistence for HA-Indexes.

The durability subsystem beneath the serving planes:

* :mod:`repro.store.snapshot` — versioned, CRC-checksummed,
  memory-mappable snapshots of the compiled flat kernel;
* :mod:`repro.store.wal` — a write-ahead log of H-Insert/H-Delete
  records, appended before mutations touch the in-memory index;
* :mod:`repro.store.store` — :class:`DurableIndexStore`, rotating
  snapshot generations and recovering newest-valid + WAL replay;
* :mod:`repro.store.faults` / :mod:`repro.store.harness` — the
  kill-point injector and the crash-loop harness proving recovery
  always matches a never-crashed oracle.

See ``docs/persistence.md`` for the file formats, the rotation/fsync
protocol, and the recovery state machine.
"""

from __future__ import annotations

from repro.store.faults import KillPointInjector, SimulatedCrash
from repro.store.snapshot import (
    SNAP_MAGIC,
    SNAP_VERSION,
    LazySnapshotIndex,
    SnapshotView,
    decode_dynamic,
    lazy_decode,
    load_flat,
    read_snapshot,
    write_snapshot,
)
from repro.store.store import DEFAULT_RETAIN, DurableIndexStore, StoreStats
from repro.store.wal import (
    OP_DELETE,
    OP_INSERT,
    WalRecord,
    WalScan,
    WalWriter,
    read_wal,
)

__all__ = [
    "DEFAULT_RETAIN",
    "DurableIndexStore",
    "StoreStats",
    "KillPointInjector",
    "SimulatedCrash",
    "SNAP_MAGIC",
    "SNAP_VERSION",
    "SnapshotView",
    "write_snapshot",
    "read_snapshot",
    "load_flat",
    "decode_dynamic",
    "lazy_decode",
    "LazySnapshotIndex",
    "OP_INSERT",
    "OP_DELETE",
    "WalRecord",
    "WalScan",
    "WalWriter",
    "read_wal",
]
