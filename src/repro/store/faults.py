"""Kill-point injection for the durable store.

The recovery harness proves crash safety by *simulating* process death
at every point where the store touches the filesystem: each write,
fsync, rename and unlink site calls :meth:`KillPointInjector.gate`
(or :meth:`write_gate` for payload writes) with a stable site name.
An armed injector counts the steps and raises :class:`SimulatedCrash`
at exactly one of them, optionally after flushing a seeded *partial*
prefix of the payload — a torn write.

Determinism: a given ``(script seed, kill_step)`` pair always dies at
the same site with the same torn prefix, so every scenario in the
crash loop is reproducible in isolation.
"""

from __future__ import annotations

import random


class SimulatedCrash(BaseException):
    """Process death injected at a store I/O site.

    Derives from :class:`BaseException` so production ``except
    Exception`` cleanup paths in the store cannot accidentally swallow
    the simulated death — exactly like a real ``SIGKILL`` would not be
    caught.  The harness catches it explicitly.
    """

    def __init__(self, site: str, step: int) -> None:
        super().__init__(f"simulated crash at {site} (step {step})")
        self.site = site
        self.step = step


class KillPointInjector:
    """Counts I/O steps and crashes at a chosen one.

    Args:
        kill_step: 0-based step index to die at; ``None`` never crashes
            (used for the enumeration dry run that discovers how many
            steps a script performs).
        seed: drives the torn-prefix length for payload writes.
        torn: when dying inside :meth:`write_gate`, flush a random
            prefix of the payload first (a torn write) instead of
            writing nothing.

    Attributes:
        steps: I/O steps gated so far.
        sites: site names in gate order (the dry run reads this to
            report coverage of write/fsync/rename/unlink sites).
    """

    def __init__(
        self,
        kill_step: int | None = None,
        *,
        seed: int = 0,
        torn: bool = False,
    ) -> None:
        self.kill_step = kill_step
        self.torn = torn
        self.steps = 0
        self.sites: list[str] = []
        self._rng = random.Random(seed)

    def gate(self, site: str) -> None:
        """One non-payload I/O step (fsync, rename, unlink)."""
        step = self.steps
        self.steps += 1
        self.sites.append(site)
        if self.kill_step is not None and step == self.kill_step:
            raise SimulatedCrash(site, step)

    def write_gate(self, site: str, stream, payload: bytes) -> None:
        """One payload write; dying here may leave a torn prefix."""
        step = self.steps
        self.steps += 1
        self.sites.append(site)
        if self.kill_step is not None and step == self.kill_step:
            if self.torn and payload:
                prefix = self._rng.randrange(0, len(payload) + 1)
                stream.write(payload[:prefix])
                stream.flush()
            raise SimulatedCrash(site, step)
        stream.write(payload)
