"""Generation-based durable store: snapshots + WAL + recovery.

A :class:`DurableIndexStore` owns one directory::

    snap-00000001.ha    snapshot generation 1
    wal-00000001.log    mutations logged since generation 1
    snap-00000002.ha    ...
    wal-00000002.log

Write path: every H-Insert/H-Delete is appended to the active WAL
*before* it touches the in-memory index (write-ahead rule), and
:meth:`snapshot` rotates a new generation — snapshot file first (atomic
temp-fsync-rename), then a fresh WAL, then pruning of generations
beyond the retention window.  Sequence numbers are global: generation
``g``'s snapshot records the last sequence folded into it, so recovery
knows exactly which WAL suffix still applies.

Recovery (:meth:`open`) walks snapshot generations newest-first until
one validates and decodes, counts a ``recovery_fallback`` for each one
skipped, replays every on-disk WAL from the chosen generation onward
(skipping already-folded sequences, stopping at the first gap or torn
tail), and resumes logging.  When recovery had to fall back past the
newest generation it immediately writes a repair generation, so the
corrupt artifacts are superseded rather than trusted again.  Only when
*no* generation can be decoded does it raise
:class:`~repro.core.errors.StoreCorruptionError`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import (
    IndexStateError,
    StoreCorruptionError,
    StoreError,
)
from repro.obs import REGISTRY
from repro.obs.trace import trace_span
from repro.store.faults import KillPointInjector
from repro.store.format import remove_stray_tmp
from repro.store.snapshot import (
    lazy_decode,
    read_snapshot,
    write_snapshot,
)
from repro.store.wal import (
    OP_DELETE,
    OP_INSERT,
    WalWriter,
    read_wal,
)

#: Snapshot generations kept on disk (the newest plus fallbacks).
DEFAULT_RETAIN = 2

_SNAP_RE = re.compile(r"^snap-(\d{8})\.ha$")


@dataclass(frozen=True, slots=True)
class StoreStats:
    """Durability counters at one point in time.

    ``wal_replayed`` / ``replay_skipped`` / ``recovery_fallbacks``
    describe the most recent :meth:`DurableIndexStore.open`;
    ``wal_appends`` and ``snapshots_written`` accumulate over the
    store's lifetime in this process.
    """

    wal_appends: int
    wal_replayed: int
    replay_skipped: int
    snapshots_written: int
    snapshot_generations: int
    recovery_fallbacks: int
    last_seq: int
    generation: int

    @classmethod
    def merge(cls, parts: list["StoreStats"]) -> "StoreStats":
        """Aggregate per-shard stats into one block (sums; max gen)."""
        if not parts:
            return cls(0, 0, 0, 0, 0, 0, 0, 0)
        return cls(
            wal_appends=sum(p.wal_appends for p in parts),
            wal_replayed=sum(p.wal_replayed for p in parts),
            replay_skipped=sum(p.replay_skipped for p in parts),
            snapshots_written=sum(p.snapshots_written for p in parts),
            snapshot_generations=sum(
                p.snapshot_generations for p in parts
            ),
            recovery_fallbacks=sum(p.recovery_fallbacks for p in parts),
            last_seq=sum(p.last_seq for p in parts),
            generation=max(p.generation for p in parts),
        )

    def render(self) -> str:
        return (
            f"  store:    gen {self.generation} "
            f"({self.snapshot_generations} on disk), seq {self.last_seq}, "
            f"{self.wal_appends} WAL appends, "
            f"{self.wal_replayed} replayed "
            f"({self.replay_skipped} skipped), "
            f"{self.recovery_fallbacks} recovery fallbacks"
        )

    def publish(self, registry=None) -> None:
        """Fold the snapshot into a metrics registry as gauges."""
        if registry is None:
            from repro.obs import REGISTRY as registry
        if not registry.enabled:
            return
        totals = {
            "store_wal_appends": self.wal_appends,
            "store_wal_replayed": self.wal_replayed,
            "store_replay_skipped": self.replay_skipped,
            "store_snapshots_written": self.snapshots_written,
            "store_snapshot_generations": self.snapshot_generations,
            "store_recovery_fallbacks": self.recovery_fallbacks,
            "store_last_seq": self.last_seq,
            "store_generation": self.generation,
        }
        for name, value in totals.items():
            registry.gauge(name).set(value)


class DurableIndexStore:
    """Crash-safe persistence for one :class:`DynamicHAIndex`.

    The store is not thread-safe by itself; the owning service serializes
    access under its index mutex.

    Args:
        data_dir: directory holding this index's generations.
        retain: snapshot generations kept on disk (>= 1).
        fsync: fsync files and directories at every commit point.
            ``False`` trades power-loss durability for speed; process
            crashes still lose nothing.
        injector: optional kill-point injector (the recovery harness).
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        retain: int = DEFAULT_RETAIN,
        fsync: bool = True,
        injector: KillPointInjector | None = None,
    ) -> None:
        if retain < 1:
            raise StoreError("retain must be >= 1")
        self.data_dir = Path(data_dir)
        self.retain = retain
        self.fsync = fsync
        self.injector = injector
        self.code_length: int | None = None
        self._writer: WalWriter | None = None
        self._last_seq = 0
        self._folded_seq = 0
        self._generation = 0
        self.wal_appends = 0
        self.wal_replayed = 0
        self.replay_skipped = 0
        self.snapshots_written = 0
        self.recovery_fallbacks = 0

    # -- discovery ---------------------------------------------------------

    @staticmethod
    def exists(data_dir: str | Path) -> bool:
        """Does ``data_dir`` hold at least one snapshot generation?"""
        path = Path(data_dir)
        if not path.is_dir():
            return False
        return any(
            _SNAP_RE.match(entry.name) for entry in path.iterdir()
        )

    def _snap_path(self, generation: int) -> Path:
        return self.data_dir / f"snap-{generation:08d}.ha"

    def _wal_path(self, generation: int) -> Path:
        return self.data_dir / f"wal-{generation:08d}.log"

    def _snapshot_generations(self) -> list[int]:
        if not self.data_dir.is_dir():
            return []
        gens = []
        for entry in self.data_dir.iterdir():
            match = _SNAP_RE.match(entry.name)
            if match:
                gens.append(int(match.group(1)))
        return sorted(gens)

    def _wal_generations(self) -> list[int]:
        if not self.data_dir.is_dir():
            return []
        gens = []
        for entry in self.data_dir.iterdir():
            match = re.match(r"^wal-(\d{8})\.log$", entry.name)
            if match:
                gens.append(int(match.group(1)))
        return sorted(gens)

    # -- lifecycle ---------------------------------------------------------

    def initialize(self, index: DynamicHAIndex) -> None:
        """Create generation 1 from ``index`` (must be a fresh dir)."""
        if self._snapshot_generations():
            raise StoreError(
                f"store at {self.data_dir} is already initialized"
            )
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.code_length = index.code_length
        self._last_seq = 0
        self._write_generation(index, 1)

    def open(self) -> DynamicHAIndex:
        """Recover the index: newest valid snapshot + WAL replay.

        Never raises on torn or corrupt artifacts as long as one
        snapshot generation decodes; raises
        :class:`~repro.core.errors.StoreCorruptionError` only when none
        does.
        """
        with trace_span("store.recover", dir=str(self.data_dir)):
            return self._recover()

    def open_readonly(self) -> DynamicHAIndex:
        """Recover the index without acquiring the log: a reader's open.

        Same newest-valid-snapshot + WAL-replay recovery as
        :meth:`open`, but the store never writes — no WAL resume, no
        repair generation after a fallback, no stray-tmp cleanup.  That
        makes it safe to call from *another process* while a writer
        owns the directory: the parallel shard executor's worker
        processes warm-start each shard this way (the snapshot arrays
        arrive as a zero-copy memory map, so spawning a worker never
        re-pickles an index), and the WAL writer flushes every record
        before the owning service applies the mutation, so a reader
        that replays up to a sequence number the writer announced is
        guaranteed to see it.

        The returned index is a plain in-memory recovery — mutations
        applied to it affect neither the store nor the writer.  Calling
        :meth:`append_insert` / :meth:`append_delete` on a read-only
        open raises :class:`~repro.core.errors.StoreError` (there is no
        active WAL).
        """
        with trace_span(
            "store.recover", dir=str(self.data_dir), readonly=True
        ):
            return self._recover(readonly=True)

    def _recover(self, readonly: bool = False) -> DynamicHAIndex:
        if self.data_dir.is_dir() and not readonly:
            remove_stray_tmp(self.data_dir)
        generations = self._snapshot_generations()
        if not generations:
            raise StoreCorruptionError(
                f"no snapshot generations in {self.data_dir}"
            )
        self.wal_replayed = 0
        self.replay_skipped = 0
        self.recovery_fallbacks = 0
        index = None
        chosen = 0
        newest = generations[-1]
        for generation in reversed(generations):
            try:
                view = read_snapshot(self._snap_path(generation))
                # The checksum pass plus the kernel rebuild inside
                # lazy_decode validate the generation; the Python
                # node-graph decode is deferred — the returned index
                # serves reads from the mapped kernel and materializes
                # the graph only when WAL replay or a later mutation
                # needs it.
                index = lazy_decode(view)
            except Exception:  # noqa: BLE001 - any corrupt generation
                self.recovery_fallbacks += 1
                if REGISTRY.enabled:
                    REGISTRY.counter(
                        "store_recovery_fallbacks_total",
                        "snapshot generations skipped during recovery",
                    ).inc()
                continue
            chosen = generation
            applied = view.last_seq
            break
        if index is None:
            raise StoreCorruptionError(
                f"no recoverable snapshot generation in {self.data_dir} "
                f"(tried {len(generations)})"
            )
        self.code_length = index.code_length
        self._folded_seq = view.last_seq
        applied = self._replay(index, chosen, applied)
        self._last_seq = applied
        fell_back = chosen != newest
        if readonly:
            # A reader never mutates the directory: no repair
            # generation after a fallback and no WAL resume.  The
            # writer that owns the store repairs on its own next open.
            self._generation = chosen
        elif fell_back:
            # The newest artifacts are not trustworthy: supersede them
            # with a repair generation reflecting the recovered state.
            self._write_generation(index, max(generations) + 1)
        else:
            self._resume_wal(chosen, applied)
            self._generation = chosen
        if REGISTRY.enabled:
            REGISTRY.counter(
                "store_wal_replayed_total",
                "WAL records replayed during recovery",
            ).inc(self.wal_replayed)
            REGISTRY.gauge("store_snapshot_generations").set(
                len(self._snapshot_generations())
            )
        return index

    def _replay(
        self, index: DynamicHAIndex, chosen: int, applied: int
    ) -> int:
        """Apply WAL records past ``applied`` from generation ``chosen``."""
        assert self.code_length is not None
        for generation in self._wal_generations():
            if generation < chosen:
                continue
            scan = read_wal(
                self._wal_path(generation), self.code_length
            )
            for record in scan.records:
                if record.seq <= applied:
                    continue
                if record.seq != applied + 1:
                    return applied
                try:
                    if record.op == OP_INSERT:
                        index.insert(record.code, record.tuple_id)
                    else:
                        index.delete(record.code, record.tuple_id)
                except IndexStateError:
                    self.replay_skipped += 1
                applied = record.seq
                self.wal_replayed += 1
            if scan.torn:
                break
        return applied

    def _resume_wal(self, generation: int, applied: int) -> None:
        assert self.code_length is not None
        path = self._wal_path(generation)
        if self._writer is not None:
            self._writer.close()
        if path.exists():
            scan = read_wal(path, self.code_length)
            self._writer = WalWriter.resume(
                path,
                self.code_length,
                scan,
                applied + 1,
                fsync=self.fsync,
                injector=self.injector,
            )
        else:
            self._writer = WalWriter.create(
                path,
                self.code_length,
                applied + 1,
                fsync=self.fsync,
                injector=self.injector,
            )

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    def set_injector(self, injector: KillPointInjector | None) -> None:
        """Arm (or disarm) kill-point injection, including the live WAL."""
        self.injector = injector
        if self._writer is not None:
            self._writer.injector = injector

    # -- write path --------------------------------------------------------

    @property
    def last_seq(self) -> int:
        return self._last_seq

    @property
    def wal_tail(self) -> int:
        """Logged mutations not yet folded into a snapshot generation.

        A clean shutdown can fold them (one :meth:`snapshot` call) so
        the next :meth:`open` recovers with an empty replay tail and
        never has to materialize the Python node graph.
        """
        return self._last_seq - self._folded_seq

    @property
    def generation(self) -> int:
        return self._generation

    def _require_writer(self) -> WalWriter:
        if self._writer is None:
            raise StoreError(
                "store has no active WAL; call initialize() or open()"
            )
        return self._writer

    def append_insert(self, code: int, tuple_id: int) -> int:
        """Log one H-Insert ahead of applying it; returns its seq."""
        return self._append(OP_INSERT, code, tuple_id)

    def append_delete(self, code: int, tuple_id: int) -> int:
        """Log one H-Delete ahead of applying it; returns its seq."""
        return self._append(OP_DELETE, code, tuple_id)

    def _append(self, op: int, code: int, tuple_id: int) -> int:
        writer = self._require_writer()
        seq = writer.append(op, code, tuple_id)
        self._last_seq = seq
        self.wal_appends += 1
        if REGISTRY.enabled:
            REGISTRY.counter(
                "store_wal_appends_total",
                "mutations logged to the write-ahead log",
            ).inc()
        return seq

    def snapshot(self, index: DynamicHAIndex) -> int:
        """Rotate a new generation from ``index``; returns its number.

        The caller must pass the exact in-memory state every logged
        mutation up to :attr:`last_seq` has been applied to (the
        services call this under their index mutex).
        """
        generations = self._snapshot_generations()
        if not generations:
            raise StoreError(
                f"store at {self.data_dir} is not initialized"
            )
        with trace_span("store.snapshot", seq=self._last_seq):
            return self._write_generation(index, max(generations) + 1)

    def _write_generation(
        self, index: DynamicHAIndex, generation: int
    ) -> int:
        write_snapshot(
            self._snap_path(generation),
            index,
            last_seq=self._last_seq,
            fsync=self.fsync,
            injector=self.injector,
        )
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self._writer = WalWriter.create(
            self._wal_path(generation),
            index.code_length,
            self._last_seq + 1,
            fsync=self.fsync,
            injector=self.injector,
        )
        self._generation = generation
        self._folded_seq = self._last_seq
        self.snapshots_written += 1
        self.code_length = index.code_length
        self._prune(generation)
        if REGISTRY.enabled:
            REGISTRY.counter(
                "store_snapshots_total", "snapshot generations written"
            ).inc()
            REGISTRY.gauge("store_snapshot_generations").set(
                len(self._snapshot_generations())
            )
        return generation

    def _prune(self, newest: int) -> None:
        keep = newest - self.retain
        for generation in self._snapshot_generations():
            if generation > keep:
                continue
            for path in (
                self._snap_path(generation),
                self._wal_path(generation),
            ):
                if self.injector is not None:
                    self.injector.gate(f"prune.unlink:{path.name}")
                path.unlink(missing_ok=True)

    # -- observability -----------------------------------------------------

    def stats(self) -> StoreStats:
        return StoreStats(
            wal_appends=self.wal_appends,
            wal_replayed=self.wal_replayed,
            replay_skipped=self.replay_skipped,
            snapshots_written=self.snapshots_written,
            snapshot_generations=len(self._snapshot_generations()),
            recovery_fallbacks=self.recovery_fallbacks,
            last_seq=self._last_seq,
            generation=self._generation,
        )
