"""Online query serving over the HA-Index family.

The paper motivates the Dynamic HA-Index's H-Insert/H-Delete maintenance
(Algorithm 2) with online workloads; this package is the serving layer
that story implies: a long-lived, thread-safe query server with
micro-batching, an epoch-keyed LRU result cache, copy-on-swap index
refresh, and admission control with explicit backpressure.  See
``docs/service.md`` for the architecture.
"""

from repro.core.errors import (
    PoolTimeoutError,
    ReplicaUnavailableError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    ServiceTimeoutError,
)
from repro.service.admission import AdmissionQueue
from repro.service.executor import (
    POOL_KINDS,
    ProcessShardExecutor,
    SerialExecutor,
    ShardExecutor,
    ShardTask,
    ThreadShardExecutor,
    make_executor,
)
from repro.service.batching import (
    MicroBatchScheduler,
    QueryRequest,
    QueryTicket,
)
from repro.service.cache import MISS, ResultCache
from repro.service.planner import (
    ScatterGatherPlanner,
    ShardPlan,
    min_hamming_to_gray_range,
)
from repro.service.server import (
    HammingQueryService,
    QUERY_KINDS,
    ServedResult,
)
from repro.service.sharded import (
    ReplicaFaultPlan,
    ShardStats,
    ShardedQueryService,
)
from repro.service.stats import CacheStats, ServiceAccounting, ServiceStats

__all__ = [
    "AdmissionQueue",
    "CacheStats",
    "HammingQueryService",
    "MISS",
    "MicroBatchScheduler",
    "POOL_KINDS",
    "PoolTimeoutError",
    "ProcessShardExecutor",
    "QUERY_KINDS",
    "QueryRequest",
    "QueryTicket",
    "ReplicaFaultPlan",
    "ReplicaUnavailableError",
    "ResultCache",
    "ScatterGatherPlanner",
    "SerialExecutor",
    "ShardExecutor",
    "ShardPlan",
    "ShardStats",
    "ShardTask",
    "ShardedQueryService",
    "ServedResult",
    "ServiceAccounting",
    "ServiceClosedError",
    "ServiceError",
    "ServiceOverloadError",
    "ServiceStats",
    "ServiceTimeoutError",
    "ThreadShardExecutor",
    "make_executor",
    "min_hamming_to_gray_range",
]
