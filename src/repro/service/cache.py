"""Bounded LRU result cache keyed by (kind, query, param, epoch).

The epoch is the last key element and comes from the service's mutation
counter, so a cache entry is *implicitly invalidated* by any index
mutation: the next lookup for the same query carries the new epoch,
misses, and recomputes, while the stale entry ages out of the LRU order
(or is swept eagerly by :meth:`ResultCache.purge_stale`).  This is the
classic epoch-validation scheme serving layers use instead of explicit
invalidation broadcasts.

Cached values are treated as immutable (the server stores tuples), so a
single entry can be handed to any number of concurrent readers.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable

from repro.core.errors import InvalidParameterError
from repro.service.stats import CacheStats

#: Returned by :meth:`ResultCache.get` on a miss, distinguishing a miss
#: from a cached falsy value (``()``/``False`` are legitimate results).
MISS = object()


class ResultCache:
    """Thread-safe bounded LRU with per-request hit/miss accounting.

    Args:
        capacity: maximum entries kept; ``0`` disables caching entirely
            (every lookup misses, nothing is stored).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise InvalidParameterError("cache capacity must be >= 0")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable, weight: int = 1) -> object:
        """The cached value, or :data:`MISS`.

        ``weight`` is how many coalesced query requests this lookup
        answers at once — the micro-batcher deduplicates identical
        queries before probing, and hit/miss tallies count *requests*
        so the reported hit rate reflects request traffic.
        """
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += weight
                return self._entries[key]
            self._misses += weight
            return MISS

    def put(self, key: Hashable, value: object) -> None:
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def purge_stale(self, current_epoch: int) -> int:
        """Eagerly drop entries from epochs before ``current_epoch``.

        Optional housekeeping: stale entries are already unreachable
        (lookups carry the current epoch), but a write-heavy workload can
        fill the LRU with dead epochs and evict live entries; sweeping
        reclaims that capacity.  Returns the number of entries dropped.
        """
        with self._lock:
            stale = [
                key
                for key in self._entries
                if key[-1] < current_epoch  # epoch is the last key element
            ]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self._capacity,
            )
