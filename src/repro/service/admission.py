"""Admission control: a bounded queue with reject-and-retry-after.

Overload must degrade gracefully: instead of letting the backlog (and
memory) grow without bound, :class:`AdmissionQueue` holds at most
``capacity`` waiting queries and *rejects* the rest at submission time
with :class:`~repro.core.errors.ServiceOverloadError`, carrying a
retry-after estimate derived from the current depth and an exponential
moving average of recent per-query service time.  Producers therefore
never block — backpressure is explicit, and a saturated service keeps
serving at its own pace rather than OOMing.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Generic, TypeVar

from repro.core.errors import (
    InvalidParameterError,
    ServiceClosedError,
    ServiceOverloadError,
)

T = TypeVar("T")

#: Smoothing factor of the per-query service-time EWMA.
EWMA_ALPHA = 0.2
#: Retry-after floor (seconds) so callers always back off a little.
MIN_RETRY_AFTER = 0.005


class AdmissionQueue(Generic[T]):
    """Bounded FIFO between submitters and the micro-batch workers.

    Args:
        capacity: maximum queries waiting at once.
        workers_hint: worker-pool size, used to scale the retry-after
            estimate (a deeper pool drains the backlog faster).
    """

    def __init__(self, capacity: int, workers_hint: int = 1) -> None:
        if capacity < 1:
            raise InvalidParameterError("queue capacity must be positive")
        if workers_hint < 1:
            raise InvalidParameterError("workers_hint must be positive")
        self._capacity = capacity
        self._workers_hint = workers_hint
        self._items: deque[T] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._service_time_ewma = 0.0

    @property
    def capacity(self) -> int:
        return self._capacity

    def depth(self) -> int:
        with self._lock:
            return len(self._items)

    # -- producer side -----------------------------------------------------

    def offer(self, item: T) -> None:
        """Admit ``item`` or raise; never blocks.

        Raises:
            ServiceClosedError: the service is shutting down.
            ServiceOverloadError: the queue is full; carries the
                retry-after estimate.
        """
        with self._lock:
            if self._closed:
                raise ServiceClosedError("query service is closed")
            if len(self._items) >= self._capacity:
                retry_after = self._retry_after_locked()
                raise ServiceOverloadError(
                    f"admission queue full ({self._capacity} waiting); "
                    f"retry in {retry_after:.3f}s",
                    retry_after_seconds=retry_after,
                )
            self._items.append(item)
            self._not_empty.notify()

    def _retry_after_locked(self) -> float:
        backlog_seconds = (
            len(self._items)
            * self._service_time_ewma
            / self._workers_hint
        )
        return max(MIN_RETRY_AFTER, backlog_seconds)

    def retry_after(self) -> float:
        """Current backlog-drain estimate in seconds."""
        with self._lock:
            return self._retry_after_locked()

    def note_service_time(self, seconds_per_query: float) -> None:
        """Feed the EWMA with an observed per-query service time."""
        if seconds_per_query < 0:
            return
        with self._lock:
            if self._service_time_ewma == 0.0:
                self._service_time_ewma = seconds_per_query
            else:
                self._service_time_ewma += EWMA_ALPHA * (
                    seconds_per_query - self._service_time_ewma
                )

    # -- consumer side -----------------------------------------------------

    def take(self, timeout: float | None = None) -> T | None:
        """Next item, blocking up to ``timeout`` seconds.

        Returns ``None`` on timeout, or immediately once the queue is
        closed *and* drained — the worker-exit signal.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None
            return self._items.popleft()

    def take_nowait(self) -> T | None:
        """Next item if one is immediately available, else ``None``."""
        with self._lock:
            return self._items.popleft() if self._items else None

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Stop admitting; queued items remain takeable (drain)."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed
