"""Sharded scatter-gather serving over Gray-range partitions.

:class:`ShardedQueryService` is the scale-out sibling of
:class:`~repro.service.server.HammingQueryService`: instead of one
monolithic index it serves a dataset split into Gray-rank shards — the
very partitioning the paper's Section 5.1 uses to balance MapReduce
workers (sampled equi-depth pivots over the Gray order).  Each shard
holds a :class:`~repro.core.dynamic_ha.DynamicHAIndex` primary plus
optional replicas, and every query runs through a scatter-gather plan:

1. **Prune.**  The :class:`~repro.service.planner.ScatterGatherPlanner`
   computes, per shard, an exact lower bound on the Hamming distance
   between the query and *any* code the shard can hold (a digit DP over
   the shard's Gray-rank range).  Shards whose bound exceeds the
   threshold are skipped; when nothing can be skipped the plan falls
   back to a broadcast.
2. **Scatter.**  The surviving shard operations run through a pluggable
   executor (:mod:`repro.service.executor`): inline (``pool="serial"``),
   a persistent thread pool exploiting GIL release in the kernel sweeps
   (``pool="thread"``), or spawn-once worker processes that warm-start
   each shard zero-copy from memory-mapped snapshots
   (``pool="process"``).  Replica choice is load-balanced
   (least-outstanding-requests) with seeded failover and hedged
   dispatch reusing the PR 1 chaos machinery
   (:class:`~repro.mapreduce.faults.ChaosPolicy`).
3. **Gather.**  Partial results merge deterministically in shard order
   regardless of completion order: ``select`` unions and id-sorts,
   ``probe`` ORs the per-shard membership answers, ``knn`` runs the
   paper's expanding-threshold loop over the pruned scatter and keeps
   the global top-``k``, and :meth:`join` streams an outer code set
   through per-shard batch probes.  Every pool backend returns results
   *and op accounting* byte-identical to the serial walk.

Because every code lives in exactly one shard, gathered results equal
the single-index answers *exactly* (asserted across shard counts by
``tests/test_sharded_service.py``).

The serving stack around the scatter core is the same as the
single-index service — bounded admission, micro-batching with in-batch
dedup, and an LRU result cache — but the cache is *shard-aware*: a
cached entry is keyed by the epochs of the shards its plan contacted,
so a write routed to a pruned shard leaves it valid.  That is sound
because plans are recomputed per lookup: if an insert could add a
match for a cached query, it necessarily widens the owning shard's
occupied Gray range until the planner stops pruning it, which changes
the key and forces a miss.

Observability: per-shard ``shard.dispatch``/``shard.search`` spans
under a ``shard.scatter`` root (captured detached on pool threads and
worker processes, re-attached in deterministic task order), a
``shard.gather`` span over each merge, and ``shard_pruned_total`` /
``shards_contacted_total`` / ``shards_contacted`` / ``shard_pool_*``
metrics (plus failover/hedge counters) in the process registry.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Sequence

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.engines import get_engine
from repro.core.errors import (
    CodeLengthError,
    IndexStateError,
    InvalidParameterError,
    ReplicaUnavailableError,
    ServiceClosedError,
    StoreError,
)
from repro.core.knn import DEFAULT_INITIAL_THRESHOLD
from repro.distributed.pivots import select_pivots, split_by_pivots
from repro.mapreduce.faults import ChaosPolicy, hash_unit
from repro.obs import REGISTRY
from repro.obs.trace import trace, trace_span
from repro.service.admission import AdmissionQueue
from repro.service.batching import (
    MicroBatchScheduler,
    QueryRequest,
    QueryTicket,
)
from repro.service.cache import MISS, ResultCache
from repro.service.executor import (
    POOL_KINDS,
    ShardTask,
    default_pool_workers,
    make_executor,
)
from repro.service.planner import ScatterGatherPlanner, ShardPlan
from repro.service.server import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_MAX_BATCH,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    QUERY_KINDS,
    ServedResult,
    _deadline_error,
)
from repro.service.stats import ServiceAccounting, ServiceStats

import numpy as np

_NUMPY_SORT_CUTOVER = 64


def _sorted_ids(ids) -> tuple[int, ...]:
    """Ascending tuple of ``ids`` — numpy-sorted past a small cutover.

    The gather merge is the one cost the sharded read path pays that a
    single index never does: per-shard hits arrive in shard-local order
    and must fold into one canonical ascending tuple.  For the large
    result sets that make sharding worthwhile, sorting an ``int64``
    buffer is several times faster than ``sorted`` on a Python list and
    yields the exact same tuple of Python ints (``tolist`` converts
    back), so cached and differential values are unchanged.
    """
    if len(ids) < _NUMPY_SORT_CUTOVER:
        return tuple(sorted(ids))
    buffer = np.asarray(ids, dtype=np.int64)
    buffer.sort()
    return tuple(buffer.tolist())


def _merge_sorted_ids(chunks) -> tuple[int, ...]:
    """Merge per-shard id chunks into one ascending tuple.

    Chunks may be ``int64`` arrays (the dha engine's
    ``search_batch_arrays`` fast path) or plain id lists (every other
    engine); both merge through one C-speed concatenate + sort, with
    Python ints materialized exactly once, after the merge.
    """
    total = sum(len(chunk) for chunk in chunks)
    if total < _NUMPY_SORT_CUTOVER:
        merged: list[int] = []
        for chunk in chunks:
            if isinstance(chunk, np.ndarray):
                merged.extend(chunk.tolist())
            else:
                merged.extend(chunk)
        return tuple(sorted(merged))
    arrays = [np.asarray(chunk, dtype=np.int64) for chunk in chunks]
    buffer = (
        np.concatenate(arrays) if len(arrays) > 1 else arrays[0].copy()
    )
    buffer.sort()
    return tuple(buffer.tolist())


class ReplicaFaultPlan:
    """Seeded replica-fault oracle, mapped from the PR 1 chaos model.

    Reuses :class:`~repro.mapreduce.faults.ChaosPolicy` fields:

    * ``crash_prob`` — probability a given replica is unavailable for a
      given dispatch (triggers failover to the next replica);
    * ``straggler_prob`` — probability the primary is slow for a given
      dispatch (triggers a hedged dispatch to the first replica);
    * ``slow_workers`` — shard ids whose primary *always* straggles.

    Every decision is a pure function of the policy seed and the
    dispatch coordinates — independent of worker scheduling, so chaos
    runs are reproducible exactly like the MapReduce fault plans.
    """

    def __init__(self, policy: ChaosPolicy) -> None:
        self.policy = policy

    def replica_down(
        self, shard: int, replica: int, *context: object
    ) -> bool:
        """Is this replica unavailable for this dispatch?"""
        if not self.policy.crash_prob:
            return False
        return (
            hash_unit(
                self.policy.seed, "replica-down", shard, replica, *context
            )
            < self.policy.crash_prob
        )

    def primary_straggles(self, shard: int, *context: object) -> bool:
        """Should this dispatch hedge away from the shard's primary?"""
        if shard in self.policy.slow_workers:
            return True
        if not self.policy.straggler_prob:
            return False
        return (
            hash_unit(self.policy.seed, "straggler", shard, 0, *context)
            < self.policy.straggler_prob
        )


class _Shard:
    """One Gray-range shard: replica set + its own epoch."""

    __slots__ = ("sid", "replicas", "epoch")

    def __init__(
        self, sid: int, replicas: list[DynamicHAIndex]
    ) -> None:
        self.sid = sid
        self.replicas = replicas
        self.epoch = 0

    @property
    def primary(self) -> DynamicHAIndex:
        return self.replicas[0]


@dataclass(frozen=True, slots=True)
class ShardStats:
    """Scatter-gather accounting at one point in time.

    ``planned`` counts queries that actually executed a scatter (cache
    hits never scatter); ``shards_contacted``/``shards_pruned`` sum
    over those plans, so ``pruning_ratio`` is the fraction of
    (query, shard) visits the Gray-range bound eliminated.
    """

    num_shards: int
    replication: int
    planned: int
    shards_contacted: int
    shards_pruned: int
    broadcasts: int
    failovers: int
    hedges: int
    shard_sizes: tuple[int, ...]
    shard_epochs: tuple[int, ...]
    pool: str = "serial"
    pool_workers: int = 0
    pool_tasks: int = 0
    pool_fallbacks: int = 0
    pool_timeouts: int = 0
    pool_busy_seconds: float = 0.0
    pool_critical_seconds: float = 0.0

    @property
    def mean_contacted(self) -> float:
        return self.shards_contacted / self.planned if self.planned else 0.0

    @property
    def pruning_ratio(self) -> float:
        total = self.planned * self.num_shards
        return self.shards_pruned / total if total else 0.0

    def render(self) -> str:
        """Human-readable block (CLI ``serve-sharded`` prints this)."""
        return "\n".join(
            [
                "shard stats",
                f"  topology: {self.num_shards} shards x "
                f"{self.replication} replicas, "
                f"sizes {list(self.shard_sizes)}",
                f"  scatter:  {self.planned} planned queries, "
                f"mean {self.mean_contacted:.2f} shards contacted, "
                f"{self.broadcasts} broadcasts",
                f"  pruning:  {self.shards_pruned} shard visits avoided "
                f"({self.pruning_ratio * 100.0:.1f}% of "
                f"{self.planned * self.num_shards})",
                f"  replicas: {self.failovers} failovers, "
                f"{self.hedges} hedged dispatches",
                f"  pool:     {self.pool} x {self.pool_workers}, "
                f"{self.pool_tasks} tasks, "
                f"{self.pool_fallbacks} fallbacks, "
                f"{self.pool_timeouts} timeouts",
                f"  seconds:  {self.pool_busy_seconds:.3f} busy, "
                f"{self.pool_critical_seconds:.3f} critical path",
                f"  epochs:   {list(self.shard_epochs)}",
            ]
        )

    def publish(self, registry=None) -> None:
        """Fold the snapshot into a metrics registry as gauges."""
        if registry is None:
            from repro.obs import REGISTRY as registry
        if not registry.enabled:
            return
        totals = {
            "shard_service_shards": self.num_shards,
            "shard_service_replication": self.replication,
            "shard_service_planned": self.planned,
            "shard_service_contacted": self.shards_contacted,
            "shard_service_pruned": self.shards_pruned,
            "shard_service_broadcasts": self.broadcasts,
            "shard_service_failovers": self.failovers,
            "shard_service_hedges": self.hedges,
            "shard_pool_workers": self.pool_workers,
            "shard_pool_tasks": self.pool_tasks,
            "shard_pool_fallbacks": self.pool_fallbacks,
            "shard_pool_timeouts": self.pool_timeouts,
            "shard_pool_busy_seconds": self.pool_busy_seconds,
            "shard_pool_critical_seconds": self.pool_critical_seconds,
        }
        for name, value in totals.items():
            registry.gauge(name).set(value)
        for sid, size in enumerate(self.shard_sizes):
            registry.gauge(
                "shard_service_size", shard=str(sid)
            ).set(size)


class _ShardAccounting:
    """Thread-safe counters behind :class:`ShardStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.planned = 0
        self.contacted = 0
        self.pruned = 0
        self.broadcasts = 0
        self.failovers = 0
        self.hedges = 0

    def record_plan(self, plan: ShardPlan) -> None:
        with self._lock:
            self.planned += 1
            self.contacted += len(plan.contacted)
            self.pruned += plan.pruned
            self.broadcasts += bool(plan.broadcast)

    def record_failover(self) -> None:
        with self._lock:
            self.failovers += 1

    def record_hedge(self) -> None:
        with self._lock:
            self.hedges += 1

    def snapshot(
        self,
        num_shards: int,
        replication: int,
        sizes: tuple[int, ...],
        epochs: tuple[int, ...],
        pool: tuple = ("serial", 0, 0, 0, 0, 0.0, 0.0),
    ) -> ShardStats:
        with self._lock:
            return ShardStats(
                num_shards=num_shards,
                replication=replication,
                planned=self.planned,
                shards_contacted=self.contacted,
                shards_pruned=self.pruned,
                broadcasts=self.broadcasts,
                failovers=self.failovers,
                hedges=self.hedges,
                shard_sizes=sizes,
                shard_epochs=epochs,
                pool=pool[0],
                pool_workers=pool[1],
                pool_tasks=pool[2],
                pool_fallbacks=pool[3],
                pool_timeouts=pool[4],
                pool_busy_seconds=pool[5],
                pool_critical_seconds=pool[6],
            )


class ShardedQueryService:
    """Scatter-gather query server over Gray-range shards.

    Args:
        codes: the dataset to serve (split by Gray rank at build time).
        num_shards: shard count when ``pivots`` is not given.
        pivots: explicit Gray-rank boundaries (``len + 1`` shards);
            defaults to equi-depth pivots over the full dataset.
        replication: replicas per shard (1 = primary only).  Replicas
            are deep snapshots of the primary and receive every
            mutation, so any replica answers identically.
        chaos: optional :class:`~repro.mapreduce.faults.ChaosPolicy`
            driving seeded replica failures (failover) and primary
            straggling (hedged dispatch).  Faults degrade latency and
            replica choice, never results: the last replica of a shard
            is always consulted (fail-open).
        engine: registry name of the per-shard index engine
            (:mod:`repro.core.engines`; default ``"dha"``).  Any engine
            works for serving; durable stores (``data_dir``) require
            ``"dha"`` since the store format persists the DHA-Index.
        index_params: keyword arguments for the per-shard engine
            builder.
        pruning: when ``False`` every query is broadcast to all
            non-empty shards — the ablation baseline the shard bench
            compares against to isolate what the Gray-range bound buys.
        pool: scatter backend — ``"serial"`` (inline), ``"thread"``
            (persistent thread pool), or ``"process"`` (spawn-once
            worker processes warm-started from memory-mapped
            snapshots).  All three return byte-identical results; see
            :mod:`repro.service.executor`.
        pool_workers: scatter pool width (defaults to
            ``min(num_shards, cpu_count)``); independent of ``workers``,
            the micro-batching thread count.
        task_timeout: per-scatter deadline for the parallel pools.  A
            process pool past it terminates the suspect workers and
            re-runs the missing tasks inline; a thread pool raises
            :class:`~repro.core.errors.PoolTimeoutError`.
        workers / max_batch / queue_limit / cache_capacity /
        batch_kernel / default_timeout / linger_seconds / start /
        trace_batches: as in
            :class:`~repro.service.server.HammingQueryService`.
        data_dir: persist the shard set under this (fresh) directory —
            a ``topology.json`` describing the split plus one
            :class:`~repro.store.store.DurableIndexStore` per shard
            (``shard-0000/`` ...).  Mutations are WAL-logged on the
            owning shard's store before any replica applies them;
            reopen with :meth:`open`.
        fsync: passed to the per-shard stores.

    With ``batch_kernel`` enabled the per-shard flat kernels are
    compiled eagerly at build (and refresh) time, so the first batched
    query does not pay ``num_shards`` lazy compiles.
    """

    #: name of the shard-layout manifest inside ``data_dir``.
    TOPOLOGY_FILE = "topology.json"

    def __init__(
        self,
        codes: CodeSet,
        *,
        num_shards: int = 4,
        pivots: Sequence[int] | None = None,
        replication: int = 1,
        chaos: ChaosPolicy | None = None,
        engine: str = "dha",
        index_params: dict | None = None,
        pruning: bool = True,
        pool: str = "serial",
        pool_workers: int | None = None,
        task_timeout: float | None = None,
        workers: int = DEFAULT_WORKERS,
        max_batch: int = DEFAULT_MAX_BATCH,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        batch_kernel: bool = True,
        default_timeout: float | None = None,
        linger_seconds: float = 0.0,
        start: bool = True,
        trace_batches: bool = False,
        data_dir: str | None = None,
        fsync: bool = True,
    ) -> None:
        if replication < 1:
            raise InvalidParameterError("replication must be >= 1")
        if default_timeout is not None and default_timeout <= 0:
            raise InvalidParameterError("default_timeout must be positive")
        if pivots is None:
            if num_shards < 1:
                raise InvalidParameterError("num_shards must be positive")
            pivots = (
                select_pivots(codes.codes, num_shards)
                if num_shards > 1 and len(codes)
                else []
            )
        self._code_length = codes.length
        self._planner = ScatterGatherPlanner(pivots, codes.length)
        self._replication = replication
        self._faults = (
            ReplicaFaultPlan(chaos)
            if chaos is not None and chaos.enabled
            else None
        )
        self._engine = get_engine(engine).name
        if data_dir is not None and self._engine != "dha":
            raise StoreError(
                f"durable sharded stores require the dha engine, "
                f"not {self._engine!r}"
            )
        self._index_params = dict(index_params or {})
        self._pruning = pruning
        self._batch_kernel = batch_kernel
        self._shards = self._build_shards(codes)
        self._stores = None
        self._global_epoch = 0
        if data_dir is not None:
            self._stores = self._init_stores(data_dir, fsync)
        self._finish_setup(
            workers=workers,
            max_batch=max_batch,
            queue_limit=queue_limit,
            cache_capacity=cache_capacity,
            default_timeout=default_timeout,
            linger_seconds=linger_seconds,
            start=start,
            trace_batches=trace_batches,
            pool=pool,
            pool_workers=pool_workers,
            task_timeout=task_timeout,
        )

    def _finish_setup(
        self,
        *,
        workers: int,
        max_batch: int,
        queue_limit: int,
        cache_capacity: int,
        default_timeout: float | None,
        linger_seconds: float,
        start: bool,
        trace_batches: bool,
        pool: str = "serial",
        pool_workers: int | None = None,
        task_timeout: float | None = None,
    ) -> None:
        """Serving-stack construction shared by ``__init__`` / ``open``."""
        if pool not in POOL_KINDS:
            raise InvalidParameterError(
                f"unknown pool {pool!r}; expected one of {POOL_KINDS}"
            )
        self._lock = threading.Lock()
        self._trace_batches = trace_batches
        self._default_timeout = default_timeout
        self._closed = False
        self._cache = ResultCache(cache_capacity)
        self._accounting = ServiceAccounting()
        self._shard_accounting = _ShardAccounting()
        self._replica_lock = threading.Lock()
        self._outstanding = {
            shard.sid: [0] * len(shard.replicas)
            for shard in self._shards
        }
        self._pool_kind = pool
        self._pool_workers = pool_workers or default_pool_workers(
            len(self._shards)
        )
        self._task_timeout = task_timeout
        self._executor = self._build_executor()
        self._queue: AdmissionQueue[QueryRequest] = AdmissionQueue(
            queue_limit, workers_hint=workers
        )
        self._scheduler = MicroBatchScheduler(
            self._queue,
            self._execute_batch,
            workers=workers,
            max_batch=max_batch,
            linger_seconds=linger_seconds,
        )
        if start:
            self.start()

    # -- scatter pool ------------------------------------------------------

    def _build_executor(self):
        return make_executor(
            self._pool_kind,
            workers=self._pool_workers,
            spec_factory=self._worker_shard_specs,
            task_timeout=self._task_timeout,
            faults=self._faults,
            accounting=self._shard_accounting,
        )

    def _worker_shard_specs(self) -> tuple[dict, str | None]:
        """Per-shard warm-start specs for process-pool workers.

        Durable services hand out their store directories — workers
        recover read-only (memory-mapped snapshot + WAL replay) and
        never re-pickle an index.  In-memory ``dha`` services write
        one snapshot per shard into a scratch directory the executor
        owns; other engines ship one pickled copy per worker, or raise
        :class:`~repro.core.errors.StoreError` when the engine cannot
        be pickled.
        """
        if self._stores is not None:
            specs = {
                shard.sid: (
                    "store",
                    str(store.data_dir),
                    shard.epoch,
                    store.last_seq,
                )
                for shard, store in zip(self._shards, self._stores)
            }
            return specs, None
        if self._engine == "dha":
            import tempfile
            from pathlib import Path

            from repro.store.snapshot import write_snapshot

            scratch = tempfile.mkdtemp(prefix="repro-shard-pool-")
            specs = {}
            for shard in self._shards:
                path = Path(scratch) / f"shard-{shard.sid:04d}.ha"
                write_snapshot(
                    path,
                    shard.primary,
                    last_seq=shard.epoch,
                    fsync=False,
                )
                specs[shard.sid] = ("snap", str(path), shard.epoch)
            return specs, scratch
        import pickle

        specs = {}
        for shard in self._shards:
            try:
                data = pickle.dumps(
                    shard.primary, protocol=pickle.HIGHEST_PROTOCOL
                )
            except Exception as error:  # noqa: BLE001 - explicit refusal
                raise StoreError(
                    f"engine {self._engine!r} index for shard "
                    f"{shard.sid} cannot be shared with worker "
                    f"processes (pickle failed: {error}); use "
                    "pool='thread' or pool='serial'"
                ) from error
            specs[shard.sid] = ("pickle", data, shard.epoch)
        return specs, None

    @property
    def pool(self) -> str:
        """Active scatter backend (``serial``/``thread``/``process``)."""
        return self._executor.kind

    @property
    def pool_workers(self) -> int:
        return self._pool_workers

    def set_pool(
        self,
        pool: str,
        pool_workers: int | None = None,
        task_timeout: float | None = None,
        model_width: int | None = None,
    ) -> None:
        """Swap the scatter backend in place (no index rebuild).

        The swap happens under the shard mutex, so no scatter is ever
        split across backends; the old pool's processes/threads are
        released after the swap.  ``task_timeout=None`` keeps the
        current deadline.  ``model_width`` sets the width at which the
        new executor's critical-path seconds are scheduled (the
        modelled-cluster-time accounting; defaults to the pool's real
        width).
        """
        self._check_open()
        if pool not in POOL_KINDS:
            raise InvalidParameterError(
                f"unknown pool {pool!r}; expected one of {POOL_KINDS}"
            )
        with self._lock:
            old = self._executor
            self._pool_kind = pool
            if pool_workers is not None:
                self._pool_workers = pool_workers
            if task_timeout is not None:
                self._task_timeout = task_timeout
            self._executor = self._build_executor()
            self._executor.model_width = model_width
        old.close()

    # -- durability --------------------------------------------------------

    def _init_stores(self, data_dir: str, fsync: bool):
        """Write ``topology.json`` and one fresh store per shard."""
        import json
        from pathlib import Path

        from repro.store.format import atomic_write
        from repro.store.store import DurableIndexStore

        root = Path(data_dir)
        if (root / self.TOPOLOGY_FILE).exists():
            raise StoreError(
                f"{data_dir} already holds a sharded store; use "
                "ShardedQueryService.open(data_dir) to recover it"
            )
        root.mkdir(parents=True, exist_ok=True)
        topology = {
            "format": "repro-shard-topology",
            "version": 1,
            "code_length": self._code_length,
            "pivots": list(self._planner.pivots),
            "num_shards": len(self._shards),
            "replication": self._replication,
            "index_params": self._index_params,
        }
        atomic_write(
            root / self.TOPOLOGY_FILE,
            json.dumps(topology, sort_keys=True, indent=2).encode("utf-8"),
            fsync=fsync,
        )
        stores = []
        for shard in self._shards:
            store = DurableIndexStore(
                root / f"shard-{shard.sid:04d}", fsync=fsync
            )
            store.initialize(shard.primary)
            stores.append(store)
        return stores

    @classmethod
    def open(
        cls,
        data_dir: str,
        *,
        fsync: bool = True,
        chaos: ChaosPolicy | None = None,
        pruning: bool = True,
        pool: str = "serial",
        pool_workers: int | None = None,
        task_timeout: float | None = None,
        workers: int = DEFAULT_WORKERS,
        max_batch: int = DEFAULT_MAX_BATCH,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        batch_kernel: bool = True,
        default_timeout: float | None = None,
        linger_seconds: float = 0.0,
        start: bool = True,
        trace_batches: bool = False,
    ) -> "ShardedQueryService":
        """Warm-start the sharded service from a persisted directory.

        Reads ``topology.json`` (pivots, replication, index params) and
        recovers every shard's store independently — newest valid
        snapshot plus WAL replay per shard.  Each shard's epoch resumes
        at its store's last logged sequence number and the global epoch
        is their sum, matching a never-restarted service that applied
        the same per-shard mutation history.
        """
        import json
        from pathlib import Path

        from repro.store.store import DurableIndexStore

        root = Path(data_dir)
        manifest = root / cls.TOPOLOGY_FILE
        try:
            topology = json.loads(manifest.read_text("utf-8"))
        except FileNotFoundError:
            raise StoreError(f"no shard topology at {manifest}") from None
        except (OSError, ValueError) as error:
            raise StoreError(
                f"unreadable shard topology {manifest}: {error}"
            ) from error
        if topology.get("format") != "repro-shard-topology":
            raise StoreError(f"{manifest} is not a shard topology file")

        self = cls.__new__(cls)
        self._code_length = int(topology["code_length"])
        self._planner = ScatterGatherPlanner(
            [int(p) for p in topology["pivots"]], self._code_length
        )
        self._replication = int(topology["replication"])
        self._faults = (
            ReplicaFaultPlan(chaos)
            if chaos is not None and chaos.enabled
            else None
        )
        self._engine = "dha"  # stores always persist the DHA-Index
        self._index_params = dict(topology.get("index_params") or {})
        self._pruning = pruning
        self._batch_kernel = batch_kernel
        shards: list[_Shard] = []
        stores = []
        for sid in range(int(topology["num_shards"])):
            store = DurableIndexStore(
                root / f"shard-{sid:04d}", fsync=fsync
            )
            primary = store.open()
            replicas = [primary] + [
                primary.snapshot() for _ in range(self._replication - 1)
            ]
            if batch_kernel and len(primary):
                for replica in replicas:
                    replica.compile()
            shard = _Shard(sid, replicas)
            shard.epoch = store.last_seq
            shards.append(shard)
            stores.append(store)
            self._planner.reset_range(
                sid, [code for code, _ in primary.code_id_pairs()]
            )
        self._shards = shards
        self._stores = stores
        self._global_epoch = sum(shard.epoch for shard in shards)
        self._finish_setup(
            workers=workers,
            max_batch=max_batch,
            queue_limit=queue_limit,
            cache_capacity=cache_capacity,
            default_timeout=default_timeout,
            linger_seconds=linger_seconds,
            start=start,
            trace_batches=trace_batches,
            pool=pool,
            pool_workers=pool_workers,
            task_timeout=task_timeout,
        )
        return self

    def _build_shards(self, codes: CodeSet) -> list[_Shard]:
        shard_sets = split_by_pivots(codes, self._planner.pivots)
        builder = get_engine(self._engine).builder
        shards = []
        for sid, shard_codes in enumerate(shard_sets):
            primary = builder(shard_codes, **self._index_params)
            replicas = [primary] + [
                primary.snapshot() for _ in range(self._replication - 1)
            ]
            if self._batch_kernel and len(shard_codes):
                for replica in replicas:
                    if hasattr(replica, "compile"):
                        replica.compile()
            shards.append(_Shard(sid, replicas))
            self._planner.reset_range(sid, shard_codes.codes)
        return shards

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._closed:
            raise ServiceClosedError("cannot restart a closed service")
        self._scheduler.start()

    def close(self, *, snapshot: bool = True) -> None:
        """Stop admitting, drain queued queries, join the workers.

        With ``snapshot=True`` (the default) every shard whose WAL has
        pending records rotates a final generation, so the next
        :meth:`open` warm-starts each shard from its memory-mapped
        snapshot with nothing to replay.
        """
        if self._closed:
            return
        self._closed = True
        self._scheduler.start()
        self._queue.close()
        self._scheduler.join()
        self._executor.close()
        if self._stores is not None:
            for shard, store in zip(self._shards, self._stores):
                try:
                    if snapshot and store.wal_tail:
                        with self._lock:
                            store.snapshot(shard.primary)
                finally:
                    store.close()

    def __enter__(self) -> "ShardedQueryService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def code_length(self) -> int:
        return self._code_length

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def replication(self) -> int:
        return self._replication

    @property
    def pivots(self) -> list[int]:
        return self._planner.pivots

    @property
    def epoch(self) -> int:
        with self._lock:
            return self._global_epoch

    def __len__(self) -> int:
        with self._lock:
            return sum(len(shard.primary) for shard in self._shards)

    def shard_sizes(self) -> list[int]:
        with self._lock:
            return [len(shard.primary) for shard in self._shards]

    # -- query side --------------------------------------------------------

    def submit(
        self,
        kind: str,
        query: int,
        param: int,
        timeout: float | None = None,
    ) -> QueryTicket:
        """Admit one query; returns its ticket immediately."""
        if self._closed:
            raise ServiceClosedError("query service is closed")
        if kind not in QUERY_KINDS:
            raise InvalidParameterError(
                f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}"
            )
        if query < 0 or query >> self._code_length:
            raise CodeLengthError(
                f"query {query:#x} does not fit in "
                f"{self._code_length} bits"
            )
        if kind == "knn":
            if param < 1:
                raise InvalidParameterError("k must be positive")
        elif param < 0:
            raise InvalidParameterError("threshold must be non-negative")
        now = time.monotonic()
        if timeout is None:
            timeout = self._default_timeout
        deadline = None if timeout is None else now + timeout
        request = QueryRequest(
            kind=kind,
            query=query,
            param=param,
            submitted_at=now,
            deadline=deadline,
        )
        try:
            self._queue.offer(request)
        except ServiceClosedError:
            raise
        except Exception:
            self._accounting.record_rejected()
            if REGISTRY.enabled:
                REGISTRY.counter(
                    "service_rejected_total",
                    "queries refused at admission",
                ).inc()
            raise
        return request.ticket

    def select(
        self, query: int, threshold: int, timeout: float | None = None
    ) -> ServedResult:
        """Blocking Hamming-select; ``value`` is an id-sorted tuple of
        tuple ids gathered from the contacted shards."""
        return self._await(self.submit("select", query, threshold, timeout))

    def probe(
        self, query: int, threshold: int, timeout: float | None = None
    ) -> ServedResult:
        """Blocking join-probe; True iff any shard holds a code within
        ``threshold`` (pruned shards provably cannot)."""
        return self._await(self.submit("probe", query, threshold, timeout))

    def knn(
        self, query: int, k: int, timeout: float | None = None
    ) -> ServedResult:
        """Blocking kNN-select; ``value`` is ``((tuple_id, distance), ...)``
        sorted by (distance, id) — identical to the single-index
        expanding-threshold loop."""
        return self._await(self.submit("knn", query, k, timeout))

    @staticmethod
    def _await(ticket: QueryTicket) -> ServedResult:
        result = ticket.result()
        assert isinstance(result, ServedResult)
        return result

    def join(
        self, outer: CodeSet, threshold: int
    ) -> list[tuple[int, int]]:
        """Scatter-gather Hamming-join of ``outer`` against the served
        dataset; returns sorted ``(outer_id, inner_id)`` pairs.

        A bulk offline entry point (not queued): each outer code is
        planned, the per-shard probe sets run through the shards'
        batched kernels, and the pairs merge in sorted order — the
        distributed join's scatter phase, served online.
        """
        self._check_open()
        if outer.length != self._code_length:
            raise CodeLengthError(
                f"outer codes are {outer.length}-bit, service serves "
                f"{self._code_length}-bit codes"
            )
        if threshold < 0:
            raise InvalidParameterError("threshold must be non-negative")
        pairs: list[tuple[int, int]] = []
        with self._lock:
            _, by_shard = self._plan_batch_locked(
                list(outer.codes), threshold
            )
            shard_positions = sorted(by_shard.items())
            tasks = [
                self._task(
                    sid,
                    "search_batch",
                    ([outer.codes[p] for p in positions], threshold),
                    ("join", threshold, len(positions)),
                )
                for sid, positions in shard_positions
            ]
            values = self._scatter("join", tasks, shards=len(tasks))
            with trace_span(
                "shard.gather", kind="join", shards=len(tasks)
            ):
                for (sid, positions), id_lists in zip(
                    shard_positions, values
                ):
                    for position, ids in zip(positions, id_lists):
                        outer_id = outer.ids[position]
                        pairs.extend(
                            (outer_id, inner) for inner in ids
                        )
        pairs.sort()
        return pairs

    # -- writer side -------------------------------------------------------

    def insert(self, code: int, tuple_id: int) -> int:
        """H-Insert into the owning shard (every replica); returns the
        new global epoch.  Only that shard's epoch is bumped, so cached
        results whose plans never touch it stay valid."""
        self._check_open()
        self._check_code(code)
        with self._lock:
            sid = self._planner.route(code)
            shard = self._shards[sid]
            if self._stores is not None:
                self._precheck_mutation(shard, "insert into")
                self._stores[sid].append_insert(code, tuple_id)
            for replica in shard.replicas:
                replica.insert(code, tuple_id)
            self._planner.observe(sid, code)
            shard.epoch += 1
            self._global_epoch += 1
            self._executor.mutate(sid, "insert", code, tuple_id, shard.epoch)
            return self._global_epoch

    def delete(self, code: int, tuple_id: int) -> int:
        """H-Delete from the owning shard (every replica); returns the
        new global epoch.  The shard's occupied Gray range is kept
        conservatively wide (sound; tightened on the next refresh)."""
        self._check_open()
        self._check_code(code)
        with self._lock:
            sid = self._planner.route(code)
            shard = self._shards[sid]
            if self._stores is not None:
                self._precheck_mutation(shard, "delete from")
                if tuple_id not in shard.primary.ids_for_code(code):
                    raise IndexStateError(
                        f"tuple {tuple_id} with code {code:#x} not present"
                    )
                self._stores[sid].append_delete(code, tuple_id)
            for replica in shard.replicas:
                replica.delete(code, tuple_id)
            shard.epoch += 1
            self._global_epoch += 1
            self._executor.mutate(sid, "delete", code, tuple_id, shard.epoch)
            return self._global_epoch

    @staticmethod
    def _precheck_mutation(shard: _Shard, verb: str) -> None:
        """Raise what the primary would, *before* the WAL append.

        Logging a record the shard then rejects would poison replay, so
        the index's own preconditions run first, with its messages.
        """
        primary = shard.primary
        if getattr(primary, "_frozen", False):
            raise IndexStateError("merged global HA-Index is read-only")
        if not primary.keeps_ids:
            raise IndexStateError(
                f"cannot {verb} a leaf-less (keep_ids=False) index"
            )

    def refresh(self, codes: CodeSet) -> int:
        """Copy-on-swap bulk reload: re-split by the existing pivots,
        rebuild every shard outside the lock, swap, recompute occupied
        ranges exactly, and drop the whole cache."""
        self._check_open()
        if codes.length != self._code_length:
            raise InvalidParameterError(
                f"refresh code length {codes.length} != served "
                f"{self._code_length}"
            )
        replacement = self._build_shards(codes)
        with self._lock:
            for shard, fresh in zip(self._shards, replacement):
                fresh.epoch = shard.epoch + 1
            if self._stores is not None:
                # A bulk reload invalidates every shard's WAL chain;
                # rotate a fresh snapshot generation per shard before
                # serving the replacement.
                for store, fresh in zip(self._stores, replacement):
                    store.snapshot(fresh.primary)
            self._shards = replacement
            self._global_epoch += 1
            epoch = self._global_epoch
            self._executor.reload()
        self._accounting.record_refresh()
        self._cache.clear()
        return epoch

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("query service is closed")

    def _check_code(self, code: int) -> None:
        if code < 0 or code >> self._code_length:
            raise CodeLengthError(
                f"code {code:#x} does not fit in {self._code_length} bits"
            )

    # -- scatter-gather core (runs under the shard mutex) ------------------

    def _plan_radius(self, threshold: int) -> int:
        """Unweighted planning radius for a (possibly weighted) threshold.

        The Gray-range shard bound prunes in *unweighted* Hamming
        space.  Weighted engines expose ``implied_radius`` — the
        largest unweighted distance a weighted match can sit at
        (``floor(threshold / min_weight)``) — so planning at that
        radius keeps pruning sound: a shard outside it provably holds
        no weighted match.  Unweighted engines plan at the threshold
        itself, unchanged.
        """
        if self._shards:
            implied = getattr(
                self._shards[0].primary, "implied_radius", None
            )
            if implied is not None:
                return implied(threshold)
        return threshold

    def _knn_cap(self) -> int:
        """Threshold that provably covers every stored code for kNN.

        The code length for unweighted engines; weighted engines
        report ``knn_threshold_cap`` (the ceiling of their total
        weight), since their distances may exceed the code length.
        """
        if self._shards:
            cap = getattr(
                self._shards[0].primary, "knn_threshold_cap", None
            )
            if cap is not None:
                return max(int(cap), self._code_length)
        return self._code_length

    def _plan_locked(self, query: int, threshold: int) -> ShardPlan:
        if not self._pruning:
            return self._broadcast_plan()
        return self._planner.plan(query, self._plan_radius(threshold))

    def _plan_batch_locked(
        self, queries: list[int], threshold: int
    ) -> tuple[list[ShardPlan], dict[int, list[int]]]:
        """Plan a batch and transpose it into ``{shard: positions}``."""
        if self._pruning:
            return self._planner.plan_batch(
                queries, self._plan_radius(threshold)
            )
        plans = [self._broadcast_plan() for _ in queries]
        by_shard: dict[int, list[int]] = {}
        for position, plan in enumerate(plans):
            for sid in plan.contacted:
                by_shard.setdefault(sid, []).append(position)
        return plans, by_shard

    def _broadcast_plan(self) -> ShardPlan:
        """Contact every non-empty shard (``pruning=False`` ablation)."""
        contacted = tuple(
            sid
            for sid in range(self.num_shards)
            if self._planner.occupied(sid) is not None
        )
        return ShardPlan(
            contacted=contacted,
            pruned=self.num_shards - len(contacted),
            broadcast=True,
        )

    def _record_plan(self, plan: ShardPlan) -> None:
        self._shard_accounting.record_plan(plan)
        if REGISTRY.enabled:
            REGISTRY.counter(
                "shards_contacted_total",
                "shard visits performed by executed queries",
            ).inc(len(plan.contacted))
            REGISTRY.counter(
                "shard_pruned_total",
                "shard visits avoided by the Gray-range bound",
            ).inc(plan.pruned)
            if plan.broadcast:
                REGISTRY.counter(
                    "shard_broadcast_total",
                    "queries whose pruning bound was vacuous",
                ).inc()
            REGISTRY.histogram(
                "shards_contacted",
                "shards contacted per executed query",
                buckets=tuple(
                    float(2**i) for i in range(0, 8)
                ),
            ).observe(float(len(plan.contacted)))

    def _dispatch(
        self,
        shard: _Shard,
        op_name: str,
        args: tuple,
        context: tuple,
    ):
        """Run one shard operation with hedging and replica failover.

        Replica candidates are ordered by least outstanding requests
        (ties by index, so an idle service visits the primary first,
        exactly as before the parallel executors existed; under a
        concurrent thread-pool scatter the load spreads).  The fault
        plan may hedge the dispatch away from the first candidate
        (straggler) or skip unavailable replicas (failover); the final
        candidate is always consulted, so injected faults never change
        results.  Thread-safe: accounting and the outstanding counts
        take their own locks, never the shard mutex.
        """
        replicas = shard.replicas
        if len(replicas) == 1:
            order = [0]
        else:
            with self._replica_lock:
                counts = self._outstanding[shard.sid]
                order = sorted(
                    range(len(replicas)),
                    key=lambda ridx: (counts[ridx], ridx),
                )
        faults = self._faults
        if faults is not None and len(order) > 1:
            if faults.primary_straggles(shard.sid, op_name, *context):
                order = order[1:] + order[:1]
                self._shard_accounting.record_hedge()
                if REGISTRY.enabled:
                    REGISTRY.counter(
                        "shard_hedged_total",
                        "dispatches hedged away from a slow primary",
                    ).inc()
        for position, ridx in enumerate(order):
            last = position == len(order) - 1
            if (
                not last
                and faults is not None
                and faults.replica_down(
                    shard.sid, ridx, op_name, *context
                )
            ):
                self._shard_accounting.record_failover()
                if REGISTRY.enabled:
                    REGISTRY.counter(
                        "shard_failover_total",
                        "dispatches failed over to another replica",
                    ).inc()
                continue
            replica = replicas[ridx]
            with self._replica_lock:
                self._outstanding[shard.sid][ridx] += 1
            try:
                with trace_span(
                    "shard.search",
                    shard=shard.sid,
                    replica=ridx,
                    op=op_name,
                ):
                    return getattr(replica, op_name)(*args)
            finally:
                with self._replica_lock:
                    self._outstanding[shard.sid][ridx] -= 1
        raise ReplicaUnavailableError(
            f"no replica of shard {shard.sid} available"
        )

    def _dispatch_task(self, task: ShardTask):
        """Executor-facing adapter: one :class:`ShardTask`, inline."""
        return self._dispatch(
            self._shards[task.sid], task.op, task.args, task.context
        )

    def _scatter(self, kind: str, tasks: list[ShardTask], **attrs):
        """Run one scatter through the active pool backend.

        Returns per-task values in task order; the executor attaches
        every task's ``shard.dispatch`` subtree to the open
        ``shard.scatter`` span in that same order, whatever the
        completion order was.
        """
        executor = self._executor
        with trace_span(
            "shard.scatter", kind=kind, pool=executor.kind, **attrs
        ):
            return executor.scatter(tasks, self._dispatch_task)

    def _task(
        self, sid: int, op: str, args: tuple, context: tuple
    ) -> ShardTask:
        return ShardTask(
            sid, op, args, context, self._shards[sid].epoch
        )

    def _epoch_key(self, kind: str, plan: ShardPlan | None) -> tuple:
        """Shard-aware cache-key epoch component.

        ``select``/``probe`` results depend only on the shards their
        plan contacts; ``knn`` may expand into any shard, so its
        entries key on every epoch.
        """
        if plan is None or kind == "knn":
            return tuple(shard.epoch for shard in self._shards)
        return tuple(
            (sid, self._shards[sid].epoch) for sid in plan.contacted
        )

    def _run_select(self, query: int, threshold: int) -> tuple[int, ...]:
        plan = self._plan_locked(query, threshold)
        self._record_plan(plan)
        tasks = [
            self._task(
                sid,
                "search",
                (query, threshold),
                ("select", query, threshold),
            )
            for sid in plan.contacted
        ]
        gathered = self._scatter("select", tasks, shards=len(tasks))
        with trace_span("shard.gather", kind="select", shards=len(tasks)):
            matches: list[int] = []
            for ids in gathered:
                matches.extend(ids)
            return _sorted_ids(matches)

    def _run_probe(self, query: int, threshold: int) -> bool:
        """Membership probe: OR over every contacted shard.

        All planned shards are asked (no first-hit short-circuit) so
        every pool backend — where the shards genuinely run
        concurrently — performs the *same* work and reports the same
        op counts as the serial walk.
        """
        plan = self._plan_locked(query, threshold)
        self._record_plan(plan)
        tasks = [
            self._task(
                sid,
                "contains_within",
                (query, threshold),
                ("probe", query, threshold),
            )
            for sid in plan.contacted
        ]
        gathered = self._scatter("probe", tasks, shards=len(tasks))
        with trace_span("shard.gather", kind="probe", shards=len(tasks)):
            return any(gathered)

    def _run_knn(self, query: int, k: int) -> tuple[tuple[int, int], ...]:
        """Expanding-threshold kNN over the pruned scatter.

        Byte-compatible with :func:`repro.core.knn.knn_select` run on a
        monolithic index: the same threshold schedule, and since each
        round gathers the exact union of per-shard matches, the same
        match counts, sort and cut.  Pruning is re-planned every round
        — as the threshold grows the Hamming ball widens and previously
        pruned shards rejoin the scatter (per-shard top-k with global
        threshold refinement).
        """
        threshold = DEFAULT_INITIAL_THRESHOLD
        step = max(2, self._code_length // 8)
        cap = self._knn_cap()
        target = min(k, sum(len(s.primary) for s in self._shards))
        while True:
            plan = self._plan_locked(query, threshold)
            self._record_plan(plan)
            tasks = [
                self._task(
                    sid,
                    "search_with_distances",
                    (query, threshold),
                    ("knn", query, threshold),
                )
                for sid in plan.contacted
            ]
            gathered = self._scatter(
                "knn", tasks, threshold=threshold, shards=len(tasks)
            )
            with trace_span(
                "shard.gather", kind="knn", threshold=threshold
            ):
                matches: list[tuple[int, int]] = []
                for chunk in gathered:
                    matches.extend(chunk)
            if len(matches) >= target or threshold >= cap:
                matches.sort(key=lambda pair: (pair[1], pair[0]))
                return tuple(matches[:k])
            threshold = min(threshold + step, cap)

    def _run_query(self, kind: str, query: int, param: int) -> object:
        if kind == "select":
            return self._run_select(query, param)
        if kind == "probe":
            return self._run_probe(query, param)
        if kind == "knn":
            return self._run_knn(query, param)
        raise InvalidParameterError(f"unknown query kind {kind!r}")

    # -- batch execution (worker threads) ----------------------------------

    def _execute_batch(self, batch: list[QueryRequest]) -> None:
        if self._trace_batches:
            with trace("service.batch", size=len(batch)):
                self._execute_batch_inner(batch)
        else:
            self._execute_batch_inner(batch)

    def _execute_batch_inner(self, batch: list[QueryRequest]) -> None:
        started = time.monotonic()
        live: list[QueryRequest] = []
        timed_out = 0
        for request in batch:
            if request.deadline is not None and started > request.deadline:
                self._accounting.record_timed_out()
                timed_out += 1
                request.ticket.fail(_deadline_error(request, started))
                continue
            live.append(request)
        if REGISTRY.enabled and timed_out:
            REGISTRY.counter(
                "service_timed_out_total", "queries past their deadline"
            ).inc(timed_out)
        if not live:
            return
        groups: dict[tuple[str, int, int], list[QueryRequest]] = {}
        for request in live:
            groups.setdefault(request.key, []).append(request)
        executed = 0
        dedup_saved = 0
        resolutions: list[tuple[QueryRequest, ServedResult]] = []
        with self._lock:
            epoch = self._global_epoch
            values: dict[tuple[str, int, int], tuple[object, bool]] = {}
            misses: list[tuple[str, int, int]] = []
            for key, requests in groups.items():
                kind, query, param = key
                plan = (
                    self._plan_locked(query, param)
                    if kind != "knn"
                    else None
                )
                cache_key = key + (self._epoch_key(kind, plan),)
                value = self._cache.get(cache_key, weight=len(requests))
                if value is MISS:
                    misses.append(key)
                else:
                    values[key] = (value, True)
            for key, value in self._run_misses(misses):
                executed += 1
                dedup_saved += len(groups[key]) - 1
                kind, query, param = key
                plan = (
                    self._plan_locked(query, param)
                    if kind != "knn"
                    else None
                )
                self._cache.put(
                    key + (self._epoch_key(kind, plan),), value
                )
                values[key] = (value, False)
            for key, requests in groups.items():
                value, cached = values[key]
                result = ServedResult(value, epoch, cached)
                resolutions.extend(
                    (request, result) for request in requests
                )
        finished = time.monotonic()
        publish = REGISTRY.enabled
        hits = 0
        for request, result in resolutions:
            latency_ms = (finished - request.submitted_at) * 1000.0
            self._accounting.record_served(latency_ms)
            if publish:
                REGISTRY.histogram(
                    "service_request_latency_ms",
                    "submit-to-resolve latency",
                    kind=request.kind,
                ).observe(latency_ms)
                if result.cached:
                    hits += 1
            request.ticket.resolve(result)
        self._accounting.record_batch(len(live), executed, dedup_saved)
        if publish:
            REGISTRY.counter(
                "service_served_total", "queries answered"
            ).inc(len(resolutions))
            REGISTRY.counter(
                "service_cache_hits_total",
                "requests absorbed by the result cache",
            ).inc(hits)
            REGISTRY.counter(
                "service_traversals_total",
                "scatter-gather executions after cache and dedup",
            ).inc(executed)
        self._queue.note_service_time((finished - started) / len(live))

    def _run_misses(
        self, misses: list[tuple[str, int, int]]
    ) -> list[tuple[tuple[str, int, int], object]]:
        """Execute the uncached query groups of one micro-batch.

        With the batch kernel enabled, ``select`` misses sharing a
        threshold are planned together and each shard receives *one*
        ``search_batch`` over every query routed to it — the
        scatter-side analogue of the single-index vectorized sweep.
        Other kinds run query-at-a-time.  Runs under the shard mutex.
        """
        results: list[tuple[tuple[str, int, int], object]] = []
        rest: list[tuple[str, int, int]] = []
        if self._batch_kernel:
            by_threshold: dict[int, list[tuple[str, int, int]]] = {}
            for key in misses:
                if key[0] == "select":
                    by_threshold.setdefault(key[2], []).append(key)
                else:
                    rest.append(key)
            for threshold, keys in by_threshold.items():
                if len(keys) < 2:
                    rest.extend(keys)
                    continue
                results.extend(
                    self._run_select_batch(keys, threshold)
                )
        else:
            rest = misses
        results.extend(
            (key, self._run_query(*key)) for key in rest
        )
        return results

    def _run_select_batch(
        self, keys: list[tuple[str, int, int]], threshold: int
    ) -> list[tuple[tuple[str, int, int], object]]:
        """One shared scatter for select misses at one threshold."""
        plan_list, by_shard = self._plan_batch_locked(
            [key[1] for key in keys], threshold
        )
        for plan in plan_list:
            self._record_plan(plan)
        gathered: list[list] = [[] for _ in keys]
        shard_positions = sorted(by_shard.items())
        # dha shards hand back int64 arrays so the cross-shard merge
        # stays numpy end-to-end; other engines return id lists and
        # take the same merge path via asarray.
        batch_op = (
            "search_batch_arrays"
            if self._engine == "dha"
            else "search_batch"
        )
        tasks = []
        for sid, positions in shard_positions:
            queries = [keys[p][1] for p in positions]
            tasks.append(
                self._task(
                    sid,
                    batch_op,
                    (queries, threshold),
                    (
                        "select_batch",
                        threshold,
                        len(queries),
                        queries[0],
                    ),
                )
            )
        values = self._scatter(
            "select_batch",
            tasks,
            queries=len(keys),
            shards=len(tasks),
        )
        with trace_span(
            "shard.gather", kind="select_batch", shards=len(tasks)
        ):
            for (sid, positions), id_lists in zip(
                shard_positions, values
            ):
                for position, ids in zip(positions, id_lists):
                    gathered[position].append(ids)
        return [
            (key, _merge_sorted_ids(chunks))
            for key, chunks in zip(keys, gathered)
        ]

    # -- observability -----------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent :class:`ServiceStats` snapshot (global epoch).

        With durable stores attached, ``stats().store`` aggregates the
        per-shard stores (summed counters, max generation).
        """
        with self._lock:
            epoch = self._global_epoch
        return self._accounting.snapshot(
            queue_depth=self._queue.depth(),
            queue_capacity=self._queue.capacity,
            workers=self._scheduler.workers,
            epoch=epoch,
            cache=self._cache.stats(),
            store=self.store_stats(),
        )

    def store_stats(self):
        """Aggregated per-shard store accounting (``None`` if in-memory)."""
        if self._stores is None:
            return None
        from repro.store.store import StoreStats

        return StoreStats.merge(
            [store.stats() for store in self._stores]
        )

    def save_snapshot(self) -> int:
        """Rotate a new snapshot generation on every shard's store.

        Folds each shard's logged mutations into a fresh snapshot so
        the next :meth:`open` replays empty WAL tails; returns the
        highest shard generation.  Requires stores.
        """
        self._check_open()
        if self._stores is None:
            raise StoreError(
                "sharded service has no durable stores; construct it "
                "with data_dir= or open() to persist snapshots"
            )
        with self._lock:
            for store, shard in zip(self._stores, self._shards):
                store.snapshot(shard.primary)
            return max(store.generation for store in self._stores)

    def shard_stats(self) -> ShardStats:
        """A consistent :class:`ShardStats` snapshot."""
        with self._lock:
            sizes = tuple(len(shard.primary) for shard in self._shards)
            epochs = tuple(shard.epoch for shard in self._shards)
            executor = self._executor
        tasks, fallbacks, timeouts = executor.counters()
        busy, critical = executor.seconds()
        return self._shard_accounting.snapshot(
            self.num_shards,
            self._replication,
            sizes,
            epochs,
            pool=(
                executor.kind,
                executor.workers,
                tasks,
                fallbacks,
                timeouts,
                busy,
                critical,
            ),
        )

    def publish_metrics(self) -> tuple[ServiceStats, ShardStats]:
        """Snapshot both stat blocks and fold them into the registry."""
        stats = self.stats()
        stats.publish()
        shard_stats = self.shard_stats()
        shard_stats.publish()
        return stats, shard_stats
