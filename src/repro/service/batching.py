"""Micro-batching: tickets, requests, and the worker pool.

Queries arrive one at a time but are *executed* in coalesced batches: a
worker blocks for the first waiting request, then drains up to
``max_batch - 1`` more (optionally lingering a few hundred microseconds
to let a burst accumulate) and hands the whole batch to the server's
executor.  Batching amortizes the per-traversal overhead — one index
lock acquisition, one epoch read — and enables in-batch deduplication:
identical ``(kind, query, param)`` requests share a single traversal,
which on skewed (Zipfian) workloads eliminates most of the work before
the cache is even consulted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from repro.core.errors import InvalidParameterError, ServiceTimeoutError
from repro.service.admission import AdmissionQueue

#: How long an idle worker waits before re-checking for shutdown.
_IDLE_POLL_SECONDS = 0.05


class QueryTicket:
    """Handle to an in-flight query; resolved exactly once by a worker."""

    __slots__ = ("_event", "_value", "_error")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: object = None
        self._error: BaseException | None = None

    def resolve(self, value: object) -> None:
        self._value = value
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> object:
        """The served result; blocks until resolved.

        Raises the server-side failure if the query errored (including
        :class:`~repro.core.errors.ServiceTimeoutError` for a missed
        deadline), or ``ServiceTimeoutError`` if the caller-side wait
        itself exceeds ``timeout``.
        """
        if not self._event.wait(timeout=timeout):
            raise ServiceTimeoutError("timed out waiting for query result")
        if self._error is not None:
            raise self._error
        return self._value


@dataclass(slots=True)
class QueryRequest:
    """One admitted query waiting for a worker.

    ``kind`` is ``"select"``, ``"probe"`` or ``"knn"``; ``param`` is the
    Hamming threshold (select/probe) or ``k`` (knn).  Timestamps are
    ``time.monotonic()`` values; ``deadline`` of ``None`` means the query
    never expires server-side.
    """

    kind: str
    query: int
    param: int
    submitted_at: float
    deadline: float | None
    ticket: QueryTicket = field(default_factory=QueryTicket)

    @property
    def key(self) -> tuple[str, int, int]:
        """Dedup/cache identity (epoch is appended by the server)."""
        return (self.kind, self.query, self.param)


class MicroBatchScheduler:
    """Worker pool pulling coalesced batches off the admission queue.

    Args:
        queue: the admission queue feeding the pool.
        execute_batch: server callback receiving a list of live
            :class:`QueryRequest` and resolving every ticket.
        workers: pool size.
        max_batch: most requests coalesced into one executor call.
        linger_seconds: after the first request of a batch, how long a
            worker waits for stragglers before executing a short batch
            (``0`` drains only what is already queued).
    """

    def __init__(
        self,
        queue: AdmissionQueue[QueryRequest],
        execute_batch: Callable[[list[QueryRequest]], None],
        workers: int,
        max_batch: int,
        linger_seconds: float = 0.0,
    ) -> None:
        if workers < 1:
            raise InvalidParameterError("need at least one worker")
        if max_batch < 1:
            raise InvalidParameterError("max_batch must be positive")
        if linger_seconds < 0:
            raise InvalidParameterError("linger_seconds must be >= 0")
        self._queue = queue
        self._execute_batch = execute_batch
        self._workers = workers
        self._max_batch = max_batch
        self._linger = linger_seconds
        self._threads: list[threading.Thread] = []

    @property
    def workers(self) -> int:
        return self._workers

    def start(self) -> None:
        if self._threads:
            return
        for slot in range(self._workers):
            thread = threading.Thread(
                target=self._run,
                name=f"repro-serve-{slot}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def join(self) -> None:
        """Wait for every worker to exit (queue must be closed first)."""
        for thread in self._threads:
            thread.join()
        self._threads = []

    # -- worker loop -------------------------------------------------------

    def _run(self) -> None:
        queue = self._queue
        while True:
            first = queue.take(timeout=_IDLE_POLL_SECONDS)
            if first is None:
                if queue.closed and queue.depth() == 0:
                    return
                continue
            batch = self._fill_batch(first)
            try:
                self._execute_batch(batch)
            except BaseException as error:  # never kill the worker
                for request in batch:
                    if not request.ticket.done():
                        request.ticket.fail(error)

    def _fill_batch(self, first: QueryRequest) -> list[QueryRequest]:
        batch = [first]
        while len(batch) < self._max_batch:
            item = self._queue.take_nowait()
            if item is None:
                if not self._linger:
                    break
                item = self._queue.take(timeout=self._linger)
                if item is None:
                    break
            batch.append(item)
        return batch
