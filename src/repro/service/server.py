"""The long-lived, thread-safe HA-Index query service.

:class:`HammingQueryService` wraps one :class:`~repro.core.index_base.
HammingIndex` (Dynamic or Static HA-Index, or any index honouring the
contract) and serves three query kinds concurrently:

* ``select`` — exact Hamming-select, returning the matching tuple ids;
* ``probe``  — the similarity semi-join existence probe
  (``contains_within``), the building block of online join processing:
  a stream of outer tuples probes the served index;
* ``knn``    — expanding-threshold kNN-select (Section 2 of the paper).

Concurrency model
-----------------
Queries are admitted through a bounded queue (backpressure), coalesced
into micro-batches and executed by a worker pool.  The index itself is
guarded by a single traversal mutex: H-Search stamps per-node visited
epochs into the shared node graph, so traversals of one structure are
inherently serialized — and under CPython's GIL parallel traversal buys
nothing anyway.  The real serving-layer wins are (a) one lock/epoch
acquisition per *batch* instead of per query, (b) in-batch dedup of
identical queries, and (c) the epoch-keyed LRU result cache, which on
skewed workloads absorbs most traffic without touching the index.

Writers apply H-Insert/H-Delete (Algorithm 2) through the service under
the same mutex; every mutation bumps the *epoch*, so cached results of
older states become unreachable rather than wrong.  Bulk reloads go
through :meth:`refresh`: the replacement index is built *outside* the
mutex and swapped in with a pointer assignment, so readers never block
on a rebuild (copy-on-swap).
"""

from __future__ import annotations

import threading
import time

from repro.core.bitvector import CodeSet
from repro.core.errors import (
    IndexStateError,
    InvalidParameterError,
    ServiceClosedError,
    ServiceTimeoutError,
    StoreError,
)
from repro.core.index_base import HammingIndex
from repro.core.knn import knn_select, knn_select_batch
from repro.obs import REGISTRY
from repro.obs.trace import trace
from repro.service.admission import AdmissionQueue
from repro.service.batching import (
    MicroBatchScheduler,
    QueryRequest,
    QueryTicket,
)
from repro.service.cache import MISS, ResultCache
from repro.service.stats import ServiceAccounting, ServiceStats

#: Query kinds the service understands.
QUERY_KINDS = ("select", "probe", "knn")

DEFAULT_WORKERS = 4
DEFAULT_MAX_BATCH = 32
DEFAULT_QUEUE_LIMIT = 1024
DEFAULT_CACHE_CAPACITY = 4096


class ServedResult:
    """What a resolved ticket carries: value + serving context.

    Attributes:
        value: tuple of tuple-ids (``select``), ``bool`` (``probe``) or
            tuple of ``(tuple_id, distance)`` pairs (``knn``).  Tuples,
            not lists: one cached value may be shared by many readers.
        epoch: the index epoch the query was answered against.
        cached: whether the result came from the cache.
    """

    __slots__ = ("value", "epoch", "cached")

    def __init__(self, value: object, epoch: int, cached: bool) -> None:
        self.value = value
        self.epoch = epoch
        self.cached = cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServedResult(value={self.value!r}, epoch={self.epoch}, "
            f"cached={self.cached})"
        )


class HammingQueryService:
    """Concurrent batched query server over a Hamming index.

    Args:
        index: the index to serve; the service takes ownership (mutate
            it only through :meth:`insert`/:meth:`delete`/:meth:`refresh`).
        workers: micro-batch worker threads.
        max_batch: most queries coalesced into one batch.
        queue_limit: admission bound (waiting queries) before
            backpressure rejections start.
        cache_capacity: LRU result-cache entries (0 disables caching).
        batch_kernel: execute the uncached ``select`` queries of a
            micro-batch through the index's vectorized ``search_batch``
            (one shared frontier sweep per distinct threshold) when the
            served index offers one; other kinds and indexes without a
            batch kernel run query-at-a-time as before.
        kernel: which compiled plane answers the batched misses of a
            Dynamic HA-Index: ``"auto"`` (the index's own
            ``search_batch``, i.e. the flat kernel), ``"flat"``, or
            ``"native"`` (``compile_native()``, the tiered compiled
            backends).  The compile caches are keyed by mutation
            count, so live :meth:`insert`/:meth:`delete` traffic stays
            correct — a stale kernel is never consulted.  Ignored for
            indexes without ``compile()``.
        default_timeout: server-side deadline in seconds applied to
            queries submitted without an explicit timeout (``None``
            means queries never expire).
        linger_seconds: how long a worker waits for a batch to fill
            (0 drains only what is already queued).
        start: spawn the worker pool immediately; pass ``False`` to
            stage requests before serving begins (tests use this to
            exercise backpressure deterministically).
        trace_batches: open a ``service.batch`` trace around every
            micro-batch execution, so the engine's per-level spans are
            collected on the worker thread and the latest batch tree is
            readable from :func:`repro.obs.last_trace` (off by
            default — tracing every batch is not free).
        data_dir: persist the served index in a
            :class:`~repro.store.store.DurableIndexStore` under this
            directory.  The directory must be fresh (the index is
            written as generation 1); to reopen an existing store use
            :meth:`open`.  Every :meth:`insert`/:meth:`delete` is
            WAL-logged before it is applied, and :meth:`refresh` /
            :meth:`save_snapshot` rotate snapshot generations.
        store: an already-initialized (or recovered) store to log to;
            mutually exclusive with ``data_dir``.
        fsync: passed to the store created for ``data_dir``.
    """

    def __init__(
        self,
        index: HammingIndex,
        *,
        workers: int = DEFAULT_WORKERS,
        max_batch: int = DEFAULT_MAX_BATCH,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
        batch_kernel: bool = True,
        kernel: str = "auto",
        default_timeout: float | None = None,
        linger_seconds: float = 0.0,
        start: bool = True,
        trace_batches: bool = False,
        data_dir: str | None = None,
        store=None,
        fsync: bool = True,
    ) -> None:
        if default_timeout is not None and default_timeout <= 0:
            raise InvalidParameterError("default_timeout must be positive")
        if kernel not in ("auto", "flat", "native"):
            raise InvalidParameterError(
                f"kernel must be 'auto', 'flat', or 'native', "
                f"not {kernel!r}"
            )
        if data_dir is not None and store is not None:
            raise InvalidParameterError(
                "pass either data_dir or store, not both"
            )
        if data_dir is not None:
            from repro.store.store import DurableIndexStore

            if DurableIndexStore.exists(data_dir):
                raise StoreError(
                    f"{data_dir} already holds a store; use "
                    "HammingQueryService.open(data_dir) to recover it"
                )
            store = DurableIndexStore(data_dir, fsync=fsync)
            store.initialize(self._require_dynamic(index, "persist"))
        self._store = store
        self._index = index
        self._index_lock = threading.Lock()
        self._batch_kernel = batch_kernel
        self._kernel = kernel
        self._trace_batches = trace_batches
        self._epoch = store.last_seq if store is not None else 0
        self._default_timeout = default_timeout
        self._closed = False
        self._cache = ResultCache(cache_capacity)
        self._accounting = ServiceAccounting()
        self._queue: AdmissionQueue[QueryRequest] = AdmissionQueue(
            queue_limit, workers_hint=workers
        )
        self._scheduler = MicroBatchScheduler(
            self._queue,
            self._execute_batch,
            workers=workers,
            max_batch=max_batch,
            linger_seconds=linger_seconds,
        )
        if start:
            self.start()

    # -- lifecycle ---------------------------------------------------------

    @staticmethod
    def _require_dynamic(index: HammingIndex, verb: str):
        from repro.core.dynamic_ha import DynamicHAIndex

        if not isinstance(index, DynamicHAIndex):
            raise StoreError(
                f"can only {verb} a DynamicHAIndex, not "
                f"{type(index).__name__}"
            )
        return index

    @classmethod
    def open(
        cls, data_dir: str, *, fsync: bool = True, **kwargs
    ) -> "HammingQueryService":
        """Warm-start a service from a persisted store.

        Recovers the newest valid snapshot generation, replays the WAL
        tail, and serves the result; the service's epoch resumes at the
        store's last logged sequence number, so it matches a
        never-restarted service that applied the same mutations.
        """
        from repro.store.store import DurableIndexStore

        store = DurableIndexStore(data_dir, fsync=fsync)
        index = store.open()
        return cls(index, store=store, **kwargs)

    @property
    def store(self):
        """The backing durable store (``None`` when memory-only)."""
        return self._store

    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._closed:
            raise ServiceClosedError("cannot restart a closed service")
        self._scheduler.start()

    def close(self, *, snapshot: bool = True) -> None:
        """Stop admitting, drain queued queries, join the workers.

        Every already-admitted query is still answered (or times out on
        its own deadline) — shutdown never silently drops work.  When a
        durable store is attached and WAL records are pending,
        ``snapshot=True`` (the default) folds them into a final
        generation so the next :meth:`open` recovers with an empty
        replay tail — a pure memory-map warm start.  ``snapshot=False``
        skips the rotation and relies on WAL replay instead.
        """
        if self._closed:
            return
        self._closed = True
        self._scheduler.start()  # ensure someone drains the backlog
        self._queue.close()
        self._scheduler.join()
        if self._store is not None:
            try:
                if snapshot and self._store.wal_tail:
                    with self._index_lock:
                        self._store.snapshot(
                            self._require_dynamic(self._index, "snapshot")
                        )
            finally:
                self._store.close()

    def __enter__(self) -> "HammingQueryService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def epoch(self) -> int:
        with self._index_lock:
            return self._epoch

    @property
    def code_length(self) -> int:
        return self._index.code_length

    def __len__(self) -> int:
        with self._index_lock:
            return len(self._index)

    # -- query side --------------------------------------------------------

    def submit(
        self,
        kind: str,
        query: int,
        param: int,
        timeout: float | None = None,
    ) -> QueryTicket:
        """Admit one query; returns its ticket immediately.

        Raises:
            ServiceOverloadError: queue full (carries retry-after).
            ServiceClosedError: service shut down.
            InvalidParameterError / CodeLengthError: malformed query.
        """
        if self._closed:
            raise ServiceClosedError("query service is closed")
        if kind not in QUERY_KINDS:
            raise InvalidParameterError(
                f"unknown query kind {kind!r}; expected one of {QUERY_KINDS}"
            )
        if kind == "knn":
            if param < 1:
                raise InvalidParameterError("k must be positive")
            self._index._check_query(query, 0)
        else:
            self._index._check_query(query, param)
        now = time.monotonic()
        if timeout is None:
            timeout = self._default_timeout
        deadline = None if timeout is None else now + timeout
        request = QueryRequest(
            kind=kind,
            query=query,
            param=param,
            submitted_at=now,
            deadline=deadline,
        )
        try:
            self._queue.offer(request)
        except ServiceClosedError:
            raise
        except Exception:
            self._accounting.record_rejected()
            if REGISTRY.enabled:
                REGISTRY.counter(
                    "service_rejected_total",
                    "queries refused at admission",
                ).inc()
            raise
        return request.ticket

    def select(
        self, query: int, threshold: int, timeout: float | None = None
    ) -> ServedResult:
        """Blocking Hamming-select; ``value`` is a tuple of tuple ids."""
        return self._await(self.submit("select", query, threshold, timeout))

    def probe(
        self, query: int, threshold: int, timeout: float | None = None
    ) -> ServedResult:
        """Blocking join-probe; ``value`` is ``True`` iff any indexed
        code lies within ``threshold`` (the semi-join existence test)."""
        return self._await(self.submit("probe", query, threshold, timeout))

    def knn(
        self, query: int, k: int, timeout: float | None = None
    ) -> ServedResult:
        """Blocking kNN-select; ``value`` is ``((tuple_id, distance), ...)``."""
        return self._await(self.submit("knn", query, k, timeout))

    @staticmethod
    def _await(ticket: QueryTicket) -> ServedResult:
        result = ticket.result()
        assert isinstance(result, ServedResult)
        return result

    # -- writer side (Algorithm 2 through the service) ---------------------

    def insert(self, code: int, tuple_id: int) -> int:
        """H-Insert one tuple; returns the new epoch.

        With a durable store attached the mutation is WAL-logged
        *before* it touches the in-memory index (write-ahead), so a
        crash after this method returns never loses it.
        """
        self._check_open()
        with self._index_lock:
            if self._store is not None:
                self._validate_insert(code, tuple_id)
                self._store.append_insert(code, tuple_id)
            self._index.insert(code, tuple_id)
            self._epoch += 1
            return self._epoch

    def delete(self, code: int, tuple_id: int) -> int:
        """H-Delete one tuple; returns the new epoch."""
        self._check_open()
        with self._index_lock:
            if self._store is not None:
                self._validate_delete(code, tuple_id)
                self._store.append_delete(code, tuple_id)
            self._index.delete(code, tuple_id)
            self._epoch += 1
            return self._epoch

    def _validate_insert(self, code: int, tuple_id: int) -> None:
        """Re-raise what ``index.insert`` would, *before* WAL append.

        Logging a record the index then rejects would poison replay, so
        the index's own preconditions are checked first (under the
        mutex, against the same index the apply will hit, with the
        index's own error messages).
        """
        self._precheck_mutation("insert into", code)

    def _validate_delete(self, code: int, tuple_id: int) -> None:
        self._precheck_mutation("delete from", code)
        if tuple_id not in self._index.ids_for_code(code):
            raise IndexStateError(
                f"tuple {tuple_id} with code {code:#x} not present"
            )

    def _precheck_mutation(self, verb: str, code: int) -> None:
        index = self._index
        index._check_query(code, 0)
        if getattr(index, "_frozen", False):
            raise IndexStateError("merged global HA-Index is read-only")
        if not index.keeps_ids:
            raise IndexStateError(
                f"cannot {verb} a leaf-less (keep_ids=False) index"
            )

    def refresh(self, source: HammingIndex | CodeSet) -> int:
        """Copy-on-swap bulk reload; returns the new epoch.

        ``source`` may be a pre-built index or a :class:`CodeSet` (the
        replacement is then H-Built here with the served index's type
        and default parameters).  The expensive build happens *outside*
        the traversal mutex; readers only ever wait for the pointer
        swap.
        """
        self._check_open()
        if isinstance(source, HammingIndex):
            replacement = source
        else:
            replacement = type(self._index).build(source)
        if replacement.code_length != self._index.code_length:
            raise InvalidParameterError(
                f"refresh code length {replacement.code_length} != served "
                f"{self._index.code_length}"
            )
        if self._store is not None:
            self._require_dynamic(replacement, "persist")
        with self._index_lock:
            if self._store is not None:
                # A bulk reload invalidates the WAL chain (the logged
                # mutations no longer lead to this state); rotate a
                # fresh snapshot generation before serving it.
                self._store.snapshot(replacement)
            self._index = replacement
            self._epoch += 1
            epoch = self._epoch
        self._accounting.record_refresh()
        # A bulk reload obsoletes every older epoch at once; sweep them so
        # the LRU capacity is spent on the new state.
        self._cache.purge_stale(epoch)
        return epoch

    def save_snapshot(self) -> int:
        """Rotate a new durable snapshot generation; returns its number.

        Folds every logged mutation into a fresh snapshot so the next
        :meth:`open` replays an empty WAL tail (fast warm start).
        Requires a store.
        """
        self._check_open()
        if self._store is None:
            raise StoreError(
                "service has no durable store; construct it with "
                "data_dir= or open() to persist snapshots"
            )
        with self._index_lock:
            self._store.snapshot(
                self._require_dynamic(self._index, "snapshot")
            )
            return self._store.generation

    def snapshot_index(self) -> HammingIndex:
        """A deep copy of the served index at a consistent epoch.

        Mutate it offline and hand it back to :meth:`refresh` — the
        copy-on-swap maintenance cycle for bulk changes.
        """
        with self._index_lock:
            return self._index.snapshot()

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("query service is closed")

    # -- batch execution (runs on worker threads) --------------------------

    def _execute_batch(self, batch: list[QueryRequest]) -> None:
        if self._trace_batches:
            # Worker threads have no client trace; open a root here so
            # the engines' per-level spans are captured per batch.
            with trace("service.batch", size=len(batch)):
                self._execute_batch_inner(batch)
        else:
            self._execute_batch_inner(batch)

    def _execute_batch_inner(self, batch: list[QueryRequest]) -> None:
        started = time.monotonic()
        live: list[QueryRequest] = []
        timed_out = 0
        for request in batch:
            if request.deadline is not None and started > request.deadline:
                self._accounting.record_timed_out()
                timed_out += 1
                request.ticket.fail(
                    _deadline_error(request, started)
                )
                continue
            live.append(request)
        if REGISTRY.enabled and timed_out:
            REGISTRY.counter(
                "service_timed_out_total", "queries past their deadline"
            ).inc(timed_out)
        if not live:
            return
        groups: dict[tuple[str, int, int], list[QueryRequest]] = {}
        for request in live:
            groups.setdefault(request.key, []).append(request)
        executed = 0
        dedup_saved = 0
        resolutions: list[tuple[QueryRequest, ServedResult]] = []
        with self._index_lock:
            epoch = self._epoch
            index = self._index
            values: dict[tuple[str, int, int], tuple[object, bool]] = {}
            misses: list[tuple[str, int, int]] = []
            for key, requests in groups.items():
                cache_key = key + (epoch,)
                value = self._cache.get(cache_key, weight=len(requests))
                if value is MISS:
                    misses.append(key)
                else:
                    values[key] = (value, True)
            for key, value in self._run_misses(index, misses):
                executed += 1
                dedup_saved += len(groups[key]) - 1
                self._cache.put(key + (epoch,), value)
                values[key] = (value, False)
            for key, requests in groups.items():
                value, cached = values[key]
                result = ServedResult(value, epoch, cached)
                resolutions.extend(
                    (request, result) for request in requests
                )
        finished = time.monotonic()
        publish = REGISTRY.enabled
        hits = 0
        for request, result in resolutions:
            latency_ms = (finished - request.submitted_at) * 1000.0
            self._accounting.record_served(latency_ms)
            if publish:
                REGISTRY.histogram(
                    "service_request_latency_ms",
                    "submit-to-resolve latency",
                    kind=request.kind,
                ).observe(latency_ms)
                if result.cached:
                    hits += 1
            request.ticket.resolve(result)
        self._accounting.record_batch(len(live), executed, dedup_saved)
        if publish:
            REGISTRY.counter(
                "service_served_total", "queries answered"
            ).inc(len(resolutions))
            REGISTRY.counter(
                "service_cache_hits_total",
                "requests absorbed by the result cache",
            ).inc(hits)
            REGISTRY.counter(
                "service_traversals_total",
                "index traversals after cache and dedup",
            ).inc(executed)
            REGISTRY.histogram(
                "service_batch_size",
                "live queries per micro-batch",
                buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
            ).observe(float(len(live)))
        self._queue.note_service_time((finished - started) / len(live))

    def _run_misses(
        self,
        index: HammingIndex,
        misses: list[tuple[str, int, int]],
    ) -> list[tuple[tuple[str, int, int], object]]:
        """Execute the uncached query groups of one micro-batch.

        When the served index exposes ``search_batch`` (duck-typed, so
        any conforming index qualifies), the ``select`` misses sharing
        a threshold are answered by one vectorized frontier sweep
        instead of serially; ``knn`` misses sharing a ``k`` likewise
        fuse through :func:`knn_select_batch` when the index offers
        batched distance search, so the expanding-threshold rounds run
        once per batch instead of once per query.  Remaining kinds fall
        through to :func:`_run_query`.  Runs under the index mutex.
        """
        plane = index
        if self._batch_kernel and self._kernel != "auto":
            if self._kernel == "native" and hasattr(
                index, "compile_native"
            ):
                plane = index.compile_native()
            elif self._kernel == "flat" and hasattr(index, "compile"):
                plane = index.compile()
        search_batch = (
            getattr(plane, "search_batch", None)
            if self._batch_kernel
            else None
        )
        knn_batchable = self._batch_kernel and hasattr(
            plane, "search_with_distances_batch"
        )
        results: list[tuple[tuple[str, int, int], object]] = []
        rest: list[tuple[str, int, int]] = []
        if search_batch is not None:
            by_threshold: dict[int, list[tuple[str, int, int]]] = {}
            by_k: dict[int, list[tuple[str, int, int]]] = {}
            for key in misses:
                if key[0] == "select":
                    by_threshold.setdefault(key[2], []).append(key)
                elif key[0] == "knn" and knn_batchable:
                    by_k.setdefault(key[2], []).append(key)
                else:
                    rest.append(key)
            for threshold, keys in by_threshold.items():
                if len(keys) < 2:
                    rest.extend(keys)
                    continue
                id_lists = search_batch(
                    [key[1] for key in keys], threshold
                )
                results.extend(
                    (key, tuple(ids))
                    for key, ids in zip(keys, id_lists)
                )
            for k, keys in by_k.items():
                if len(keys) < 2:
                    rest.extend(keys)
                    continue
                pair_lists = knn_select_batch(
                    [key[1] for key in keys], plane, k
                )
                results.extend(
                    (key, tuple(pairs))
                    for key, pairs in zip(keys, pair_lists)
                )
        else:
            rest = misses
        results.extend((key, _run_query(index, *key)) for key in rest)
        return results

    # -- observability -----------------------------------------------------

    def stats(self) -> ServiceStats:
        """A consistent :class:`ServiceStats` snapshot."""
        with self._index_lock:
            epoch = self._epoch
        return self._accounting.snapshot(
            queue_depth=self._queue.depth(),
            queue_capacity=self._queue.capacity,
            workers=self._scheduler.workers,
            epoch=epoch,
            cache=self._cache.stats(),
            store=(
                self._store.stats() if self._store is not None else None
            ),
        )

    def publish_metrics(self) -> ServiceStats:
        """Snapshot the stats and fold them into the metrics registry.

        Respects the registry's ``enabled`` flag; returns the snapshot
        either way so callers can render it too.
        """
        stats = self.stats()
        stats.publish()
        return stats


def _run_query(
    index: HammingIndex, kind: str, query: int, param: int
) -> object:
    """Execute one deduplicated query against the locked index."""
    if kind == "select":
        return tuple(index.search(query, param))
    if kind == "probe":
        probe = getattr(index, "contains_within", None)
        if probe is not None:
            return bool(probe(query, param))
        return bool(index.search(query, param))
    if kind == "knn":
        return tuple(knn_select(query, index, param))
    raise InvalidParameterError(f"unknown query kind {kind!r}")


def _deadline_error(
    request: QueryRequest, now: float
) -> ServiceTimeoutError:
    waited_ms = (now - request.submitted_at) * 1000.0
    return ServiceTimeoutError(
        f"{request.kind} query missed its deadline after waiting "
        f"{waited_ms:.1f} ms in the admission queue"
    )
