"""Serving-side accounting: counters, a latency reservoir, ServiceStats.

Every observable the serve-bench and the admission controller need lives
here: how many queries were served/rejected/timed out, how well the
micro-batcher coalesced work (batch sizes, in-batch dedup savings), the
result cache's hit/miss/eviction tallies, and wall-clock latency
percentiles over a bounded reservoir of recent samples.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.errors import InvalidParameterError
from repro.metrics import latency_summary

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.store.store import StoreStats

#: Latency samples kept for percentile reporting (a sliding window, so a
#: long-lived service reports *recent* tail latency, not its lifetime's).
DEFAULT_LATENCY_WINDOW = 8192


@dataclass(frozen=True, slots=True)
class CacheStats:
    """Result-cache accounting at one point in time.

    ``hits``/``misses`` count *query requests* (a batch of five identical
    queries served by one cached entry counts five hits), so
    :attr:`hit_rate` is the fraction of request traffic absorbed by the
    cache.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


@dataclass(frozen=True, slots=True)
class ServiceStats:
    """A consistent snapshot of the query service's counters.

    Attributes:
        served: queries answered successfully.
        rejected: queries refused at admission (queue full).
        timed_out: queries that missed their deadline.
        batches: non-empty micro-batches executed.
        batched_requests: live queries across all executed batches.
        executed: index traversals actually performed (after cache and
            in-batch dedup).
        dedup_saved: traversals avoided because identical queries shared
            one execution within a batch.
        queue_depth: queries waiting at snapshot time.
        queue_capacity: admission bound.
        workers: worker threads in the pool.
        epoch: current index epoch (bumped by every mutation/refresh).
        refreshes: copy-on-swap snapshot refreshes applied.
        cache: result-cache accounting.
        latency: ``repro.metrics.latency_summary`` of recent queries
            (count / mean / p50 / p95 / p99 / max, milliseconds).
        store: durable-store accounting when the service persists its
            index (``None`` for a memory-only service).
    """

    served: int
    rejected: int
    timed_out: int
    batches: int
    batched_requests: int
    executed: int
    dedup_saved: int
    queue_depth: int
    queue_capacity: int
    workers: int
    epoch: int
    refreshes: int
    cache: CacheStats
    latency: dict[str, float]
    store: "StoreStats | None" = None

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def render(self) -> str:
        """Human-readable multi-line stats block (CLI and examples)."""
        cache = self.cache
        latency = self.latency
        lines = [
            "service stats",
            f"  queries:  {self.served} served, {self.rejected} rejected, "
            f"{self.timed_out} timed out",
            f"  batches:  {self.batches} "
            f"(mean size {self.mean_batch_size:.2f}, "
            f"{self.executed} traversals, "
            f"{self.dedup_saved} deduplicated in-batch)",
            f"  cache:    {cache.hits} hits / {cache.misses} misses "
            f"({cache.hit_rate * 100.0:.1f}% hit rate, "
            f"{cache.evictions} evictions, "
            f"size {cache.size}/{cache.capacity})",
            f"  latency:  p50 {latency['p50_ms']:.3f} ms, "
            f"p95 {latency['p95_ms']:.3f} ms, "
            f"p99 {latency['p99_ms']:.3f} ms "
            f"(mean {latency['mean_ms']:.3f} ms "
            f"over {int(latency['count'])} samples)",
            f"  index:    epoch {self.epoch}, "
            f"{self.refreshes} snapshot refreshes",
            f"  backlog:  {self.queue_depth}/{self.queue_capacity} queued, "
            f"{self.workers} workers",
        ]
        if self.store is not None:
            lines.append(self.store.render())
        return "\n".join(lines)

    def publish(self, registry=None) -> None:
        """Fold this snapshot into a metrics registry.

        Snapshot totals land as gauges (``service_served`` etc.), so
        republishing a newer snapshot overwrites rather than
        double-counts; latency percentiles land as
        ``service_latency_ms{quantile=...}``.  Defaults to the
        process-wide registry and respects its ``enabled`` flag.
        """
        if registry is None:
            from repro.obs import REGISTRY as registry
        if not registry.enabled:
            return
        totals = {
            "service_served": self.served,
            "service_rejected": self.rejected,
            "service_timed_out": self.timed_out,
            "service_batches": self.batches,
            "service_batched_requests": self.batched_requests,
            "service_executed": self.executed,
            "service_dedup_saved": self.dedup_saved,
            "service_refreshes": self.refreshes,
            "service_queue_depth": self.queue_depth,
            "service_queue_capacity": self.queue_capacity,
            "service_workers": self.workers,
            "service_epoch": self.epoch,
            "service_cache_hits": self.cache.hits,
            "service_cache_misses": self.cache.misses,
            "service_cache_evictions": self.cache.evictions,
            "service_cache_size": self.cache.size,
        }
        for name, value in totals.items():
            registry.gauge(name).set(value)
        for key, value in self.latency.items():
            quantile = key[:-3] if key.endswith("_ms") else key
            if quantile == "count":
                continue
            registry.gauge(
                "service_latency_ms", quantile=quantile
            ).set(value)
        if self.store is not None:
            self.store.publish(registry)


class ServiceAccounting:
    """Thread-safe mutable counters behind :class:`ServiceStats`."""

    def __init__(self, latency_window: int = DEFAULT_LATENCY_WINDOW) -> None:
        if latency_window < 1:
            raise InvalidParameterError("latency_window must be positive")
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=latency_window)
        self.served = 0
        self.rejected = 0
        self.timed_out = 0
        self.batches = 0
        self.batched_requests = 0
        self.executed = 0
        self.dedup_saved = 0
        self.refreshes = 0

    def record_batch(
        self, live: int, executed: int, dedup_saved: int
    ) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += live
            self.executed += executed
            self.dedup_saved += dedup_saved

    def record_served(self, latency_ms: float) -> None:
        with self._lock:
            self.served += 1
            self._latencies.append(latency_ms)

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def record_timed_out(self) -> None:
        with self._lock:
            self.timed_out += 1

    def record_refresh(self) -> None:
        with self._lock:
            self.refreshes += 1

    def snapshot(
        self,
        queue_depth: int,
        queue_capacity: int,
        workers: int,
        epoch: int,
        cache: CacheStats,
        store: "StoreStats | None" = None,
    ) -> ServiceStats:
        with self._lock:
            return ServiceStats(
                served=self.served,
                rejected=self.rejected,
                timed_out=self.timed_out,
                batches=self.batches,
                batched_requests=self.batched_requests,
                executed=self.executed,
                dedup_saved=self.dedup_saved,
                queue_depth=queue_depth,
                queue_capacity=queue_capacity,
                workers=workers,
                epoch=epoch,
                refreshes=self.refreshes,
                cache=cache,
                latency=latency_summary(list(self._latencies)),
                store=store,
            )
