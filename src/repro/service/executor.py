"""Parallel scatter executors for the sharded serving plane.

:class:`~repro.service.sharded.ShardedQueryService` plans which shards
a query must visit; *this* module decides how the surviving shard
operations actually run.  Three interchangeable backends share one
contract — ``scatter(tasks, dispatch)`` returns the per-task values in
task order, byte-identical across backends:

* :class:`SerialExecutor` — inline dispatch on the calling thread, the
  PR 5 behaviour and the differential baseline.
* :class:`ThreadShardExecutor` — a persistent
  :class:`~concurrent.futures.ThreadPoolExecutor`.  The flat/MIH
  kernels spend their time in numpy sweeps that release the GIL, so
  shard fan-out overlaps on multi-core hosts while sharing the parent's
  index objects (zero copies, zero coherence traffic).
* :class:`ProcessShardExecutor` — spawn-once worker processes that
  warm-start each shard themselves: from the service's
  :class:`~repro.store.store.DurableIndexStore` via
  :meth:`~repro.store.store.DurableIndexStore.open_readonly` when the
  service is durable, and otherwise from snapshots the parent writes
  once at spawn into a scratch directory — either way the shard arrives
  as a memory-mapped kernel (:func:`repro.store.snapshot.lazy_decode`),
  so spawning a worker never re-pickles an index.  Engines without a
  snapshot encoding fall back to one pickled copy per worker at spawn
  (or raise :class:`~repro.core.errors.StoreError` where the engine
  cannot be pickled at all).

Determinism
-----------
Workers may *complete* in any order; the gather side never depends on
it.  Results are slotted by task index, and trace subtrees are captured
detached on the executing thread/process
(:func:`repro.obs.trace.capture_span`) and re-attached to the parent
trace strictly in task order — so the span tree, merge order and op
accounting of a parallel scatter are identical to the serial walk.

Mutation coherence (process pool)
---------------------------------
The owning service serializes scatters and mutations under its shard
mutex, so a worker never races a write.  Every H-Insert/H-Delete is
broadcast (``mutate``) down each worker's pipe; pipes are FIFO, so a
worker applies all mutations up to epoch ``e`` before it sees a task
stamped with epoch ``e``.  Workers that load a shard lazily reconcile
by epoch: store-backed loads recover the mutations from the WAL (the
writer flushes every record before the service applies it) and skip
already-covered broadcasts; snapshot/pickle loads start at the spawn
epoch and apply the buffered tail.  A worker whose shard state cannot
reach the task's epoch answers ``stale`` and the parent re-runs that
task inline — degraded, never wrong.

Fail-fast
---------
``task_timeout`` bounds one scatter.  A process pool that blows the
deadline has its suspect workers terminated and the missing tasks run
inline (counted as fallbacks + timeouts); with ``fallback=False`` — and
always for the thread pool, whose threads cannot be killed — the
scatter raises :class:`~repro.core.errors.PoolTimeoutError` instead of
hanging the serving thread.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from multiprocessing import connection as mp_connection
from typing import Callable, Sequence

from repro.core.errors import InvalidParameterError, PoolTimeoutError
from repro.obs import REGISTRY
from repro.obs.trace import (
    Span,
    attach_span,
    capture_span,
    trace_span,
    tracing,
)

__all__ = [
    "POOL_KINDS",
    "ShardTask",
    "ShardExecutor",
    "SerialExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "make_executor",
    "default_pool_workers",
]

#: Accepted ``pool=`` values, CLI order.
POOL_KINDS = ("serial", "thread", "process")

#: Worker-side test hook: a task with this op sleeps instead of touching
#: any shard, letting the timeout/fallback path be exercised
#: deterministically (``tests/test_shard_executor.py``).
_TEST_SLEEP_OP = "_pool_test_sleep"


class ShardTask:
    """One shard operation of a scatter.

    ``epoch`` is the owning shard's epoch at plan time — the process
    pool uses it to prove a worker's copy is current before trusting
    its answer.  ``context`` feeds the seeded chaos hashes exactly as
    the serial dispatch does, so fault decisions are identical across
    backends.
    """

    __slots__ = ("sid", "op", "args", "context", "epoch")

    def __init__(
        self,
        sid: int,
        op: str,
        args: tuple,
        context: tuple,
        epoch: int = 0,
    ) -> None:
        self.sid = sid
        self.op = op
        self.args = args
        self.context = context
        self.epoch = epoch

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardTask(sid={self.sid}, op={self.op!r}, "
            f"epoch={self.epoch})"
        )


def default_pool_workers(num_shards: int) -> int:
    """Default pool width: one worker per shard, capped at the host."""
    return max(1, min(num_shards, os.cpu_count() or 1))


def modelled_wall(durations: Sequence[float], width: int) -> float:
    """Wall clock of a task list scheduled on ``width`` idle workers.

    Tasks start in submission order and each goes to the worker that
    frees up first — the discipline a pool draining a shared queue
    follows.  With one worker this degenerates to ``sum(durations)``.
    This is the same modelled-cluster-time construction the MapReduce
    benchmarks use (``repro.mapreduce.runtime``): measure real per-task
    seconds on whatever cores exist, then schedule them at the target
    width, so scatter costs are comparable across hosts.
    """
    if not durations:
        return 0.0
    if width <= 1:
        return float(sum(durations))
    heads = [0.0] * width
    for duration in durations:
        slot = min(range(width), key=heads.__getitem__)
        heads[slot] += duration
    return max(heads)


class ShardExecutor:
    """Counter plumbing shared by every backend."""

    kind = "serial"

    def __init__(self) -> None:
        self._counter_lock = threading.Lock()
        self.tasks = 0
        self.fallbacks = 0
        self.timeouts = 0
        self.busy_seconds = 0.0
        self.critical_seconds = 0.0
        #: When set, critical-path accounting schedules each scatter's
        #: measured task seconds at this width instead of the pool's
        #: real width — the Figure 9 "modelled cluster time" device:
        #: measure real per-task seconds on whatever cores exist, then
        #: ask what an N-worker pool's schedule would have cost.
        self.model_width: int | None = None

    @property
    def workers(self) -> int:
        return 0

    def counters(self) -> tuple[int, int, int]:
        """Atomic ``(tasks, fallbacks, timeouts)`` snapshot."""
        with self._counter_lock:
            return self.tasks, self.fallbacks, self.timeouts

    def seconds(self) -> tuple[float, float]:
        """Atomic ``(busy, critical)`` seconds snapshot.

        ``busy`` sums every shard task's measured execution time;
        ``critical`` sums, per scatter, the :func:`modelled_wall` of
        those task times at this pool's width.  Their ratio is the
        scatter-level parallel speedup the pool's schedule achieves
        (or would achieve, on a host with that many cores).
        """
        with self._counter_lock:
            return self.busy_seconds, self.critical_seconds

    def _record_scatter_seconds(self, durations: Sequence[float]) -> None:
        if not durations:
            return
        width = self.model_width or self.workers or 1
        wall = modelled_wall(durations, width)
        with self._counter_lock:
            self.busy_seconds += sum(durations)
            self.critical_seconds += wall

    def _count_tasks(self, amount: int) -> None:
        with self._counter_lock:
            self.tasks += amount
        if REGISTRY.enabled and amount:
            REGISTRY.counter(
                "shard_pool_tasks_total",
                "shard operations routed through the scatter executor",
                pool=self.kind,
            ).inc(amount)

    def _count_fallback(self, amount: int = 1) -> None:
        with self._counter_lock:
            self.fallbacks += amount
        if REGISTRY.enabled and amount:
            REGISTRY.counter(
                "shard_pool_fallbacks_total",
                "scatter tasks re-run inline after a pool failure",
                pool=self.kind,
            ).inc(amount)

    def _count_timeout(self) -> None:
        with self._counter_lock:
            self.timeouts += 1
        if REGISTRY.enabled:
            REGISTRY.counter(
                "shard_pool_timeouts_total",
                "scatters that exceeded the pool task timeout",
                pool=self.kind,
            ).inc()

    # -- contract ----------------------------------------------------------

    def scatter(
        self,
        tasks: Sequence[ShardTask],
        dispatch: Callable[[ShardTask], object],
    ) -> list:
        raise NotImplementedError

    def mutate(
        self, sid: int, op: str, code: int, tuple_id: int, epoch: int
    ) -> None:
        """Propagate one applied mutation (no-op outside process pools)."""

    def reload(self) -> None:
        """Refresh worker-side state after a bulk index swap (no-op)."""

    def close(self) -> None:
        """Release pool resources (idempotent; no-op for serial)."""


class SerialExecutor(ShardExecutor):
    """Inline dispatch in task order — the differential baseline."""

    kind = "serial"

    def scatter(
        self,
        tasks: Sequence[ShardTask],
        dispatch: Callable[[ShardTask], object],
    ) -> list:
        self._count_tasks(len(tasks))
        results = []
        durations = []
        for task in tasks:
            with trace_span(
                "shard.dispatch",
                shard=task.sid,
                op=task.op,
                pool=self.kind,
            ):
                started = time.perf_counter()
                results.append(dispatch(task))
                durations.append(time.perf_counter() - started)
        self._record_scatter_seconds(durations)
        return results


class ThreadShardExecutor(ShardExecutor):
    """Persistent thread pool sharing the parent's shard objects.

    Every task runs the service's own dispatch (replica pick, failover,
    hedging, accounting — all already thread-safe) under a detached
    ``shard.dispatch`` capture; the gather loop consumes futures in
    task order and re-attaches the captures in that same order.
    """

    kind = "thread"

    def __init__(
        self,
        workers: int,
        *,
        task_timeout: float | None = None,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise InvalidParameterError("pool workers must be >= 1")
        self._workers = workers
        self.task_timeout = task_timeout
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-shard"
        )

    @property
    def workers(self) -> int:
        return self._workers

    def scatter(
        self,
        tasks: Sequence[ShardTask],
        dispatch: Callable[[ShardTask], object],
    ) -> list:
        if not tasks:
            return []
        self._count_tasks(len(tasks))
        capture = tracing()

        def run(task: ShardTask):
            started = time.perf_counter()
            if not capture:
                value = dispatch(task)
                return value, None, time.perf_counter() - started
            with capture_span(
                "shard.dispatch",
                shard=task.sid,
                op=task.op,
                pool=self.kind,
            ) as span:
                value = dispatch(task)
            return value, span, time.perf_counter() - started

        futures = [self._pool.submit(run, task) for task in tasks]
        deadline = (
            None
            if self.task_timeout is None
            else time.monotonic() + self.task_timeout
        )
        results = []
        durations = []
        for position, future in enumerate(futures):
            remaining = (
                None
                if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            try:
                value, span, elapsed = future.result(timeout=remaining)
            except FutureTimeoutError:
                self._count_timeout()
                for pending in futures[position:]:
                    pending.cancel()
                raise PoolTimeoutError(
                    f"thread scatter exceeded {self.task_timeout}s "
                    f"({len(tasks) - position} of {len(tasks)} tasks "
                    "unfinished)"
                ) from None
            if span is not None:
                attach_span(span)
            results.append(value)
            durations.append(elapsed)
        self._record_scatter_seconds(durations)
        return results

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


# -- process pool ----------------------------------------------------------


def _load_worker_shard(spec: tuple, batch_kernel: bool):
    """Materialize one shard inside a worker from its spawn spec.

    Returns ``(index, applied_epoch)`` — the epoch the loaded state
    already covers, so buffered mutation broadcasts at or below it are
    skipped rather than double-applied.
    """
    mode = spec[0]
    if mode == "store":
        from repro.store.store import DurableIndexStore

        store = DurableIndexStore(spec[1])
        index = store.open_readonly()
        # The spec records (epoch, seq) as of spawn; every WAL record
        # past that seq is one epoch bump the replay already covers.
        applied = spec[2] + (store.last_seq - spec[3])
    elif mode == "snap":
        from repro.store.snapshot import lazy_decode, read_snapshot

        index = lazy_decode(read_snapshot(spec[1]))
        applied = spec[2]
    else:  # "pickle"
        import pickle

        index = pickle.loads(spec[1])
        applied = spec[2]
    if batch_kernel and len(index) and hasattr(index, "compile"):
        index.compile()
    return index, applied


def _pool_worker_main(conn, init: dict) -> None:
    """Body of one shard-pool worker process (spawn target).

    Single-threaded message loop over the worker's pipe.  Shards load
    lazily on first task; mutation broadcasts apply (or buffer) per
    shard; any load/apply failure poisons only that shard — the worker
    keeps serving the others and the parent falls back inline.
    """
    specs: dict[int, tuple] = init["specs"]
    batch_kernel: bool = init["batch_kernel"]
    widx: int = init["worker"]
    shards: dict[int, list] = {}  # sid -> [index, applied_epoch]
    pending: dict[int, list] = {}  # sid -> [(op, code, tid, epoch)]
    failed: set[int] = set()

    def ensure(sid: int):
        state = shards.get(sid)
        if state is not None:
            return state
        index, applied = _load_worker_shard(specs[sid], batch_kernel)
        for mop, code, tid, epoch in pending.pop(sid, ()):
            if epoch <= applied:
                continue
            getattr(index, mop)(code, tid)
            applied = epoch
        state = [index, applied]
        shards[sid] = state
        return state

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "task":
            _, task_id, sid, op, args, epoch, capture = message
            if op == _TEST_SLEEP_OP:
                time.sleep(args[0])
                conn.send(("ok", task_id, None, None, args[0]))
                continue
            if sid in failed:
                conn.send(("stale", task_id))
                continue
            try:
                index, applied = ensure(sid)
            except Exception as error:  # noqa: BLE001 - report, don't die
                failed.add(sid)
                conn.send(
                    ("error", task_id, f"{type(error).__name__}: {error}")
                )
                continue
            if applied != epoch:
                conn.send(("stale", task_id))
                continue
            try:
                if capture:
                    started = time.perf_counter()
                    with capture_span(
                        "shard.dispatch",
                        shard=sid,
                        op=op,
                        pool="process",
                        worker=widx,
                    ) as span:
                        with trace_span(
                            "shard.search",
                            shard=sid,
                            worker=widx,
                            op=op,
                        ):
                            value = getattr(index, op)(*args)
                    elapsed = time.perf_counter() - started
                    conn.send(
                        ("ok", task_id, value, span.as_dict(), elapsed)
                    )
                else:
                    started = time.perf_counter()
                    value = getattr(index, op)(*args)
                    elapsed = time.perf_counter() - started
                    conn.send(("ok", task_id, value, None, elapsed))
            except Exception as error:  # noqa: BLE001
                conn.send(
                    ("error", task_id, f"{type(error).__name__}: {error}")
                )
        elif kind == "mutate":
            _, sid, op, code, tid, epoch = message
            if sid in failed:
                continue
            state = shards.get(sid)
            if state is None:
                pending.setdefault(sid, []).append((op, code, tid, epoch))
                continue
            try:
                if epoch > state[1]:
                    getattr(state[0], op)(code, tid)
                    state[1] = epoch
            except Exception:  # noqa: BLE001 - poisoned copy
                failed.add(sid)
                shards.pop(sid, None)
        elif kind == "reload":
            specs = message[1]
            shards.clear()
            pending.clear()
            failed.clear()
        elif kind == "close":
            conn.close()
            return


class _Worker:
    """Parent-side handle of one pool process."""

    __slots__ = ("index", "process", "conn", "outstanding", "alive")

    def __init__(self, index: int, process, conn) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.outstanding = 0
        self.alive = True


class ProcessShardExecutor(ShardExecutor):
    """Spawn-once process pool with replica-aware task placement.

    Args:
        spec_factory: callable returning ``(specs, scratch_dir)`` —
            per-shard warm-start specs (see :func:`_load_worker_shard`)
            plus an optional scratch directory the executor owns and
            removes on reload/close.  Called at spawn and again on
            :meth:`reload`, so a post-refresh pool re-warms from the
            swapped shards.
        workers: pool width.
        task_timeout: per-scatter deadline (None = wait forever).
        faults: optional
            :class:`~repro.service.sharded.ReplicaFaultPlan` — the same
            seeded chaos seams the serial dispatch uses, applied here to
            *worker* placement: ``primary_straggles`` demotes the
            least-loaded candidate (hedged dispatch),
            ``replica_down`` skips a candidate worker (failover), with
            the last candidate always eligible (fail-open).
        accounting: duck-typed sink with ``record_hedge()`` /
            ``record_failover()`` (the service's shard accounting).
        fallback: re-run failed/stale/timed-out tasks inline via the
            service dispatch.  ``False`` turns a blown deadline into
            :class:`~repro.core.errors.PoolTimeoutError`.

    The ``spawn`` start method is deliberate: the owning service runs
    scheduler threads and the process-wide registry holds locks, so a
    forked child could inherit them mid-flight.
    """

    kind = "process"

    def __init__(
        self,
        spec_factory: Callable[[], tuple[dict, str | None]],
        workers: int,
        *,
        task_timeout: float | None = None,
        faults=None,
        accounting=None,
        fallback: bool = True,
    ) -> None:
        super().__init__()
        if workers < 1:
            raise InvalidParameterError("pool workers must be >= 1")
        self._spec_factory = spec_factory
        self._workers_wanted = workers
        self.task_timeout = task_timeout
        self._faults = faults
        self._accounting = accounting
        self._fallback = fallback
        self._ctx = multiprocessing.get_context("spawn")
        self._scratch: str | None = None
        self._pool: list[_Worker] = []
        self._spawn()

    @property
    def workers(self) -> int:
        return sum(1 for worker in self._pool if worker.alive)

    def _spawn(self) -> None:
        specs, scratch = self._spec_factory()
        self._scratch = scratch
        pool = []
        for index in range(self._workers_wanted):
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_pool_worker_main,
                args=(
                    child_conn,
                    {
                        "specs": specs,
                        "batch_kernel": True,
                        "worker": index,
                    },
                ),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            child_conn.close()
            pool.append(_Worker(index, process, parent_conn))
        self._pool = pool

    # -- placement ---------------------------------------------------------

    def _pick_worker(self, task: ShardTask) -> _Worker | None:
        """Least-outstanding-requests pick with chaos hedging/failover."""
        candidates = sorted(
            (worker for worker in self._pool if worker.alive),
            key=lambda worker: (worker.outstanding, worker.index),
        )
        if not candidates:
            return None
        faults = self._faults
        if faults is not None and len(candidates) > 1:
            if faults.primary_straggles(task.sid, task.op, *task.context):
                candidates = candidates[1:] + candidates[:1]
                if self._accounting is not None:
                    self._accounting.record_hedge()
                if REGISTRY.enabled:
                    REGISTRY.counter(
                        "shard_hedged_total",
                        "dispatches hedged away from a slow primary",
                    ).inc()
        for position, worker in enumerate(candidates):
            last = position == len(candidates) - 1
            if (
                not last
                and faults is not None
                and faults.replica_down(
                    task.sid, worker.index, task.op, *task.context
                )
            ):
                if self._accounting is not None:
                    self._accounting.record_failover()
                if REGISTRY.enabled:
                    REGISTRY.counter(
                        "shard_failover_total",
                        "dispatches failed over to another replica",
                    ).inc()
                continue
            return worker
        return candidates[-1]

    def _kill(self, worker: _Worker) -> None:
        worker.alive = False
        worker.outstanding = 0
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already gone
            pass
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=1.0)

    # -- scatter -----------------------------------------------------------

    def scatter(
        self,
        tasks: Sequence[ShardTask],
        dispatch: Callable[[ShardTask], object],
    ) -> list:
        if not tasks:
            return []
        self._count_tasks(len(tasks))
        capture = tracing()
        results: list = [None] * len(tasks)
        spans: list[dict | None] = [None] * len(tasks)
        durations: list[float] = []
        done = [False] * len(tasks)
        needs_fallback: set[int] = set()
        owners: dict[int, _Worker] = {}
        remaining: set[int] = set()

        for position, task in enumerate(tasks):
            worker = self._pick_worker(task)
            if worker is None:
                needs_fallback.add(position)
                continue
            try:
                worker.conn.send(
                    (
                        "task",
                        position,
                        task.sid,
                        task.op,
                        task.args,
                        task.epoch,
                        capture,
                    )
                )
            except (OSError, ValueError):
                self._kill(worker)
                needs_fallback.add(position)
                continue
            worker.outstanding += 1
            owners[position] = worker
            remaining.add(position)

        deadline = (
            None
            if self.task_timeout is None
            else time.monotonic() + self.task_timeout
        )
        timed_out = False
        while remaining:
            conns = {
                worker.conn: worker
                for worker in set(owners[p] for p in remaining)
                if worker.alive
            }
            if not conns:
                break
            timeout = None
            if deadline is not None:
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    timed_out = True
                    break
            ready = mp_connection.wait(list(conns), timeout)
            if not ready:
                timed_out = True
                break
            for conn in ready:
                worker = conns[conn]
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    self._kill(worker)
                    for position in [
                        p for p in remaining if owners[p] is worker
                    ]:
                        remaining.discard(position)
                        needs_fallback.add(position)
                    continue
                status, task_id = message[0], message[1]
                if task_id not in remaining or owners[task_id] is not worker:
                    continue  # late duplicate; already resolved
                worker.outstanding -= 1
                remaining.discard(task_id)
                if status == "ok":
                    results[task_id] = message[2]
                    spans[task_id] = message[3]
                    durations.append(message[4])
                    done[task_id] = True
                else:  # "stale" / "error"
                    needs_fallback.add(task_id)

        if timed_out:
            self._count_timeout()
            suspects = {owners[p] for p in remaining}
            for worker in suspects:
                self._kill(worker)
            needs_fallback.update(remaining)
            remaining.clear()
            if not self._fallback:
                raise PoolTimeoutError(
                    f"process scatter exceeded {self.task_timeout}s "
                    f"({len(needs_fallback)} of {len(tasks)} tasks "
                    "unfinished)"
                )
        needs_fallback.update(remaining)

        # Deterministic gather: walk tasks in order, attaching worker
        # span subtrees and running any fallbacks inline (their spans
        # attach naturally — the parent trace is open on this thread).
        self._count_fallback(len(needs_fallback))
        for position, task in enumerate(tasks):
            if done[position]:
                if capture and spans[position] is not None:
                    attach_span(Span.from_dict(spans[position]))
                continue
            with trace_span(
                "shard.dispatch",
                shard=task.sid,
                op=task.op,
                pool=self.kind,
                fallback=True,
            ):
                started = time.perf_counter()
                results[position] = dispatch(task)
                durations.append(time.perf_counter() - started)
        self._record_scatter_seconds(durations)
        return results

    # -- coherence / lifecycle ---------------------------------------------

    def mutate(
        self, sid: int, op: str, code: int, tuple_id: int, epoch: int
    ) -> None:
        for worker in self._pool:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("mutate", sid, op, code, tuple_id, epoch))
            except (OSError, ValueError):
                self._kill(worker)

    def reload(self) -> None:
        """Re-warm every worker from fresh specs (post-refresh).

        Dead workers are respawned; live ones keep their process (and
        their imports) and just drop shard state.
        """
        old_scratch = self._scratch
        specs, scratch = self._spec_factory()
        self._scratch = scratch
        for worker in list(self._pool):
            if not worker.alive:
                continue
            try:
                worker.conn.send(("reload", specs))
            except (OSError, ValueError):
                self._kill(worker)
        for position, worker in enumerate(self._pool):
            if worker.alive:
                continue
            parent_conn, child_conn = self._ctx.Pipe()
            process = self._ctx.Process(
                target=_pool_worker_main,
                args=(
                    child_conn,
                    {
                        "specs": specs,
                        "batch_kernel": True,
                        "worker": worker.index,
                    },
                ),
                daemon=True,
                name=f"repro-shard-{worker.index}",
            )
            process.start()
            child_conn.close()
            self._pool[position] = _Worker(
                worker.index, process, parent_conn
            )
        if old_scratch and old_scratch != scratch:
            shutil.rmtree(old_scratch, ignore_errors=True)

    def close(self) -> None:
        for worker in self._pool:
            if not worker.alive:
                continue
            try:
                worker.conn.send(("close",))
            except (OSError, ValueError):
                pass
        for worker in self._pool:
            if worker.process.is_alive():
                worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - wedged
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            worker.alive = False
        if self._scratch:
            shutil.rmtree(self._scratch, ignore_errors=True)
            self._scratch = None


def make_executor(
    pool: str,
    *,
    workers: int,
    spec_factory: Callable[[], tuple[dict, str | None]] | None = None,
    task_timeout: float | None = None,
    faults=None,
    accounting=None,
) -> ShardExecutor:
    """Build the named backend (``serial`` / ``thread`` / ``process``)."""
    if pool == "serial":
        return SerialExecutor()
    if pool == "thread":
        return ThreadShardExecutor(workers, task_timeout=task_timeout)
    if pool == "process":
        if spec_factory is None:
            raise InvalidParameterError(
                "process pool requires a shard spec factory"
            )
        return ProcessShardExecutor(
            spec_factory,
            workers,
            task_timeout=task_timeout,
            faults=faults,
            accounting=accounting,
        )
    raise InvalidParameterError(
        f"unknown pool {pool!r}; expected one of {POOL_KINDS}"
    )
