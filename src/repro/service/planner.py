"""Scatter-gather planning: Gray-range pruning for sharded serving.

The distributed pipelines (Section 5.1) split a dataset across workers
by *Gray-rank ranges*: sampled equi-depth pivots become the boundaries
of a :class:`~repro.mapreduce.partitioner.RangePartitioner`, and a
tuple with code ``U`` lands on the shard whose range contains
``gray_rank(U)``.  The sharded serving plane reuses exactly that
partitioning — which means a query need not be broadcast: a shard whose
Gray range provably cannot intersect the query's Hamming-``h`` ball can
be skipped entirely.

The pruning bound
-----------------
A shard holds the codes ``{c : lo <= gray_rank(c) <= hi}`` for some
rank interval ``[lo, hi]``.  The shard can contain an answer to
``h-select(q, h)`` only if

    min over s in [lo, hi] of hamming(to_gray(s), q) <= h.

That minimum is computed *exactly* by :func:`min_hamming_to_gray_range`.
Writing ``s_i`` for bit ``i`` of the rank ``s``, the Gray encoding
satisfies ``to_gray(s)_i = s_i XOR s_{i+1}`` — so a rank *prefix*
(top bits fixed, low bits free) fixes the Gray bits strictly above the
lowest fixed position, while the free suffix can always be completed
mismatch-free by choosing ``s_i = s_{i+1} XOR q_i`` downward.  The
rank interval ``[lo, hi]`` tiles into at most ``2 * code_length`` such
prefix subcubes — walk down ``lo`` (resp. ``hi``) from the bounds'
highest differing bit and, wherever its bit is 0 (resp. 1), flip that
bit and free everything below — so the interval minimum is the best of:
zero when ``gray_rank(q)`` itself lies in the interval, the two tight
endpoints ``hamming(to_gray(lo), q)`` / ``hamming(to_gray(hi), q)``,
and one popcount-arithmetic candidate per subcube.  ``O(code_length)``
total, with an O(1) shared-prefix lower bound that rejects most
prunable shards immediately; results are memoized per (query,
threshold) plan.

Soundness is by construction — the DP ranges over exactly the ranks in
``[lo, hi]`` and the true Hamming cost of each — and because the value
is the exact minimum, the pruning is also *maximally tight* for
interval-shaped shards (``tests/test_shard_planner.py`` cross-checks
both directions against brute force).

Occupied-range tightening
-------------------------
Pivot intervals tile the whole rank space ``[0, 2^L)``, including vast
regions holding no data.  The planner therefore intersects each shard's
pivot interval with its *occupied* range — the smallest/largest Gray
rank actually stored there.  Inserts widen the occupied range; deletes
leave it untouched (conservative, hence still sound); a bulk refresh
recomputes it exactly.  On clustered datasets this is what makes the
bound bite: shards owning other clusters sit far away in Gray-rank
space and are pruned for small ``h``.

When every (non-empty) shard passes the bound the plan degenerates to a
broadcast — the explicit fallback for vacuous bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.errors import InvalidParameterError
from repro.core.gray import gray_rank, to_gray
from repro.mapreduce.partitioner import RangePartitioner


def min_hamming_to_gray_range(
    query: int,
    code_length: int,
    lo: int,
    hi: int,
    limit: int | None = None,
    *,
    _query_rank: int | None = None,
) -> int:
    """``min(hamming(to_gray(s), query))`` over ranks ``lo <= s <= hi``.

    Bounds are clamped to the rank space ``[0, 2^code_length - 1]``; an
    empty interval returns ``code_length + 1`` (greater than any
    feasible threshold, so an empty shard is always pruned).

    Without ``limit`` the returned value is the exact minimum.  With
    ``limit`` the function runs in decision mode: the returned value
    ``v`` only guarantees ``(v <= limit) == (true minimum <= limit)``,
    which is all a pruning decision at threshold ``limit`` needs — the
    shared-prefix lower bound then rejects most prunable shards in
    O(1), without walking the bounds at all.
    """
    top = (1 << code_length) - 1
    lo = max(lo, 0)
    hi = min(hi, top)
    if lo > hi:
        return code_length + 1
    # to_gray is a bijection, so hamming(to_gray(s), query) == 0 has the
    # unique witness s = gray_rank(query); member queries hit this.
    # _query_rank lets the planner amortize that inverse over shards.
    rank = gray_rank(query) if _query_rank is None else _query_rank
    if lo <= rank <= hi:
        return 0
    delta_lo = to_gray(lo) ^ query
    if lo == hi:
        return delta_lo.bit_count()
    # Highest rank bit where the bounds differ.  Every rank in [lo, hi]
    # shares the bound bits above it, hence (gray bit i = s_i XOR
    # s_{i+1}) also the Gray bits strictly above it — their mismatches
    # against the query are a lower bound on the whole interval.
    diverge = (lo ^ hi).bit_length() - 1
    shared = (delta_lo >> (diverge + 1)).bit_count()
    if limit is not None and shared > limit:
        return shared
    # [lo, hi] tiles into at most 2 * diverge subcubes: walk down lo
    # (resp. hi); at each position where its bit is 0 (resp. 1), flip
    # the bit and free everything below.  A free suffix can always be
    # chosen to match the query exactly (pick s_i = s_{i+1} XOR q_i
    # downward), so a subcube branching at `position` costs the tight
    # walk's Gray mismatches above `position` plus the complement of
    # its mismatch at `position`.  Running prefix popcounts of
    # delta_lo / delta_hi give every candidate in O(1) each.
    delta_hi = to_gray(hi) ^ query
    best = delta_lo.bit_count()
    tight_hi = delta_hi.bit_count()
    if tight_hi < best:
        best = tight_hi
    run_lo = (delta_lo >> diverge).bit_count()
    run_hi = (delta_hi >> diverge).bit_count()
    for position in range(diverge - 1, -1, -1):
        if not (lo >> position) & 1:
            candidate = run_lo + 1 - ((delta_lo >> position) & 1)
            if candidate < best:
                best = candidate
        if (hi >> position) & 1:
            candidate = run_hi + 1 - ((delta_hi >> position) & 1)
            if candidate < best:
                best = candidate
        if best == 0 or (limit is not None and best <= limit):
            return best
        run_lo += (delta_lo >> position) & 1
        run_hi += (delta_hi >> position) & 1
    return best


@dataclass(frozen=True, slots=True)
class ShardPlan:
    """Outcome of planning one query against the shard map.

    Attributes:
        contacted: shard ids the query must visit, in ascending order.
        pruned: shards skipped by the Gray-range bound (empty shards
            count as pruned — there is nothing to visit).
        broadcast: True when the bound was vacuous for this query, i.e.
            every non-empty shard must be contacted.
    """

    contacted: tuple[int, ...]
    pruned: int
    broadcast: bool


class ScatterGatherPlanner:
    """Routes codes to shards and prunes shards per query.

    Args:
        pivots: interior Gray-rank boundaries (``num_shards - 1``
            non-decreasing values), exactly as produced by
            :func:`repro.distributed.pivots.select_pivots`.
        code_length: bit length of the served codes (rank space is
            ``[0, 2^code_length)``).

    The planner keeps, per shard, the intersection of the pivot
    interval with the occupied Gray-rank range; :meth:`observe` widens
    it on insert, :meth:`reset_range` recomputes it on refresh.
    Thread safety is the caller's concern — the serving layer only
    touches the planner under its shard mutex.
    """

    def __init__(self, pivots: Sequence[int], code_length: int) -> None:
        if code_length < 1:
            raise InvalidParameterError("code length must be positive")
        self._partitioner = RangePartitioner(pivots)
        self._code_length = code_length
        #: Half-open pivot intervals [lo, hi) per shard.
        self._intervals = self._partitioner.intervals(1 << code_length)
        #: Inclusive occupied (min_rank, max_rank) per shard; None = empty.
        self._occupied: list[tuple[int, int] | None] = [
            None for _ in self._intervals
        ]
        #: (query, threshold) -> ShardPlan memo; plans depend only on
        #: the occupied ranges, so any range change clears it.
        self._plan_memo: dict[tuple[int, int], ShardPlan] = {}

    @property
    def num_shards(self) -> int:
        return len(self._intervals)

    @property
    def code_length(self) -> int:
        return self._code_length

    @property
    def pivots(self) -> list[int]:
        return self._partitioner.pivots

    def interval(self, shard: int) -> tuple[int, int]:
        """The shard's half-open pivot interval ``[lo, hi)`` of ranks."""
        return self._intervals[shard]

    def occupied(self, shard: int) -> tuple[int, int] | None:
        """Inclusive occupied rank range, or ``None`` for an empty shard."""
        return self._occupied[shard]

    # -- routing (writes) --------------------------------------------------

    def route(self, code: int) -> int:
        """Owning shard of a code under Gray-rank range partitioning."""
        return self._partitioner(gray_rank(code), self.num_shards)

    def observe(self, shard: int, code: int) -> None:
        """Widen the shard's occupied range to cover ``code`` (insert)."""
        rank = gray_rank(code)
        occupied = self._occupied[shard]
        if occupied is None:
            self._occupied[shard] = (rank, rank)
            self._plan_memo.clear()
        else:
            low, high = occupied
            if rank < low or rank > high:
                self._occupied[shard] = (min(low, rank), max(high, rank))
                self._plan_memo.clear()

    def reset_range(self, shard: int, codes: Sequence[int]) -> None:
        """Recompute the occupied range exactly from the shard's codes."""
        if not codes:
            self._occupied[shard] = None
            self._plan_memo.clear()
            return
        ranks = [gray_rank(code) for code in codes]
        self._occupied[shard] = (min(ranks), max(ranks))
        self._plan_memo.clear()

    # -- pruning (reads) ---------------------------------------------------

    def min_distance(
        self, shard: int, query: int, limit: int | None = None
    ) -> int:
        """Exact lower bound on ``hamming(c, query)`` over the shard's
        possible codes; ``code_length + 1`` for an empty shard.

        ``limit`` switches to decision mode, exactly as documented on
        :func:`min_hamming_to_gray_range`.
        """
        occupied = self._occupied[shard]
        if occupied is None:
            return self._code_length + 1
        low, high = occupied
        return min_hamming_to_gray_range(
            query, self._code_length, low, high, limit
        )

    def _min_distance_ranked(
        self, shard: int, query: int, rank: int, limit: int
    ) -> int:
        """:meth:`min_distance` with the query rank precomputed."""
        occupied = self._occupied[shard]
        if occupied is None:
            return self._code_length + 1
        low, high = occupied
        return min_hamming_to_gray_range(
            query, self._code_length, low, high, limit, _query_rank=rank
        )

    def plan(self, query: int, threshold: int) -> ShardPlan:
        """Shards that may hold codes within ``threshold`` of ``query``.

        A shard is contacted iff its Gray-range lower bound does not
        exceed the threshold; when no shard can be excluded the plan is
        flagged as a broadcast (the vacuous-bound fallback).  Plans are
        memoized until any occupied range changes (the serving layer
        re-plans on every cache lookup, so the memo is the hot path).
        """
        memo_key = (query, threshold)
        memoized = self._plan_memo.get(memo_key)
        if memoized is not None:
            return memoized
        contacted = []
        occupied_shards = 0
        rank = gray_rank(query)
        for shard in range(self.num_shards):
            if self._occupied[shard] is None:
                continue
            occupied_shards += 1
            if (
                self._min_distance_ranked(shard, query, rank, threshold)
                <= threshold
            ):
                contacted.append(shard)
        plan = ShardPlan(
            contacted=tuple(contacted),
            pruned=self.num_shards - len(contacted),
            broadcast=len(contacted) == occupied_shards,
        )
        if len(self._plan_memo) >= 65536:
            self._plan_memo.clear()
        self._plan_memo[memo_key] = plan
        return plan

    def plan_batch(
        self, queries: Sequence[int], threshold: int
    ) -> tuple[list[ShardPlan], dict[int, list[int]]]:
        """Plan many queries at one threshold in one pass.

        Returns the per-query plans plus the scatter's transpose —
        ``{shard: [query positions]}`` with positions ascending — which
        is exactly the shape the batched scatter sites (``join``, the
        micro-batch ``select`` path) need to issue one ``search_batch``
        per shard.  Shares the per-query memo with :meth:`plan`.
        """
        plans = [self.plan(query, threshold) for query in queries]
        by_shard: dict[int, list[int]] = {}
        for position, plan in enumerate(plans):
            for sid in plan.contacted:
                by_shard.setdefault(sid, []).append(position)
        return plans, by_shard
