"""Index verification against the brute-force oracle.

A downstream user swapping parameters (window sizes, segment widths,
custom hash functions) wants a one-call check that an index still
answers exactly.  :func:`verify_index` replays a query sample against a
vectorized linear scan and raises on the first divergence;
:func:`verify_all_families` sweeps every registered index family.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.bitvector import CodeSet, batch_hamming_wide, batch_select
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.index_base import HammingIndex


@dataclass(frozen=True, slots=True)
class VerificationReport:
    """Outcome of a verification run."""

    queries_checked: int
    thresholds: tuple[int, ...]
    total_matches: int

    def __str__(self) -> str:
        return (
            f"verified {self.queries_checked} queries x "
            f"thresholds {list(self.thresholds)} "
            f"({self.total_matches} matches cross-checked)"
        )


def _oracle(codes: CodeSet, query: int, threshold: int) -> list[int]:
    ids = codes.ids
    if codes.length <= 64:
        positions = batch_select(codes.packed(), query, threshold)
    else:
        distances = batch_hamming_wide(codes.packed_wide(), query)
        positions = (distances <= threshold).nonzero()[0]
    return sorted(ids[i] for i in positions)


def verify_index(
    index: HammingIndex,
    codes: CodeSet,
    num_queries: int = 20,
    thresholds: tuple[int, ...] = (0, 2, 4),
    seed: int = 0,
) -> VerificationReport:
    """Cross-check ``index.search`` against a linear scan of ``codes``.

    Queries are half dataset members, half uniform random.  Raises
    :class:`IndexStateError` on the first mismatch; returns a report
    when everything agrees.
    """
    if num_queries < 1:
        raise InvalidParameterError("num_queries must be positive")
    if index.code_length != codes.length:
        raise IndexStateError(
            f"index is {index.code_length}-bit but codes are "
            f"{codes.length}-bit"
        )
    rng = random.Random(seed)
    queries = []
    for position in range(num_queries):
        if position % 2 == 0 and len(codes):
            queries.append(codes[rng.randrange(len(codes))])
        else:
            queries.append(rng.getrandbits(codes.length))
    total_matches = 0
    for query in queries:
        for threshold in thresholds:
            expected = _oracle(codes, query, threshold)
            got = sorted(index.search(query, threshold))
            if got != expected:
                missing = set(expected) - set(got)
                spurious = set(got) - set(expected)
                raise IndexStateError(
                    f"{type(index).__name__} diverged at "
                    f"query={query:#x} h={threshold}: "
                    f"{len(missing)} missing, {len(spurious)} spurious"
                )
            total_matches += len(expected)
    return VerificationReport(
        queries_checked=num_queries,
        thresholds=tuple(thresholds),
        total_matches=total_matches,
    )


def verify_all_families(
    codes: CodeSet,
    num_queries: int = 10,
    thresholds: tuple[int, ...] = (0, 2, 4),
    seed: int = 0,
) -> dict[str, VerificationReport]:
    """Build and verify every registered index family over ``codes``."""
    from repro.core.select import INDEX_FAMILIES

    reports = {}
    for name, builder in INDEX_FAMILIES.items():
        index = builder(codes)
        reports[name] = verify_index(
            index, codes,
            num_queries=num_queries, thresholds=thresholds, seed=seed,
        )
    return reports
