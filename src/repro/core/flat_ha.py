"""Compiled flat query plane for the Dynamic HA-Index.

:class:`FlatHAIndex` is what :meth:`DynamicHAIndex.compile` produces: the
pattern tree flattened into level-major numpy arrays — per-node
``bits``/``mask`` uint64 word matrices (plus 1-D fast-path columns for
codes up to 64 bits), contiguous child slot ranges, and a leaf table
laid out in DFS order so every node's leaf descendants form one
contiguous range.  H-Search (Algorithm 3) then runs as a vectorized
frontier sweep: each BFS level is a single XOR + popcount over the whole
live frontier with boolean-mask pruning, instead of one Python-level
distance computation per node.  The subtree-qualifies shortcut (a node
whose partial distance plus uncovered bits is within the threshold
contributes its whole leaf range without further distance tests) and the
buffered-insert side table are preserved, so results and
``last_search_ops`` accounting match the node walk exactly.

The kernel is immutable: it snapshots the source index (including its
insert buffer) at compile time, and ``DynamicHAIndex.compile`` caches it
keyed by ``mutation_count`` so a stale kernel is never consulted after
H-Insert/H-Delete.  It contains only numpy arrays and plain ints, which
makes it cheap to pickle — the property the parallel join path relies on
to ship the probe kernel into a process pool.

On top of the single-query sweep, :meth:`search_batch` shares one
frontier pass across a whole micro-batch: the live frontier is a flat
list of (node, query) pairs, so each level is one distance pass over
exactly the pairs every per-query walk would examine, with the per-level
dispatch overhead amortized across the batch.  This is what lets the
online service execute coalesced micro-batches in a handful of numpy
calls per index level.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from time import perf_counter

from repro.core.bitvector import popcount64
from repro.core.errors import IndexStateError
from repro.core.index_base import HammingIndex, IndexStats
from repro.obs import note_search
from repro.obs.trace import record_span, trace_span, tracing


def _note_level(
    depth: int, examined: int, expanded: int, started: float
) -> None:
    """Attach one per-BFS-level span of a traced frontier sweep."""
    record_span(
        "h_search.level",
        perf_counter() - started,
        ops=examined,
        depth=depth,
        examined=examined,
        expanded=expanded,
    )

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.dynamic_ha import DynamicHAIndex

_WORD_MASK = (1 << 64) - 1


def _pack_column(values: Sequence[int], words: int) -> np.ndarray:
    """Pack arbitrary-width ints into an (n, words) ``uint64`` matrix."""
    packed = np.empty((len(values), words), dtype=np.uint64)
    if not values:
        return packed
    column = np.array(values, dtype=object)
    for word in range(words):
        packed[:, word] = (
            (column >> (word * 64)) & _WORD_MASK
        ).astype(np.uint64)
    return packed


def _combine_words(matrix: np.ndarray) -> list[int]:
    """Recombine an (n, words) uint64 matrix into arbitrary-width ints."""
    values = [0] * matrix.shape[0]
    for word in range(matrix.shape[1]):
        shift = word * 64
        values = [
            value | (chunk << shift)
            for value, chunk in zip(values, matrix[:, word].tolist())
        ]
    return values


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ``arange(s, s + c)`` for every (start, count) pair."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    shifts = np.cumsum(counts) - counts
    return np.repeat(starts - shifts, counts) + np.arange(
        total, dtype=np.int64
    )


class FlatHAIndex(HammingIndex):
    """Array-backed, read-only compilation of a :class:`DynamicHAIndex`.

    Construct through :meth:`DynamicHAIndex.compile` (cached) or
    directly from a source index.  Queries answer exactly like the node
    walk; :meth:`insert`/:meth:`delete` raise — mutate the source index
    and recompile.
    """

    #: Engine name used in trace spans and ``note_search`` metrics;
    #: subclasses (the native plane) override it so observability
    #: attributes work to the engine that actually answered.
    ENGINE_LABEL = "flat"

    def __init__(self, source: "DynamicHAIndex") -> None:
        super().__init__(source.code_length)
        self._keep_ids = source.keeps_ids
        #: Source ``mutation_count`` at compile time; the compile cache
        #: compares it to detect staleness.
        self.source_mutations = source.mutation_count
        self._size = len(source)
        self._words = (source.code_length + 63) // 64
        self._flatten(source)
        self._snapshot_buffer(source)

    def _snapshot_buffer(self, source: "DynamicHAIndex") -> None:
        buffer = list(source._buffer)
        self._buf_codes: tuple[int, ...] = tuple(code for code, _ in buffer)
        self._buf_ids = np.array(
            [tuple_id for _, tuple_id in buffer], dtype=np.int64
        )
        self._buf_words = _pack_column(list(self._buf_codes), self._words)

    @classmethod
    def rebuffered(
        cls, cached: "FlatHAIndex", source: "DynamicHAIndex"
    ) -> "FlatHAIndex":
        """A new kernel sharing ``cached``'s flattened tree arrays.

        Valid only when the source's tree is unchanged since ``cached``
        was compiled (:meth:`DynamicHAIndex.compile` checks the tree
        version); the insert buffer is snapshotted fresh.  The flat
        arrays are never mutated, so sharing them is safe.
        """
        clone = cls.__new__(cls)
        clone.__dict__.update(cached.__dict__)
        clone.source_mutations = source.mutation_count
        clone._size = len(source)
        clone.last_search_ops = 0
        clone._snapshot_buffer(source)
        return clone

    # -- flattening --------------------------------------------------------

    def _flatten(self, source: "DynamicHAIndex") -> None:
        """Lay the pattern tree out as level-major flat arrays.

        DFS assigns every node a contiguous leaf-descendant range;
        nodes are then grouped by BFS depth (their level), preserving
        DFS order inside each level.  Because every depth-(l+1) node in
        a subtree is a direct child of its depth-l root, a node's
        children occupy one contiguous slot range in the next level —
        so expansion needs no edge table, just (first child, count).
        """
        length = self._code_length
        words = self._words
        nodes_by_depth: list[list[object]] = []
        depth_seen: set[int] = set()
        start_of: dict[int, int] = {}
        span: dict[int, tuple[int, int]] = {}
        leaves: list[object] = []
        stack = [(node, 0, False) for node in reversed(source._top)]
        while stack:
            node, depth, done = stack.pop()
            key = id(node)
            if done:
                span[key] = (start_of[key], len(leaves))
                continue
            if key in depth_seen:
                raise IndexStateError(
                    "cannot compile an index with shared subtrees"
                )
            depth_seen.add(key)
            while len(nodes_by_depth) <= depth:
                nodes_by_depth.append([])
            nodes_by_depth[depth].append(node)
            start_of[key] = len(leaves)
            if not node.children:
                leaves.append(node)
                span[key] = (start_of[key], len(leaves))
                continue
            stack.append((node, depth, True))
            for child in reversed(node.children):
                stack.append((child, depth + 1, False))

        order: list[object] = []
        level_offsets = [0]
        for level in nodes_by_depth:
            order.extend(level)
            level_offsets.append(len(order))
        slot_of = {id(node): slot for slot, node in enumerate(order)}
        n = len(order)

        self._level_offsets = level_offsets
        top_count = level_offsets[1] if len(level_offsets) > 1 else 0
        self._top_slots = np.arange(top_count, dtype=np.int64)
        self._bits = _pack_column([node.bits for node in order], words)
        self._masks = _pack_column([node.mask for node in order], words)
        if words == 1:
            # Contiguous single-word columns: the sweeps gather these
            # and run xor/and in place, with no 2-D striding.
            self._bits1 = np.ascontiguousarray(self._bits[:, 0])
            self._masks1 = np.ascontiguousarray(self._masks[:, 0])
        else:
            self._bits1 = None
            self._masks1 = None
        self._uncovered = np.array(
            [length - node.mask.bit_count() for node in order],
            dtype=np.int64,
        )
        self._frequency = np.array(
            [node.frequency for node in order], dtype=np.int64
        )
        self._is_leaf = np.array(
            [not node.children for node in order], dtype=bool
        )
        self._leaf_lo = np.empty(n, dtype=np.int64)
        self._leaf_hi = np.empty(n, dtype=np.int64)
        child_first = np.zeros(n, dtype=np.int64)
        child_count = np.empty(n, dtype=np.int64)
        edges = 0
        for slot, node in enumerate(order):
            lo, hi = span[id(node)]
            self._leaf_lo[slot] = lo
            self._leaf_hi[slot] = hi
            child_count[slot] = len(node.children)
            if node.children:
                first = slot_of[id(node.children[0])]
                child_first[slot] = first
                if slot_of[id(node.children[-1])] != (
                    first + len(node.children) - 1
                ):
                    raise IndexStateError(
                        "children not contiguous in level layout"
                    )
                edges += len(node.children)
        self._child_first = child_first
        self._child_count = child_count
        self._edges = edges
        # uint8 copy of the uncovered-bit counts: keeps the one-word
        # cover test (popcount + uncovered vs threshold) entirely in
        # uint8 arithmetic.  Only valid when the length fits.
        self._unc8 = (
            self._uncovered.astype(np.uint8) if length <= 255 else None
        )
        # H-Build gives every leaf a fully covered pattern, so the
        # subtree-qualifies test alone decides collection (a qualifying
        # leaf is always "covered").  Kept as a compile-time flag with a
        # general fallback in case a construction path ever produces a
        # partially covered leaf.
        leaf_uncovered = self._uncovered[self._is_leaf]
        self._cover_is_collect = (
            bool((leaf_uncovered == 0).all()) if leaf_uncovered.size
            else True
        )
        # First slot of the deepest level, when that level consists
        # entirely of fully covered leaves (the common H-Build shape).
        # A frontier there needs no mask, no uncovered bits, and no
        # expansion — the sweeps take a reduced final step.
        last_lo = level_offsets[-2] if len(level_offsets) > 1 else 0
        if (
            n
            and bool(self._is_leaf[last_lo:].all())
            and bool((self._uncovered[last_lo:] == 0).all())
        ):
            self._leaf_level_start = last_lo
        else:
            self._leaf_level_start = n + 1

        self._leaf_codes: tuple[int, ...] = tuple(
            leaf.bits for leaf in leaves
        )
        self._leaf_words = _pack_column(list(self._leaf_codes), words)
        id_offsets = np.zeros(len(leaves) + 1, dtype=np.int64)
        ids_flat: list[int] = []
        for position, leaf in enumerate(leaves):
            ids_flat.extend(leaf.ids)
            id_offsets[position + 1] = len(ids_flat)
        self._id_offsets = id_offsets
        self._ids_flat = np.array(ids_flat, dtype=np.int64)

    # -- persistence (repro.store snapshots) --------------------------------

    #: Arrays serialized by ``to_state`` in this exact order; the
    #: snapshot format stores them as raw little-endian blobs.
    STATE_ARRAYS = (
        "bits", "masks", "frequency", "child_first", "child_count",
        "leaf_lo", "leaf_hi", "id_offsets", "ids_flat", "buf_ids",
        "buf_words",
    )

    def to_state(self) -> dict:
        """The kernel's persistent state: scalars plus flat arrays.

        Everything else (`_uncovered`, the leaf table, the fast-path
        columns, ...) is derived deterministically by
        :meth:`from_state`, so snapshots store only what cannot be
        recomputed.
        """
        return {
            "code_length": self._code_length,
            "keep_ids": self._keep_ids,
            "size": self._size,
            "words": self._words,
            "level_offsets": list(self._level_offsets),
            "bits": self._bits,
            "masks": self._masks,
            "frequency": self._frequency,
            "child_first": self._child_first,
            "child_count": self._child_count,
            "leaf_lo": self._leaf_lo,
            "leaf_hi": self._leaf_hi,
            "id_offsets": self._id_offsets,
            "ids_flat": self._ids_flat,
            "buf_ids": self._buf_ids,
            "buf_words": self._buf_words,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FlatHAIndex":
        """Rebuild a kernel from :meth:`to_state` output.

        Derived fields are recomputed exactly as :meth:`_flatten`
        produces them, so a restored kernel answers byte-identically
        to the one that was saved.
        """
        self = cls.__new__(cls)
        length = int(state["code_length"])
        words = int(state["words"])
        self._code_length = length
        self._keep_ids = bool(state["keep_ids"])
        self._size = int(state["size"])
        self._words = words
        self._mutations = 0
        self.source_mutations = 0
        self.last_search_ops = 0
        self._level_offsets = [int(v) for v in state["level_offsets"]]
        bits = np.ascontiguousarray(state["bits"], dtype=np.uint64)
        masks = np.ascontiguousarray(state["masks"], dtype=np.uint64)
        self._bits = bits.reshape(-1, words)
        self._masks = masks.reshape(-1, words)
        for name in (
            "frequency", "child_first", "child_count",
            "leaf_lo", "leaf_hi", "id_offsets", "ids_flat", "buf_ids",
        ):
            setattr(
                self,
                f"_{name}",
                np.ascontiguousarray(state[name], dtype=np.int64),
            )
        self._buf_words = np.ascontiguousarray(
            state["buf_words"], dtype=np.uint64
        ).reshape(-1, words)
        n = self._bits.shape[0]
        if words == 1:
            self._bits1 = np.ascontiguousarray(self._bits[:, 0])
            self._masks1 = np.ascontiguousarray(self._masks[:, 0])
        else:
            self._bits1 = None
            self._masks1 = None
        self._uncovered = (
            length - popcount64(self._masks).sum(axis=1, dtype=np.int64)
        ).astype(np.int64)
        self._is_leaf = self._child_count == 0
        self._edges = int(self._child_count.sum())
        self._unc8 = (
            self._uncovered.astype(np.uint8) if length <= 255 else None
        )
        leaf_uncovered = self._uncovered[self._is_leaf]
        self._cover_is_collect = (
            bool((leaf_uncovered == 0).all()) if leaf_uncovered.size
            else True
        )
        offsets = self._level_offsets
        last_lo = offsets[-2] if len(offsets) > 1 else 0
        if (
            n
            and bool(self._is_leaf[last_lo:].all())
            and bool((self._uncovered[last_lo:] == 0).all())
        ):
            self._leaf_level_start = last_lo
        else:
            self._leaf_level_start = n + 1
        top_count = offsets[1] if len(offsets) > 1 else 0
        self._top_slots = np.arange(top_count, dtype=np.int64)
        # Leaf table in DFS order: a leaf's ``leaf_lo`` is its leaf
        # position, so sorting leaf slots by it recovers the layout.
        leaf_slots = np.flatnonzero(self._is_leaf)
        leaf_slots = leaf_slots[np.argsort(self._leaf_lo[leaf_slots])]
        self._leaf_words = np.ascontiguousarray(self._bits[leaf_slots])
        self._leaf_codes = tuple(_combine_words(self._leaf_words))
        self._buf_codes = tuple(_combine_words(self._buf_words))
        return self

    # -- introspection -----------------------------------------------------

    @property
    def keeps_ids(self) -> bool:
        return self._keep_ids

    @property
    def num_levels(self) -> int:
        return len(self._level_offsets) - 1

    @property
    def num_nodes(self) -> int:
        return self._level_offsets[-1]

    def level_sizes(self) -> list[int]:
        """Node counts per level (mirrors the source's layout)."""
        offsets = self._level_offsets
        return [
            offsets[i + 1] - offsets[i] for i in range(len(offsets) - 1)
        ]

    # -- query packing -----------------------------------------------------

    def _query_words(self, query: int) -> np.ndarray:
        return np.array(
            [(query >> (word * 64)) & _WORD_MASK
             for word in range(self._words)],
            dtype=np.uint64,
        )

    def _buffer_distances(self, qwords: np.ndarray) -> np.ndarray:
        """Exact distances of the buffered codes to one packed query."""
        return popcount64(self._buf_words ^ qwords).sum(
            axis=1, dtype=np.int64
        )

    # -- the single-query frontier sweep -----------------------------------

    def _sweep(
        self, qwords: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, int]:
        """One vectorized H-Search; returns matched node slots + ops.

        Each iteration handles one BFS level: partial distances of the
        whole frontier in one XOR/popcount pass, then boolean-mask
        split into *collect* (qualifying leaves and subtree-qualifying
        internals, whose contiguous leaf ranges are taken wholesale)
        and *expand* (qualifying internals whose contiguous child
        ranges form the next frontier).  ``ops`` counts exactly the
        distance computations the node walk performs.
        """
        threshold = min(threshold, self._code_length)
        taken_parts: list[np.ndarray] = []
        ops = 0
        frontier = self._top_slots
        simple = self._cover_is_collect
        one_word = self._words == 1
        traced = tracing()
        depth = 0
        started = 0.0
        if one_word:
            bits1, masks1, unc8 = self._bits1, self._masks1, self._unc8
            query64 = qwords[0]
            leaf_start = self._leaf_level_start
        while frontier.size:
            size = int(frontier.size)
            ops += size
            if traced:
                started = perf_counter()
            if one_word:
                if frontier[0] >= leaf_start:
                    # Terminal all-leaf level: distances are exact (no
                    # masking), and there is nothing left to expand.
                    xor = bits1.take(frontier, mode="clip")
                    np.bitwise_xor(xor, query64, out=xor)
                    taken = frontier[popcount64(xor) <= threshold]
                    if taken.size:
                        taken_parts.append(taken)
                    if traced:
                        _note_level(depth, size, 0, started)
                    break
                xor = bits1.take(frontier, mode="clip")
                np.bitwise_xor(xor, query64, out=xor)
                np.bitwise_and(xor, masks1.take(frontier, mode="clip"), out=xor)
                dist = popcount64(xor)
                cover = dist + unc8.take(frontier, mode="clip") <= threshold
            else:
                xor = self._bits[frontier] ^ qwords
                dist = popcount64(xor & self._masks[frontier]).sum(
                    axis=1, dtype=np.int64
                )
                cover = dist + self._uncovered[frontier] <= threshold
            if not simple:
                cover |= (dist <= threshold) & self._is_leaf[frontier]
            taken = frontier[cover]
            if taken.size:
                taken_parts.append(taken)
            expand = frontier[(dist <= threshold) & ~cover]
            if traced:
                _note_level(depth, size, int(expand.size), started)
                depth += 1
            if not expand.size:
                break
            frontier = _expand_ranges(
                self._child_first.take(expand, mode="clip"),
                self._child_count.take(expand, mode="clip")
            )
        if taken_parts:
            return np.concatenate(taken_parts), ops
        return np.empty(0, dtype=np.int64), ops

    def _range_ids(self, taken: np.ndarray) -> np.ndarray:
        """Tuple ids stored under the leaf ranges of ``taken`` nodes."""
        id_lo = self._id_offsets[self._leaf_lo[taken]]
        id_hi = self._id_offsets[self._leaf_hi[taken]]
        return self._ids_flat[_expand_ranges(id_lo, id_hi - id_lo)]

    def _require_ids(self) -> None:
        if not self._keep_ids:
            raise IndexStateError(
                "index compiled with keep_ids=False; use search_codes()"
            )

    # -- queries -----------------------------------------------------------

    def search(self, query: int, threshold: int) -> list[int]:
        """Exact Hamming-select; same answer multiset as the node walk."""
        self._require_ids()
        self._check_query(query, threshold)
        with trace_span("h_search", engine=self.ENGINE_LABEL, threshold=threshold):
            qwords = self._query_words(query)
            taken, ops = self._sweep(qwords, threshold)
            self.last_search_ops = ops + len(self._buf_codes)
            record_span("h_search.buffer", 0.0, ops=len(self._buf_codes))
            results = self._range_ids(taken).tolist()
            if self._buf_ids.size:
                near = self._buffer_distances(qwords) <= threshold
                results.extend(self._buf_ids[near].tolist())
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        return results

    def search_codes(self, query: int, threshold: int) -> list[int]:
        """Distinct qualifying codes (Option B of the MapReduce join)."""
        self._check_query(query, threshold)
        with trace_span("h_search", engine=self.ENGINE_LABEL, threshold=threshold):
            qwords = self._query_words(query)
            taken, ops = self._sweep(qwords, threshold)
            self.last_search_ops = ops + len(self._buf_codes)
            record_span("h_search.buffer", 0.0, ops=len(self._buf_codes))
            lo = self._leaf_lo[taken]
            positions = _expand_ranges(lo, self._leaf_hi[taken] - lo)
            codes = self._codes_from_positions(qwords, positions, threshold)
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        return codes

    def _codes_from_positions(
        self,
        qwords: np.ndarray,
        leaf_positions: np.ndarray,
        threshold: int,
    ) -> list[int]:
        """Distinct qualifying codes for swept leaf positions + buffer."""
        codes = [self._leaf_codes[i] for i in leaf_positions.tolist()]
        if self._buf_ids.size:
            near = self._buffer_distances(qwords) <= threshold
            buffered = {
                self._buf_codes[i]
                for i in np.flatnonzero(near).tolist()
            }
            codes.extend(buffered - set(codes))
        return codes

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, exact distance) pairs; used by the kNN front-end."""
        self._require_ids()
        self._check_query(query, threshold)
        with trace_span("h_search", engine=self.ENGINE_LABEL, threshold=threshold):
            return self._search_with_distances_body(query, threshold)

    def _search_with_distances_body(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        qwords = self._query_words(query)
        taken, ops = self._sweep(qwords, threshold)
        self.last_search_ops = ops + len(self._buf_codes)
        record_span("h_search.buffer", 0.0, ops=len(self._buf_codes))
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        lo = self._leaf_lo[taken]
        leaf_positions = _expand_ranges(lo, self._leaf_hi[taken] - lo)
        return self._pairs_from_positions(qwords, leaf_positions, threshold)

    def _pairs_from_positions(
        self,
        qwords: np.ndarray,
        leaf_positions: np.ndarray,
        threshold: int,
    ) -> list[tuple[int, int]]:
        """(id, distance) pairs for swept leaf positions + the buffer.

        Shared tail of :meth:`search_with_distances`: the native plane
        feeds it the leaf positions its compiled sweep emitted, so both
        planes rank candidates through identical numpy code.
        """
        results: list[tuple[int, int]] = []
        if leaf_positions.size:
            dists = popcount64(
                self._leaf_words[leaf_positions] ^ qwords
            ).sum(axis=1, dtype=np.int64)
            counts = (
                self._id_offsets[leaf_positions + 1]
                - self._id_offsets[leaf_positions]
            )
            ids = self._ids_flat[
                _expand_ranges(self._id_offsets[leaf_positions], counts)
            ]
            per_id = np.repeat(dists, counts)
            results.extend(zip(ids.tolist(), per_id.tolist()))
        if self._buf_ids.size:
            buf_dist = self._buffer_distances(qwords)
            near = np.flatnonzero(buf_dist <= threshold)
            results.extend(
                zip(
                    self._buf_ids[near].tolist(),
                    buf_dist[near].tolist(),
                )
            )
        return results

    def count_within(self, query: int, threshold: int) -> int:
        """Number of tuples within ``threshold``; uses the per-node
        frequency counters so covered subtrees are counted without
        descending, exactly like the node walk."""
        self._check_query(query, threshold)
        qwords = self._query_words(query)
        count = 0
        if self._buf_ids.size:
            count += int((self._buffer_distances(qwords) <= threshold).sum())
        threshold = min(threshold, self._code_length)
        frontier = self._top_slots
        simple = self._cover_is_collect
        one_word = self._words == 1
        while frontier.size:
            if one_word:
                if frontier[0] >= self._leaf_level_start:
                    xor = self._bits1.take(frontier, mode="clip")
                    np.bitwise_xor(xor, qwords[0], out=xor)
                    near = frontier[popcount64(xor) <= threshold]
                    count += int(self._frequency[near].sum())
                    break
                xor = self._bits1.take(frontier, mode="clip")
                np.bitwise_xor(xor, qwords[0], out=xor)
                np.bitwise_and(xor, self._masks1.take(frontier, mode="clip"), out=xor)
                dist = popcount64(xor)
                settle = dist + self._unc8.take(frontier, mode="clip") <= threshold
            else:
                xor = self._bits[frontier] ^ qwords
                dist = popcount64(xor & self._masks[frontier]).sum(
                    axis=1, dtype=np.int64
                )
                settle = dist + self._uncovered[frontier] <= threshold
            if not simple:
                settle |= (dist <= threshold) & self._is_leaf[frontier]
            count += int(self._frequency[frontier[settle]].sum())
            expand = frontier[(dist <= threshold) & ~settle]
            if not expand.size:
                break
            frontier = _expand_ranges(
                self._child_first.take(expand, mode="clip"),
                self._child_count.take(expand, mode="clip")
            )
        return count

    def contains_within(self, query: int, threshold: int) -> bool:
        """True iff any stored code lies within ``threshold``."""
        self._check_query(query, threshold)
        qwords = self._query_words(query)
        if self._buf_ids.size and bool(
            (self._buffer_distances(qwords) <= threshold).any()
        ):
            return True
        threshold = min(threshold, self._code_length)
        frontier = self._top_slots
        simple = self._cover_is_collect
        one_word = self._words == 1
        while frontier.size:
            if one_word:
                if frontier[0] >= self._leaf_level_start:
                    xor = self._bits1.take(frontier, mode="clip")
                    np.bitwise_xor(xor, qwords[0], out=xor)
                    return bool((popcount64(xor) <= threshold).any())
                xor = self._bits1.take(frontier, mode="clip")
                np.bitwise_xor(xor, qwords[0], out=xor)
                np.bitwise_and(xor, self._masks1.take(frontier, mode="clip"), out=xor)
                dist = popcount64(xor)
                hit = dist + self._unc8.take(frontier, mode="clip") <= threshold
            else:
                xor = self._bits[frontier] ^ qwords
                dist = popcount64(xor & self._masks[frontier]).sum(
                    axis=1, dtype=np.int64
                )
                hit = dist + self._uncovered[frontier] <= threshold
            if not simple:
                hit |= (dist <= threshold) & self._is_leaf[frontier]
            # A qualifying leaf, or a covered internal node (every leaf
            # beneath it qualifies), proves existence.
            if bool(hit.any()):
                return True
            expand = frontier[(dist <= threshold) & ~hit]
            if not expand.size:
                return False
            frontier = _expand_ranges(
                self._child_first.take(expand, mode="clip"),
                self._child_count.take(expand, mode="clip")
            )
        return False

    # -- the batched frontier sweep ----------------------------------------

    def _sweep_batch(
        self, qmat: np.ndarray, threshold: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Shared frontier sweep for a query batch.

        The live frontier is a pair list (node slot, query index): each
        level runs one distance pass over exactly the pairs every
        per-query node walk would examine — no dead (node, query)
        combinations — and expansion repeats a pair's query index over
        the node's contiguous child range.  Returns the collected
        (node, query) matches and the total pair evaluations.
        """
        threshold = min(threshold, self._code_length)
        batch = qmat.shape[0]
        top = self._top_slots
        nodes = np.tile(top, batch)
        owners = np.repeat(np.arange(batch, dtype=np.int64), top.size)
        taken_nodes: list[np.ndarray] = []
        taken_owners: list[np.ndarray] = []
        ops = 0
        simple = self._cover_is_collect
        one_word = self._words == 1
        traced = tracing()
        depth = 0
        started = 0.0
        if one_word:
            bits1, masks1, unc8 = self._bits1, self._masks1, self._unc8
            qcol = np.ascontiguousarray(qmat[:, 0])
            leaf_start = self._leaf_level_start
        while nodes.size:
            size = int(nodes.size)
            ops += size
            if traced:
                started = perf_counter()
            if one_word:
                if nodes[0] >= leaf_start:
                    xor = bits1.take(nodes, mode="clip")
                    np.bitwise_xor(xor, qcol.take(owners, mode="clip"), out=xor)
                    near = popcount64(xor) <= threshold
                    if near.any():
                        taken_nodes.append(nodes[near])
                        taken_owners.append(owners[near])
                    if traced:
                        _note_level(depth, size, 0, started)
                    break
                xor = bits1.take(nodes, mode="clip")
                np.bitwise_xor(xor, qcol.take(owners, mode="clip"), out=xor)
                np.bitwise_and(xor, masks1.take(nodes, mode="clip"), out=xor)
                dist = popcount64(xor)
                collect = dist + unc8.take(nodes, mode="clip") <= threshold
            else:
                xor = self._bits[nodes] ^ qmat[owners]
                dist = popcount64(xor & self._masks[nodes]).sum(
                    axis=1, dtype=np.int64
                )
                collect = dist + self._uncovered[nodes] <= threshold
            if not simple:
                collect |= (dist <= threshold) & self._is_leaf[nodes]
            if collect.any():
                taken_nodes.append(nodes[collect])
                taken_owners.append(owners[collect])
            expand = (dist <= threshold) & ~collect
            parents = nodes[expand]
            if traced:
                _note_level(depth, size, int(parents.size), started)
                depth += 1
            if not parents.size:
                break
            counts = self._child_count.take(parents, mode="clip")
            nodes = _expand_ranges(self._child_first.take(parents, mode="clip"), counts)
            owners = np.repeat(owners[expand], counts)
        if taken_nodes:
            return (
                np.concatenate(taken_nodes),
                np.concatenate(taken_owners),
                ops,
            )
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, ops

    @staticmethod
    def _split_by_owner(
        values: np.ndarray, owners: np.ndarray, batch: int
    ) -> list[np.ndarray]:
        """Partition ``values`` into per-query arrays by owner index."""
        order = np.argsort(owners, kind="stable")
        values = values[order]
        bounds = np.searchsorted(
            owners[order], np.arange(batch + 1, dtype=np.int64)
        )
        return [
            values[bounds[i]:bounds[i + 1]] for i in range(batch)
        ]

    def search_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        """Exact Hamming-select for every query of a batch at once.

        Returns one id list per query, each identical (as a multiset)
        to ``search(query, threshold)``.  ``last_search_ops`` is the
        total pair evaluations of the shared sweep — the sum of the
        per-query node-walk counts — plus the buffered comparisons.
        """
        self._require_ids()
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        if not queries:
            return []
        batch = len(queries)
        with trace_span(
            "h_search", engine=self.ENGINE_LABEL, batch=batch, threshold=threshold
        ):
            qmat = _pack_column(queries, self._words)
            nodes, owners, ops = self._sweep_batch(qmat, threshold)
            self.last_search_ops = ops + len(self._buf_codes) * batch
            record_span(
                "h_search.buffer", 0.0,
                ops=len(self._buf_codes) * batch,
            )
            return self._batch_ids(qmat, nodes, owners, batch, threshold)

    def search_batch_arrays(
        self, queries: Sequence[int], threshold: int
    ) -> list[np.ndarray]:
        """:meth:`search_batch` with per-query ids as ``int64`` arrays.

        Same sweep, same spans, same ``last_search_ops`` — only the
        final array→list materialization is skipped, so scatter-gather
        coordinators can merge shard results at C speed and convert to
        Python ints once, after the merge.
        """
        self._require_ids()
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        if not queries:
            return []
        batch = len(queries)
        with trace_span(
            "h_search", engine=self.ENGINE_LABEL, batch=batch, threshold=threshold
        ):
            qmat = _pack_column(queries, self._words)
            nodes, owners, ops = self._sweep_batch(qmat, threshold)
            self.last_search_ops = ops + len(self._buf_codes) * batch
            record_span(
                "h_search.buffer", 0.0,
                ops=len(self._buf_codes) * batch,
            )
            return self._batch_id_chunks(
                qmat, nodes, owners, batch, threshold
            )

    def _batch_id_chunks(
        self,
        qmat: np.ndarray,
        nodes: np.ndarray,
        owners: np.ndarray,
        batch: int,
        threshold: int,
    ) -> list[np.ndarray]:
        note_search(self.ENGINE_LABEL, self.last_search_ops, queries=batch)
        id_lo = self._id_offsets[self._leaf_lo[nodes]]
        counts = self._id_offsets[self._leaf_hi[nodes]] - id_lo
        all_ids = self._ids_flat[_expand_ranges(id_lo, counts)]
        id_owners = np.repeat(owners, counts)
        near = self._batch_buffer_matches(qmat, threshold)
        if near is not None:
            buf_rows, buf_cols = np.nonzero(near)
            all_ids = np.concatenate([all_ids, self._buf_ids[buf_rows]])
            id_owners = np.concatenate([id_owners, buf_cols])
        return self._split_by_owner(all_ids, id_owners, batch)

    def _batch_ids(
        self,
        qmat: np.ndarray,
        nodes: np.ndarray,
        owners: np.ndarray,
        batch: int,
        threshold: int,
    ) -> list[list[int]]:
        return [
            chunk.tolist()
            for chunk in self._batch_id_chunks(
                qmat, nodes, owners, batch, threshold
            )
        ]

    def search_codes_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        """Distinct qualifying codes for every query of a batch."""
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        if not queries:
            return []
        batch = len(queries)
        with trace_span(
            "h_search", engine=self.ENGINE_LABEL, batch=batch, threshold=threshold
        ):
            qmat = _pack_column(queries, self._words)
            nodes, owners, ops = self._sweep_batch(qmat, threshold)
            self.last_search_ops = ops + len(self._buf_codes) * batch
            record_span(
                "h_search.buffer", 0.0,
                ops=len(self._buf_codes) * batch,
            )
            return self._batch_codes(qmat, nodes, owners, batch, threshold)

    def _batch_codes(
        self,
        qmat: np.ndarray,
        nodes: np.ndarray,
        owners: np.ndarray,
        batch: int,
        threshold: int,
    ) -> list[list[int]]:
        note_search(self.ENGINE_LABEL, self.last_search_ops, queries=batch)
        lo = self._leaf_lo[nodes]
        spans = self._leaf_hi[nodes] - lo
        leaf_positions = _expand_ranges(lo, spans)
        leaf_owners = np.repeat(owners, spans)
        per_query = self._split_by_owner(leaf_positions, leaf_owners, batch)
        near = self._batch_buffer_matches(qmat, threshold)
        return self._batch_codes_from_positions(per_query, near)

    def _batch_codes_from_positions(
        self,
        per_query: Sequence[np.ndarray],
        near: np.ndarray | None,
    ) -> list[list[int]]:
        """Per-query distinct codes from per-query leaf positions."""
        results: list[list[int]] = []
        for column, positions in enumerate(per_query):
            codes = [self._leaf_codes[i] for i in positions.tolist()]
            if near is not None:
                buffered = {
                    self._buf_codes[i]
                    for i in np.flatnonzero(near[:, column]).tolist()
                }
                codes.extend(buffered - set(codes))
            results.append(codes)
        return results

    def search_with_distances_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[tuple[int, int]]]:
        """Batched :meth:`search_with_distances` through one shared sweep.

        One frontier pass scores the whole batch, then candidate
        distances are computed in a single vectorized pass over the
        collected leaf positions — this is what lets the kNN front-end
        expand thresholds for a whole batch at once instead of
        rebuilding pair lists per query per round.  Each returned pair
        list equals ``search_with_distances(query, threshold)``.
        """
        self._require_ids()
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        if not queries:
            return []
        batch = len(queries)
        with trace_span(
            "h_search", engine=self.ENGINE_LABEL,
            batch=batch, threshold=threshold,
        ):
            qmat = _pack_column(queries, self._words)
            nodes, owners, ops = self._sweep_batch(qmat, threshold)
            self.last_search_ops = ops + len(self._buf_codes) * batch
            record_span(
                "h_search.buffer", 0.0,
                ops=len(self._buf_codes) * batch,
            )
            lo = self._leaf_lo[nodes]
            spans = self._leaf_hi[nodes] - lo
            positions = _expand_ranges(lo, spans)
            position_owners = np.repeat(owners, spans)
            return self._batch_pairs(
                qmat, positions, position_owners, batch, threshold
            )

    def _batch_pairs(
        self,
        qmat: np.ndarray,
        leaf_positions: np.ndarray,
        position_owners: np.ndarray,
        batch: int,
        threshold: int,
    ) -> list[list[tuple[int, int]]]:
        """Per-query (id, distance) lists from swept (position, owner) pairs."""
        note_search(self.ENGINE_LABEL, self.last_search_ops, queries=batch)
        if leaf_positions.size:
            dists = popcount64(
                self._leaf_words[leaf_positions] ^ qmat[position_owners]
            ).sum(axis=1, dtype=np.int64)
            counts = (
                self._id_offsets[leaf_positions + 1]
                - self._id_offsets[leaf_positions]
            )
            ids = self._ids_flat[
                _expand_ranges(self._id_offsets[leaf_positions], counts)
            ]
            id_owners = np.repeat(position_owners, counts)
            id_dists = np.repeat(dists, counts)
        else:
            ids = np.empty(0, dtype=np.int64)
            id_owners = np.empty(0, dtype=np.int64)
            id_dists = np.empty(0, dtype=np.int64)
        if self._buf_ids.size:
            buf_dist = popcount64(
                self._buf_words[:, None, :] ^ qmat[None, :, :]
            ).sum(axis=2, dtype=np.int64)
            rows, cols = np.nonzero(buf_dist <= threshold)
            ids = np.concatenate([ids, self._buf_ids[rows]])
            id_owners = np.concatenate(
                [id_owners, cols.astype(np.int64)]
            )
            id_dists = np.concatenate([id_dists, buf_dist[rows, cols]])
        order = np.argsort(id_owners, kind="stable")
        ids = ids[order]
        id_dists = id_dists[order]
        bounds = np.searchsorted(
            id_owners[order], np.arange(batch + 1, dtype=np.int64)
        )
        return [
            list(
                zip(
                    ids[bounds[i]:bounds[i + 1]].tolist(),
                    id_dists[bounds[i]:bounds[i + 1]].tolist(),
                )
            )
            for i in range(batch)
        ]

    def _batch_buffer_matches(
        self, qmat: np.ndarray, threshold: int
    ) -> np.ndarray | None:
        if not self._buf_ids.size:
            return None
        dist = popcount64(
            self._buf_words[:, None, :] ^ qmat[None, :, :]
        ).sum(axis=2, dtype=np.int64)
        return dist <= threshold

    # -- HammingIndex contract ---------------------------------------------

    @classmethod
    def build(cls, codes, **params) -> "FlatHAIndex":
        """H-Build a Dynamic HA-Index over ``codes`` and compile it."""
        from repro.core.dynamic_ha import DynamicHAIndex

        return DynamicHAIndex.build(codes, **params).compile()

    def insert(self, code: int, tuple_id: int) -> None:
        raise IndexStateError(
            "FlatHAIndex is a read-only compiled kernel; "
            "mutate the DynamicHAIndex and recompile"
        )

    def delete(self, code: int, tuple_id: int) -> None:
        raise IndexStateError(
            "FlatHAIndex is a read-only compiled kernel; "
            "mutate the DynamicHAIndex and recompile"
        )

    def stats(self) -> IndexStats:
        internal = ~self._is_leaf
        return IndexStats(
            nodes=self.num_nodes,
            edges=self._edges,
            entries=len(self._ids_flat) + len(self._buf_codes),
            code_bits=(
                int(
                    (self._code_length - self._uncovered[internal]).sum()
                )
                + (len(self._leaf_codes) + len(self._buf_codes))
                * self._code_length
            ),
        )
