"""Weighted Hamming distance as a first-class query plane.

The paper's H-Search answers unweighted Hamming select/kNN, but ranking
systems built on learned codes weight bits by discriminative power
(Weng et al., "Fast Search on Binary Codes by Weighted Hamming
Distance"; PAPERS.md #5): the distance between codes ``x`` and ``q``
becomes ``sum(w[i] for i where x[i] != q[i])`` for a per-bit weight
vector ``w``.  This module adds that modality on top of the existing
engines without disturbing them:

* :class:`Weights` — a validated, quantized per-bit weight vector.
  Weights are quantized to multiples of ``1 / 2**16`` and summed in
  scaled ``int64`` arithmetic, so every weighted distance is *exact*
  and order-independent — the index planes, the brute-force oracle,
  and the differential tests agree byte for byte with no float
  epsilon anywhere.
* :class:`WeightedHammingIndex` — wraps any engine that compiles to
  the flat HA-Index kernel and answers weighted select/kNN two ways:

  - ``rerank``: sweep the *unweighted* kernel at the radius implied by
    the weight floor (``wdist <= t`` forces ``hamming <= t / min(w)``),
    then re-score the candidate leaves exactly;
  - ``native``: a weighted frontier sweep over the flat arrays with a
    per-mask lower bound — a node's partial weighted distance on its
    covered bits is the *cheapest completion* of that mask, so the
    frontier prunes exactly when it already exceeds the threshold,
    and collects whole subtrees when even the costliest completion
    (partial + uncovered weight) stays inside it.

* :func:`weighted_select` / :func:`weighted_knn` — front-ends mirroring
  :func:`~repro.core.select.hamming_select` and
  :func:`~repro.core.knn.knn_select`; a plain :class:`CodeSet` target
  runs the vectorized scan, an index target runs the wrapped plane.

Uniform weights of 1.0 degenerate to the unweighted engines exactly:
the scaled distance of every pair is ``hamming * 2**16`` and integer
thresholds scale the same way, so result sets, orderings, and tie
breaks are identical.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.core.flat_ha import FlatHAIndex, _expand_ranges
from repro.core.index_base import HammingIndex, IndexStats
from repro.obs import maybe_trace, note_search
from repro.obs.trace import record_span, trace_span

#: Fixed-point scale: weights quantize to multiples of ``1 / SCALE``.
#: 16 fractional bits keep 64-bit sums exact for any realistic corpus
#: (``SCALE * max_weight * code_length`` per distance, far below 2**63)
#: while representing learned weights to ~1.5e-5.
SCALE = 1 << 16

#: First threshold of the expanding weighted kNN loop, in *unweighted*
#: units (scaled by the mean weight); mirrors
#: :data:`repro.core.knn.DEFAULT_INITIAL_THRESHOLD`.
_KNN_INITIAL = 2

_STRATEGIES = ("auto", "native", "rerank")


def _scale_threshold(threshold: float) -> int:
    """Quantize a weighted threshold onto the fixed-point grid."""
    if threshold < 0:
        raise InvalidParameterError("threshold must be non-negative")
    return int(round(float(threshold) * SCALE))


class Weights:
    """A per-bit weight vector, validated and fixed-point quantized.

    ``values[i]`` weighs bit position ``i`` in the paper's convention
    (bit 0 = most significant bit of the code string).  Values must be
    finite and non-negative; they are quantized to multiples of
    ``1 / 2**16`` at construction, so all downstream arithmetic runs in
    exact scaled ``int64``.

    >>> w = Weights([1.0, 0.5, 2.0])
    >>> w.length
    3
    >>> w.distance(0b101, 0b001)
    1.0
    """

    __slots__ = ("_scaled", "_lanes")

    def __init__(self, values: Sequence[float]) -> None:
        array = np.asarray(values, dtype=np.float64)
        if array.ndim != 1 or array.size < 1:
            raise InvalidParameterError(
                "weights must be a non-empty 1-D sequence"
            )
        if not np.isfinite(array).all():
            raise InvalidParameterError("weights must be finite")
        if (array < 0).any():
            raise InvalidParameterError("weights must be non-negative")
        scaled = np.rint(array * SCALE).astype(np.int64)
        scaled.setflags(write=False)
        self._scaled = scaled
        self._lanes: np.ndarray | None = None

    @property
    def length(self) -> int:
        """Number of bit positions (the code length this vector fits)."""
        return int(self._scaled.size)

    @property
    def values(self) -> np.ndarray:
        """The quantized weights as floats (read-only, exact)."""
        values = self._scaled / SCALE
        values.setflags(write=False)
        return values

    @property
    def scaled(self) -> np.ndarray:
        """The ``int64`` fixed-point weights (read-only)."""
        return self._scaled

    @property
    def min_scaled(self) -> int:
        return int(self._scaled.min())

    @property
    def total_scaled(self) -> int:
        """Scaled weighted distance of a code from its complement."""
        return int(self._scaled.sum())

    @property
    def is_uniform_unit(self) -> bool:
        """True when every weight quantized to exactly 1.0."""
        return bool((self._scaled == SCALE).all())

    @classmethod
    def uniform(cls, length: int) -> "Weights":
        """Weight 1.0 on every bit — the unweighted degeneration."""
        return cls(np.ones(length))

    def lane_weights(self, words: int) -> np.ndarray:
        """Scaled weights laid out per packed-integer bit lane.

        Lane ``p`` of a ``words``-word little-endian unpacking holds
        integer bit ``p`` (bit 0 = least significant), which is string
        position ``length - 1 - p``; lanes past the code length weigh 0.
        """
        if self._lanes is None or self._lanes.size != words * 64:
            lanes = np.zeros(words * 64, dtype=np.int64)
            length = self.length
            positions = np.arange(length)
            lanes[positions] = self._scaled[length - 1 - positions]
            lanes.setflags(write=False)
            self._lanes = lanes
        return self._lanes

    def distance_scaled(self, code_a: int, code_b: int) -> int:
        """Exact scaled weighted distance between two codes."""
        xor = code_a ^ code_b
        length = self.length
        scaled = self._scaled
        total = 0
        while xor:
            low = xor & -xor
            position = length - low.bit_length()
            total += int(scaled[position])
            xor ^= low
        return total

    def distance(self, code_a: int, code_b: int) -> float:
        """Exact weighted distance between two codes (float view)."""
        return self.distance_scaled(code_a, code_b) / SCALE

    def implied_radius(self, threshold: float, code_length: int) -> int:
        """Largest unweighted radius a weighted threshold can reach.

        Any code within weighted distance ``threshold`` mismatches the
        query on at most ``floor(threshold / min(w))`` bits, so an
        unweighted sweep at that radius is a complete candidate pass.
        A zero weight floor makes the radius unbounded (a mismatch may
        cost nothing), which degrades to the full code length.
        """
        t_scaled = _scale_threshold(threshold)
        floor = self.min_scaled
        if floor <= 0:
            return code_length
        return min(code_length, t_scaled // floor)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Weights):
            return NotImplemented
        return bool(np.array_equal(self._scaled, other._scaled))

    def __hash__(self) -> int:
        return hash(self._scaled.tobytes())

    def __repr__(self) -> str:
        return (
            f"Weights(length={self.length}, "
            f"min={self.min_scaled / SCALE:g}, "
            f"total={self.total_scaled / SCALE:g})"
        )

    def __reduce__(self):
        return (type(self), (self.values.tolist(),))


def as_weights(
    weights: "Weights | Sequence[float] | None", length: int
) -> Weights:
    """Coerce ``weights`` to a validated :class:`Weights` of ``length``.

    ``None`` means uniform 1.0 weights (the exact unweighted plane).
    """
    if weights is None:
        return Weights.uniform(length)
    if not isinstance(weights, Weights):
        weights = Weights(weights)
    if weights.length != length:
        raise InvalidParameterError(
            f"{weights.length} weights supplied for {length}-bit codes"
        )
    return weights


def uniform_weights(length: int) -> Weights:
    """Weight 1.0 per bit; degenerates exactly to unweighted search."""
    return Weights.uniform(length)


def learned_weights(codes: CodeSet) -> Weights:
    """Balance-derived weights: discriminative bits weigh more.

    A bit that splits the corpus evenly carries the most information;
    a constant bit carries none.  Each position gets ``4 p (1 - p)``
    (``p`` = fraction of ones), the weights are normalized to mean 1.0
    so integer thresholds keep their unweighted intuition, and every
    weight is floored at ``1 / 2**16`` so the implied rerank radius
    stays bounded.  Deterministic given the codes.
    """
    if not len(codes):
        return Weights.uniform(codes.length)
    ones = _bit_lane_matrix(codes.packed_wide()).sum(axis=0)
    length = codes.length
    positions = np.arange(length)
    p = ones[length - 1 - positions] / len(codes)
    raw = 4.0 * p * (1.0 - p)
    mean = raw.mean()
    values = raw / mean if mean > 0 else np.ones(length)
    return Weights(np.maximum(values, 1.0 / SCALE))


def random_weights(length: int, seed: int = 0) -> Weights:
    """Seeded mean-1.0 weights in [0.5, 1.5); for tests and benches."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(0.5, 1.5, size=length)
    return Weights(values * (length / values.sum()))


def weighted_hamming(
    code_a: int, code_b: int, weights: "Weights | Sequence[float]"
) -> float:
    """Exact weighted Hamming distance between two codes.

    >>> weighted_hamming(0b1010, 0b0010, [4.0, 3.0, 2.0, 1.0])
    4.0
    """
    if not isinstance(weights, Weights):
        weights = Weights(weights)
    return weights.distance(code_a, code_b)


# -- vectorized scaled kernels ------------------------------------------


def _bit_lane_matrix(matrix: np.ndarray) -> np.ndarray:
    """Unpack an ``(n, words)`` uint64 matrix to per-bit uint8 lanes.

    Lane ``p`` of row ``i`` is integer bit ``p`` of code ``i`` — the
    layout :meth:`Weights.lane_weights` is built for.  The explicit
    little-endian cast keeps the byte view platform-independent.
    """
    rows = matrix.shape[0]
    le_bytes = np.ascontiguousarray(matrix).astype("<u8").view(np.uint8)
    return np.unpackbits(
        le_bytes.reshape(rows, -1), axis=1, bitorder="little"
    )


def weighted_popcount(matrix: np.ndarray, lanes: np.ndarray) -> np.ndarray:
    """Scaled weighted popcount of each row of a packed uint64 matrix.

    The weighted analogue of :func:`~repro.core.bitvector.popcount64`:
    XOR the codes with the query first, then feed the result here with
    the weight lanes to get each row's exact scaled weighted distance.
    """
    if matrix.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    return _bit_lane_matrix(matrix) @ lanes


def _scan_pairs_scaled(
    codes: CodeSet, query: int, weights: Weights
) -> tuple[np.ndarray, np.ndarray]:
    """(ids, scaled distances) of every code, by vectorized scan."""
    lanes = weights.lane_weights(codes.packed_wide().shape[1] or 1)
    packed = codes.packed_wide()
    words = packed.shape[1]
    qwords = np.asarray(
        [(query >> (word * 64)) & ((1 << 64) - 1) for word in range(words)],
        dtype=np.uint64,
    )
    scaled = weighted_popcount(packed ^ qwords, lanes)
    return np.asarray(codes.ids, dtype=np.int64), scaled


# -- the wrapped index plane --------------------------------------------


class WeightedHammingIndex(HammingIndex):
    """Weighted select/kNN over an engine's flat HA-Index kernel.

    Wraps an inner :class:`~repro.core.index_base.HammingIndex` that
    either *is* a :class:`~repro.core.flat_ha.FlatHAIndex` or compiles
    to one (``dha``/``flat``/``native``); mutations delegate to the
    inner index, so a ``dha`` inner stays fully maintainable.

    ``strategy`` picks the traversal: ``"native"`` (default for
    ``"auto"``) runs the weighted frontier sweep; ``"rerank"`` sweeps
    unweighted at the implied radius and re-scores.  Both are exact
    and return byte-identical results; see ``docs/weighted.md`` for
    the selection guide.
    """

    ENGINE_LABEL = "weighted"

    def __init__(
        self,
        inner: HammingIndex,
        weights: "Weights | Sequence[float] | None" = None,
        strategy: str = "auto",
    ) -> None:
        if isinstance(inner, WeightedHammingIndex):
            raise InvalidParameterError(
                "cannot wrap a WeightedHammingIndex in another"
            )
        if strategy not in _STRATEGIES:
            raise InvalidParameterError(
                f"unknown strategy {strategy!r}; expected one of "
                f"{_STRATEGIES}"
            )
        if not isinstance(inner, FlatHAIndex) and not hasattr(
            inner, "compile"
        ):
            raise InvalidParameterError(
                f"{type(inner).__name__} neither is nor compiles to a "
                "flat HA-Index kernel; build the weighted plane over "
                "dha, flat, or native"
            )
        super().__init__(inner.code_length)
        self._inner = inner
        self._weights = as_weights(weights, inner.code_length)
        self._strategy = strategy
        self._size = len(inner)
        # Per-kernel weighted uncovered-bit sums, keyed by identity of
        # the kernel's shared mask array (rebuffered clones share it).
        self._node_cache: tuple[object, np.ndarray] | None = None

    @classmethod
    def build(cls, codes: CodeSet, **params) -> "WeightedHammingIndex":
        """Build over ``codes`` through an inner engine.

        ``weights`` defaults to the set's own
        :attr:`~repro.core.bitvector.CodeSet.weights` (uniform when
        absent); ``engine`` names the inner builder (default ``dha``);
        remaining params go to that builder.
        """
        weights = params.pop("weights", None)
        strategy = params.pop("strategy", "auto")
        engine = params.pop("engine", "dha")
        if weights is None:
            weights = codes.weights
        from repro.core.engines import get_engine

        spec = get_engine(engine)
        if spec.name == "weighted":
            raise InvalidParameterError(
                "the weighted engine cannot nest inside itself"
            )
        return cls(
            spec.builder(codes, **params), weights, strategy=strategy
        )

    # -- introspection ---------------------------------------------------

    @property
    def weights(self) -> Weights:
        return self._weights

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def inner(self) -> HammingIndex:
        return self._inner

    @property
    def max_distance(self) -> float:
        """Largest reachable weighted distance (all bits mismatched)."""
        return self._weights.total_scaled / SCALE

    @property
    def knn_threshold_cap(self) -> int:
        """Integer threshold that provably covers the whole code space.

        The sharded kNN loop expands its threshold up to this cap
        instead of the code length, since weighted distances may
        exceed it when weights above 1.0 exist.
        """
        return max(
            1, -(-self._weights.total_scaled // SCALE)
        )

    def implied_radius(self, threshold: float) -> int:
        """Unweighted radius covering every weighted match; see
        :meth:`Weights.implied_radius`.  The scatter-gather planner
        prunes shards with this bound."""
        return self._weights.implied_radius(threshold, self._code_length)

    def stats(self) -> IndexStats:
        return self._inner.stats()

    @property
    def mutation_count(self) -> int:
        return self._inner.mutation_count

    def compile(self) -> "WeightedHammingIndex":
        """Warm the inner flat kernel; returns ``self`` (duck-typed
        like the engines the service layer eagerly compiles)."""
        self._flat()
        return self

    # -- maintenance -----------------------------------------------------

    def insert(self, code: int, tuple_id: int) -> None:
        self._inner.insert(code, tuple_id)
        self._size = len(self._inner)

    def delete(self, code: int, tuple_id: int) -> None:
        self._inner.delete(code, tuple_id)
        self._size = len(self._inner)

    # -- kernels ---------------------------------------------------------

    def _flat(self) -> FlatHAIndex:
        inner = self._inner
        if isinstance(inner, FlatHAIndex):
            return inner
        return inner.compile()

    def _resolved_strategy(self) -> str:
        return "native" if self._strategy == "auto" else self._strategy

    def _lanes(self, flat: FlatHAIndex) -> np.ndarray:
        return self._weights.lane_weights(flat._bits.shape[1] or 1)

    def _uncovered_weight(self, flat: FlatHAIndex) -> np.ndarray:
        """Scaled weight of every node's uncovered bits (cached)."""
        cached = self._node_cache
        if cached is not None and cached[0] is flat._masks:
            return cached[1]
        unc = self._weights.total_scaled - weighted_popcount(
            flat._masks, self._lanes(flat)
        )
        self._node_cache = (flat._masks, unc)
        return unc

    def _weighted_sweep(
        self, flat: FlatHAIndex, qwords: np.ndarray, t_scaled: int
    ) -> tuple[np.ndarray, int]:
        """Weighted frontier sweep; returns matched node slots + ops.

        Per level: the frontier's partial weighted distances (weighted
        popcount of ``(bits ^ q) & mask``) are each node's *cheapest
        completion* — a lower bound over its whole subtree.  Nodes
        whose costliest completion (partial + uncovered weight) fits
        the threshold are collected wholesale; nodes whose lower bound
        already exceeds it are pruned; the rest expand.
        """
        lanes = self._lanes(flat)
        unc_w = self._uncovered_weight(flat)
        taken_parts: list[np.ndarray] = []
        ops = 0
        frontier = flat._top_slots
        simple = flat._cover_is_collect
        leaf_start = flat._leaf_level_start
        while frontier.size:
            ops += int(frontier.size)
            if frontier[0] >= leaf_start:
                # Terminal all-leaf level: fully covered patterns, so
                # the weighted distances are exact and nothing expands.
                xor = flat._bits[frontier] ^ qwords
                taken = frontier[weighted_popcount(xor, lanes) <= t_scaled]
                if taken.size:
                    taken_parts.append(taken)
                break
            xor = flat._bits[frontier] ^ qwords
            partial = weighted_popcount(xor & flat._masks[frontier], lanes)
            cover = partial + unc_w[frontier] <= t_scaled
            if not simple:
                cover |= (partial <= t_scaled) & flat._is_leaf[frontier]
            taken = frontier[cover]
            if taken.size:
                taken_parts.append(taken)
            expand = frontier[(partial <= t_scaled) & ~cover]
            if not expand.size:
                break
            frontier = _expand_ranges(
                flat._child_first.take(expand, mode="clip"),
                flat._child_count.take(expand, mode="clip"),
            )
        if taken_parts:
            return np.concatenate(taken_parts), ops
        return np.empty(0, dtype=np.int64), ops

    def _candidate_positions(
        self, flat: FlatHAIndex, qwords: np.ndarray, t_scaled: int
    ) -> tuple[np.ndarray, int, str]:
        """Leaf positions whose codes may match, + sweep ops + strategy."""
        strategy = self._resolved_strategy()
        if strategy == "native":
            taken, ops = self._weighted_sweep(flat, qwords, t_scaled)
            record_span(
                "weighted.sweep", 0.0, ops=ops, strategy=strategy
            )
        else:
            radius = self._weights.implied_radius(
                t_scaled / SCALE, self._code_length
            )
            # The flat sweep emits its own per-level spans when traced;
            # nest them (ops=0 here) so weighted.* totals stay exact.
            with trace_span("weighted.sweep", strategy=strategy):
                taken, ops = flat._sweep(qwords, radius)
        lo = flat._leaf_lo[taken]
        positions = _expand_ranges(lo, flat._leaf_hi[taken] - lo)
        return positions, ops, strategy

    def _search_scaled(
        self, query: int, t_scaled: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """(ids, scaled distances) of all matches; updates accounting.

        One shared body under every public query: sweep, re-score the
        candidate leaves exactly in scaled arithmetic, scan the insert
        buffer, and emit ``weighted.*`` spans whose op counts sum to
        :attr:`last_search_ops`.
        """
        flat = self._flat()
        lanes = self._lanes(flat)
        qwords = flat._query_words(query)
        positions, sweep_ops, strategy = self._candidate_positions(
            flat, qwords, t_scaled
        )
        id_parts: list[np.ndarray] = []
        dist_parts: list[np.ndarray] = []
        rescored = int(positions.size)
        if positions.size:
            scaled = weighted_popcount(
                flat._leaf_words[positions] ^ qwords, lanes
            )
            keep = scaled <= t_scaled
            positions = positions[keep]
            scaled = scaled[keep]
            counts = (
                flat._id_offsets[positions + 1]
                - flat._id_offsets[positions]
            )
            id_parts.append(
                flat._ids_flat[
                    _expand_ranges(flat._id_offsets[positions], counts)
                ]
            )
            dist_parts.append(np.repeat(scaled, counts))
        record_span("weighted.rescore", 0.0, ops=rescored)
        buffered = len(flat._buf_codes)
        if buffered:
            scaled = weighted_popcount(flat._buf_words ^ qwords, lanes)
            near = scaled <= t_scaled
            id_parts.append(flat._buf_ids[near])
            dist_parts.append(scaled[near])
        record_span("weighted.buffer", 0.0, ops=buffered)
        self.last_search_ops = sweep_ops + rescored + buffered
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        if id_parts:
            return (
                np.concatenate(id_parts),
                np.concatenate(dist_parts),
            )
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # -- queries ---------------------------------------------------------

    def search(self, query: int, threshold: float) -> list[int]:
        """Tuple ids within *weighted* distance ``threshold``."""
        self._check_query(query, threshold)
        t_scaled = _scale_threshold(threshold)
        with trace_span(
            "weighted.search",
            engine=self.ENGINE_LABEL,
            strategy=self._resolved_strategy(),
            threshold=threshold,
        ):
            ids, _ = self._search_scaled(query, t_scaled)
        return ids.tolist()

    def search_batch(
        self, queries: Sequence[int], threshold: float
    ) -> list[list[int]]:
        """One id list per query; ops accumulate over the batch."""
        results = []
        total_ops = 0
        for query in queries:
            results.append(self.search(query, threshold))
            total_ops += self.last_search_ops
        self.last_search_ops = total_ops
        return results

    def search_with_distances(
        self, query: int, threshold: float
    ) -> list[tuple[int, float]]:
        """(tuple id, exact weighted distance) pairs within threshold."""
        self._check_query(query, threshold)
        t_scaled = _scale_threshold(threshold)
        with trace_span(
            "weighted.search",
            engine=self.ENGINE_LABEL,
            strategy=self._resolved_strategy(),
            threshold=threshold,
        ):
            ids, scaled = self._search_scaled(query, t_scaled)
        return list(zip(ids.tolist(), (scaled / SCALE).tolist()))

    def contains_within(self, query: int, threshold: float) -> bool:
        """True iff any stored code lies within weighted ``threshold``."""
        self._check_query(query, threshold)
        t_scaled = _scale_threshold(threshold)
        ids, _ = self._search_scaled(query, t_scaled)
        return bool(ids.size)

    def knn_search(self, query: int, k: int) -> list[tuple[int, float]]:
        """The ``k`` weighted-nearest tuples as (id, distance) pairs.

        Exact for both strategies.  ``native`` expands a weighted
        threshold until ``k`` matches exist (every round is an exact
        weighted select, so the k smallest of the final round are the
        k smallest overall).  ``rerank`` expands the *unweighted*
        radius; a candidate set is complete once ``k`` candidates sit
        strictly below ``min(w) * (radius + 1)`` — the cheapest
        weighted distance any still-unseen code could have — with ties
        at the boundary forcing another round so (distance, id) order
        never depends on sweep order.
        """
        if k < 1:
            raise InvalidParameterError("k must be positive")
        self._check_query(query, 0)
        with trace_span(
            "weighted.knn",
            engine=self.ENGINE_LABEL,
            strategy=self._resolved_strategy(),
            k=k,
        ):
            if self._resolved_strategy() == "rerank":
                pairs = self._knn_rerank(query, k)
            else:
                pairs = self._knn_native(query, k)
        return pairs

    def _knn_native(self, query: int, k: int) -> list[tuple[int, float]]:
        target = min(k, len(self._inner))
        total = self._weights.total_scaled
        mean = max(1, total // max(1, self._code_length))
        step = max(2, self._code_length // 8) * mean
        t_scaled = min(_KNN_INITIAL * mean, total)
        while True:
            ids, scaled = self._search_scaled(query, t_scaled)
            if ids.size >= target or t_scaled >= total:
                return self._rank(ids, scaled, k)
            t_scaled = min(t_scaled + step, total)

    def _knn_rerank(self, query: int, k: int) -> list[tuple[int, float]]:
        target = min(k, len(self._inner))
        flat = self._flat()
        lanes = self._lanes(flat)
        qwords = flat._query_words(query)
        floor = self._weights.min_scaled
        length = self._code_length
        radius = min(_KNN_INITIAL, length)
        step = max(2, length // 8)
        while True:
            # Nest the flat sweep's own per-level spans (ops=0 here) so
            # the weighted.* span totals still sum to last_search_ops.
            with trace_span("weighted.sweep", strategy="rerank"):
                taken, sweep_ops = flat._sweep(qwords, radius)
            lo = flat._leaf_lo[taken]
            positions = _expand_ranges(lo, flat._leaf_hi[taken] - lo)
            id_parts: list[np.ndarray] = []
            dist_parts: list[np.ndarray] = []
            if positions.size:
                scaled = weighted_popcount(
                    flat._leaf_words[positions] ^ qwords, lanes
                )
                counts = (
                    flat._id_offsets[positions + 1]
                    - flat._id_offsets[positions]
                )
                id_parts.append(
                    flat._ids_flat[
                        _expand_ranges(
                            flat._id_offsets[positions], counts
                        )
                    ]
                )
                dist_parts.append(np.repeat(scaled, counts))
            record_span(
                "weighted.rescore", 0.0, ops=int(positions.size)
            )
            buffered = len(flat._buf_codes)
            if buffered:
                buf_scaled = weighted_popcount(
                    flat._buf_words ^ qwords, lanes
                )
                buf_hamming = flat._buffer_distances(qwords)
                near = buf_hamming <= radius
                id_parts.append(flat._buf_ids[near])
                dist_parts.append(buf_scaled[near])
            record_span("weighted.buffer", 0.0, ops=buffered)
            self.last_search_ops = (
                sweep_ops + int(positions.size) + buffered
            )
            note_search(self.ENGINE_LABEL, self.last_search_ops)
            if id_parts:
                ids = np.concatenate(id_parts)
                scaled = np.concatenate(dist_parts)
            else:
                ids = np.empty(0, dtype=np.int64)
                scaled = ids
            # Unseen codes lie beyond the unweighted radius, so their
            # weighted distance is at least floor * (radius + 1); the
            # strict comparison forces one more round on boundary ties.
            bound = floor * (radius + 1)
            settled = int((scaled < bound).sum()) if floor > 0 else 0
            if radius >= length or settled >= target:
                return self._rank(ids, scaled, k)
            radius = min(radius + step, length)

    @staticmethod
    def _rank(
        ids: np.ndarray, scaled: np.ndarray, k: int
    ) -> list[tuple[int, float]]:
        """The k smallest (distance, id) pairs, scaled ties exact."""
        pairs = sorted(zip(scaled.tolist(), ids.tolist()))[:k]
        return [(tuple_id, d / SCALE) for d, tuple_id in pairs]

    # -- copying ---------------------------------------------------------

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # The node cache keys on array identity, which does not
        # survive a process boundary; rebuilt on first weighted sweep.
        state["_node_cache"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)


# -- front-ends ---------------------------------------------------------


def _as_weighted_index(
    target: HammingIndex,
    weights: "Weights | Sequence[float] | None",
    strategy: str,
) -> WeightedHammingIndex:
    if isinstance(target, WeightedHammingIndex):
        if weights is not None and as_weights(
            weights, target.code_length
        ) != target.weights:
            raise InvalidParameterError(
                "weights= conflicts with the index's own weight vector"
            )
        return target
    return WeightedHammingIndex(target, weights, strategy=strategy)


def weighted_select(
    query: int,
    target: "HammingIndex | CodeSet",
    threshold: float,
    weights: "Weights | Sequence[float] | None" = None,
    *,
    strategy: str = "auto",
    profile: bool = False,
) -> list[int]:
    """Tuple ids of ``target`` within *weighted* distance ``threshold``.

    The weighted analogue of
    :func:`~repro.core.select.hamming_select`: a :class:`CodeSet`
    target runs one vectorized scaled scan (also the test oracle's
    shape), an index target runs the wrapped weighted plane with the
    chosen ``strategy``.  ``weights=None`` takes the target's own
    vector (a weighted ``CodeSet`` or ``WeightedHammingIndex``),
    falling back to uniform 1.0 — the exact unweighted result.
    """
    with maybe_trace("weighted_select", profile, threshold=threshold):
        if isinstance(target, HammingIndex):
            index = _as_weighted_index(target, weights, strategy)
            return index.search(query, threshold)
        resolved = as_weights(
            weights if weights is not None else target.weights,
            target.length,
        )
        t_scaled = _scale_threshold(threshold)
        ids, scaled = _scan_pairs_scaled(target, query, resolved)
        return ids[scaled <= t_scaled].tolist()


def weighted_knn(
    query: int,
    target: "HammingIndex | CodeSet",
    k: int,
    weights: "Weights | Sequence[float] | None" = None,
    *,
    strategy: str = "auto",
    profile: bool = False,
) -> list[tuple[int, float]]:
    """The ``k`` weighted-nearest tuples as (id, distance) pairs.

    Sorted by (weighted distance, tuple id); exact for every strategy.
    A :class:`CodeSet` target ranks by full scan — the ground truth
    the index strategies must reproduce byte for byte.
    """
    if k < 1:
        raise InvalidParameterError("k must be positive")
    with maybe_trace("weighted_knn", profile, k=k):
        if isinstance(target, HammingIndex):
            index = _as_weighted_index(target, weights, strategy)
            return index.knn_search(query, k)
        resolved = as_weights(
            weights if weights is not None else target.weights,
            target.length,
        )
        ids, scaled = _scan_pairs_scaled(target, query, resolved)
        return WeightedHammingIndex._rank(ids, scaled, k)
