"""Tiered native backends for the H-Search frontier sweep.

:class:`~repro.core.native_ha.NativeHAIndex` answers queries through a
compiled sweep when one is available, and through the numpy flat kernel
otherwise.  This module owns the backend tiers and the per-kernel
execution state:

* ``numba`` — ``@njit``-compiled mirrors of the sweep (optional
  dependency; exercised by the CI numba leg).
* ``cc`` — the same kernel as embedded C, compiled once per source
  digest with the system compiler and loaded via ``ctypes``.  This is
  the tier that exists on any box with a toolchain but no numba.
* ``numpy`` — no native state at all; callers keep using the
  vectorized :class:`~repro.core.flat_ha.FlatHAIndex` sweeps.

Selection is ``numba > cc > numpy`` under ``auto``, overridable with
the ``REPRO_NATIVE`` environment variable (``auto``/``numba``/``cc``/
``numpy``; unknown values behave as ``auto``) or, in tests, the
:func:`force_backend` context manager.  Both compiled tiers replay the
*exact* run-based traversal of the numpy sweep — same visit order, same
emissions, same distance-computation count — so results and
``last_search_ops`` stay byte-identical across tiers; the differential
suite enforces that.

The frontier is kept as contiguous ``(first child, count)`` slot runs
rather than materialized node lists: children of one node occupy one
contiguous slot range in the next level, so each level walks sequential
memory.  Scratch run buffers (and, for ``cc``, the bound kernel struct)
live in a per-index :class:`NativeState` guarded by a lock — the
compiled calls drop the GIL, and one kernel may be probed from several
threads by the parallel-join thread fallback.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from contextlib import contextmanager
from ctypes import POINTER, byref, c_int64, c_uint64, c_void_p
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.errors import IndexStateError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.flat_ha import FlatHAIndex

__all__ = [
    "active_backend",
    "force_backend",
    "make_state",
    "requested_backend",
]

#: Environment variable naming the requested backend tier.
ENV_VAR = "REPRO_NATIVE"

_VALID_CHOICES = ("auto", "numba", "cc", "numpy")

#: Probe order per requested tier; a missing tier falls through.
_TIER_ORDER = {
    "auto": ("numba", "cc"),
    "numba": ("numba",),
    "cc": ("cc",),
    "numpy": (),
}

_FORCED: str | None = None
_BACKENDS: dict[str, object | None] = {}
_LOAD_LOCK = threading.Lock()


def requested_backend() -> str:
    """The requested tier: :func:`force_backend` > ``REPRO_NATIVE`` > auto."""
    if _FORCED is not None:
        return _FORCED
    choice = os.environ.get(ENV_VAR, "auto").strip().lower()
    return choice if choice in _VALID_CHOICES else "auto"


@contextmanager
def force_backend(name: str):
    """Pin backend selection for a ``with`` block (tests and benches).

    Accepts any :data:`ENV_VAR` value; ``numpy`` disables native
    execution entirely, which is how the fallback lane proves the numpy
    path byte-identical.
    """
    global _FORCED
    if name not in _VALID_CHOICES:
        raise ValueError(
            f"unknown native backend {name!r}; expected one of "
            f"{', '.join(_VALID_CHOICES)}"
        )
    previous = _FORCED
    _FORCED = name
    try:
        yield name
    finally:
        _FORCED = previous


def active_backend() -> str:
    """The tier a new :class:`NativeState` would execute on right now."""
    for name in _TIER_ORDER[requested_backend()]:
        if _backend_impl(name) is not None:
            return name
    return "numpy"


def make_state(flat: "FlatHAIndex"):
    """Native execution state bound to ``flat``'s arrays, or ``None``.

    ``None`` means "use the numpy sweeps": multi-word codes, a
    ``numpy`` selection, or no working compiled tier.  The state holds
    contiguous references to the kernel's tree arrays (never the insert
    buffer — buffered comparisons stay in numpy), so it remains valid
    for every :meth:`FlatHAIndex.rebuffered` clone of the same tree.
    """
    if flat._words != 1 or flat._bits1 is None:
        return None
    name = active_backend()
    if name == "numba":
        return _NumbaState(_backend_impl("numba"), flat)
    if name == "cc":
        return _CcState(_backend_impl("cc"), flat)
    return None


def _backend_impl(name: str):
    if name not in _BACKENDS:
        with _LOAD_LOCK:
            if name not in _BACKENDS:
                loader = _load_numba if name == "numba" else _load_cc
                try:
                    _BACKENDS[name] = loader()
                except Exception:  # toolchain/dep missing: tier is off
                    _BACKENDS[name] = None
    return _BACKENDS[name]


# -- the C tier -------------------------------------------------------------

#: The H-Search sweep as C.  ``HsKernel`` binds one flat kernel's tree
#: arrays plus scratch run buffers; every entry point replays the numpy
#: sweep exactly (visit order, emissions, op counts).  ``mode`` selects
#: the emission: 0 = tuple ids of taken nodes' leaf ranges, 1 = leaf
#: positions of taken nodes.  Entry points return the emitted length,
#: or -1 when ``cap`` would overflow (callers retry with a larger
#: buffer).
_C_SOURCE = r"""
#include <stdint.h>

typedef struct {
    const uint64_t *bits;
    const uint64_t *masks;
    const int64_t *unc;
    const uint8_t *is_leaf;
    const int64_t *child_first;
    const int64_t *child_count;
    const int64_t *leaf_lo;
    const int64_t *leaf_hi;
    const int64_t *id_offsets;
    const int64_t *ids_flat;
    const int64_t *frequency;
    int64_t top_count;
    int64_t leaf_level_start;
    int64_t simple;
    int64_t *run_first;   /* scratch: run starts, capacity num_nodes + 1 */
    int64_t *run_count;   /* scratch: run lengths */
    int64_t *next_first;  /* scratch double-buffer */
    int64_t *next_count;
} HsKernel;

static inline int64_t hs_emit(const HsKernel *k, int64_t mode, int64_t s,
                              int64_t *out, int64_t cap, int64_t written)
{
    int64_t lo, hi, p;
    if (mode == 0) {
        lo = k->id_offsets[k->leaf_lo[s]];
        hi = k->id_offsets[k->leaf_hi[s]];
        if (written + (hi - lo) > cap) return -1;
        for (p = lo; p < hi; p++) out[written++] = k->ids_flat[p];
    } else {
        lo = k->leaf_lo[s];
        hi = k->leaf_hi[s];
        if (written + (hi - lo) > cap) return -1;
        for (p = lo; p < hi; p++) out[written++] = p;
    }
    return written;
}

/* Frontier kept as contiguous slot runs: every expansion appends one
   (child_first, child_count) run, so each level walks sequential
   memory instead of a gathered index list.  Empty runs are skipped so
   run_first[0] is always the frontier's first live slot (the terminal
   all-leaf level test depends on that). */
int64_t hs_query64(const HsKernel *k, uint64_t query, int64_t threshold,
                   int64_t mode, int64_t *out, int64_t cap,
                   int64_t *ops_out)
{
    int64_t *rf = k->run_first, *rc = k->run_count;
    int64_t *nf = k->next_first, *nc = k->next_count;
    int64_t nruns = 0, ops = 0, written = 0, r, s, a, b, d, nnext;
    int cover;
    int simple = (int)k->simple;
    if (k->top_count > 0) { rf[0] = 0; rc[0] = k->top_count; nruns = 1; }
    while (nruns > 0) {
        if (rf[0] >= k->leaf_level_start) {
            /* Terminal all-leaf level: exact distances, nothing to
               expand. */
            for (r = 0; r < nruns; r++) {
                a = rf[r]; b = a + rc[r]; ops += rc[r];
                for (s = a; s < b; s++) {
                    if (__builtin_popcountll(k->bits[s] ^ query)
                            <= threshold) {
                        written = hs_emit(k, mode, s, out, cap, written);
                        if (written < 0) return -1;
                    }
                }
            }
            break;
        }
        nnext = 0;
        for (r = 0; r < nruns; r++) {
            a = rf[r]; b = a + rc[r]; ops += rc[r];
            for (s = a; s < b; s++) {
                d = __builtin_popcountll(
                    (k->bits[s] ^ query) & k->masks[s]);
                cover = (d + k->unc[s] <= threshold);
                if (!simple && !cover)
                    cover = (d <= threshold) && k->is_leaf[s];
                if (cover) {
                    written = hs_emit(k, mode, s, out, cap, written);
                    if (written < 0) return -1;
                } else if (d <= threshold && k->child_count[s] > 0) {
                    nf[nnext] = k->child_first[s];
                    nc[nnext++] = k->child_count[s];
                }
            }
        }
        { int64_t *t;
          t = rf; rf = nf; nf = t;
          t = rc; rc = nc; nc = t; }
        nruns = nnext;
    }
    *ops_out = ops;
    return written;
}

int64_t hs_query_batch64(const HsKernel *k, const uint64_t *queries,
                         int64_t nq, int64_t threshold, int64_t mode,
                         int64_t *out, int64_t cap, int64_t *counts,
                         int64_t *ops_out)
{
    int64_t total = 0, ops = 0, i, w, o;
    for (i = 0; i < nq; i++) {
        o = 0;
        w = hs_query64(k, queries[i], threshold, mode,
                       out + total, cap - total, &o);
        if (w < 0) return -1;
        counts[i] = w;
        total += w;
        ops += o;
    }
    *ops_out = ops;
    return total;
}

int64_t hs_count64(const HsKernel *k, uint64_t query, int64_t threshold)
{
    int64_t *rf = k->run_first, *rc = k->run_count;
    int64_t *nf = k->next_first, *nc = k->next_count;
    int64_t nruns = 0, total = 0, r, s, a, b, d, nnext;
    int settle;
    int simple = (int)k->simple;
    if (k->top_count > 0) { rf[0] = 0; rc[0] = k->top_count; nruns = 1; }
    while (nruns > 0) {
        if (rf[0] >= k->leaf_level_start) {
            for (r = 0; r < nruns; r++) {
                a = rf[r]; b = a + rc[r];
                for (s = a; s < b; s++)
                    if (__builtin_popcountll(k->bits[s] ^ query)
                            <= threshold)
                        total += k->frequency[s];
            }
            break;
        }
        nnext = 0;
        for (r = 0; r < nruns; r++) {
            a = rf[r]; b = a + rc[r];
            for (s = a; s < b; s++) {
                d = __builtin_popcountll(
                    (k->bits[s] ^ query) & k->masks[s]);
                settle = (d + k->unc[s] <= threshold);
                if (!simple && !settle)
                    settle = (d <= threshold) && k->is_leaf[s];
                if (settle) {
                    total += k->frequency[s];
                } else if (d <= threshold && k->child_count[s] > 0) {
                    nf[nnext] = k->child_first[s];
                    nc[nnext++] = k->child_count[s];
                }
            }
        }
        { int64_t *t;
          t = rf; rf = nf; nf = t;
          t = rc; rc = nc; nc = t; }
        nruns = nnext;
    }
    return total;
}

int64_t hs_contains64(const HsKernel *k, uint64_t query, int64_t threshold)
{
    int64_t *rf = k->run_first, *rc = k->run_count;
    int64_t *nf = k->next_first, *nc = k->next_count;
    int64_t nruns = 0, r, s, a, b, d, nnext;
    int hit;
    int simple = (int)k->simple;
    if (k->top_count > 0) { rf[0] = 0; rc[0] = k->top_count; nruns = 1; }
    while (nruns > 0) {
        if (rf[0] >= k->leaf_level_start) {
            for (r = 0; r < nruns; r++) {
                a = rf[r]; b = a + rc[r];
                for (s = a; s < b; s++)
                    if (__builtin_popcountll(k->bits[s] ^ query)
                            <= threshold)
                        return 1;
            }
            return 0;
        }
        nnext = 0;
        for (r = 0; r < nruns; r++) {
            a = rf[r]; b = a + rc[r];
            for (s = a; s < b; s++) {
                d = __builtin_popcountll(
                    (k->bits[s] ^ query) & k->masks[s]);
                hit = (d + k->unc[s] <= threshold);
                if (!simple && !hit)
                    hit = (d <= threshold) && k->is_leaf[s];
                if (hit)
                    return 1;
                if (d <= threshold && k->child_count[s] > 0) {
                    nf[nnext] = k->child_first[s];
                    nc[nnext++] = k->child_count[s];
                }
            }
        }
        { int64_t *t;
          t = rf; rf = nf; nf = t;
          t = rc; rc = nc; nc = t; }
        nruns = nnext;
    }
    return 0;
}
"""


class _HsKernelStruct(ctypes.Structure):
    """ctypes mirror of the C ``HsKernel`` struct (field order matters)."""

    _fields_ = [
        ("bits", c_void_p),
        ("masks", c_void_p),
        ("unc", c_void_p),
        ("is_leaf", c_void_p),
        ("child_first", c_void_p),
        ("child_count", c_void_p),
        ("leaf_lo", c_void_p),
        ("leaf_hi", c_void_p),
        ("id_offsets", c_void_p),
        ("ids_flat", c_void_p),
        ("frequency", c_void_p),
        ("top_count", c_int64),
        ("leaf_level_start", c_int64),
        ("simple", c_int64),
        ("run_first", c_void_p),
        ("run_count", c_void_p),
        ("next_first", c_void_p),
        ("next_count", c_void_p),
    ]


def _cache_dirs() -> list[Path]:
    dirs = []
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        dirs.append(Path(env))
    dirs.append(Path.home() / ".cache" / "repro-native")
    uid = os.getuid() if hasattr(os, "getuid") else 0
    dirs.append(Path(tempfile.gettempdir()) / f"repro-native-{uid}")
    return dirs


def _compile_library() -> Path:
    """Compile :data:`_C_SOURCE` to a shared library, once per digest."""
    compiler = next(
        (c for c in ("cc", "gcc", "clang") if shutil.which(c)), None
    )
    if compiler is None:
        raise RuntimeError("no C compiler on PATH")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    last_error: Exception | None = None
    for cache_dir in _cache_dirs():
        so_path = cache_dir / f"hs_kernel_{digest}.so"
        if so_path.exists():
            return so_path
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
            c_path = cache_dir / f"hs_kernel_{digest}.c"
            c_path.write_text(_C_SOURCE)
            tmp = cache_dir / f".hs_kernel_{digest}.{os.getpid()}.so"
            base = [compiler, "-O3", "-funroll-loops", "-shared", "-fPIC"]
            for extra in (["-march=native"], []):
                proc = subprocess.run(
                    [*base, *extra, "-o", str(tmp), str(c_path)],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode == 0:
                    break
            else:
                raise RuntimeError(
                    f"{compiler} failed: {proc.stderr.decode()[:500]}"
                )
            os.replace(tmp, so_path)  # atomic: concurrent builds race safely
            return so_path
        except Exception as exc:  # unwritable dir, compiler failure, ...
            last_error = exc
    raise RuntimeError(f"could not build native kernel: {last_error}")


def _load_cc():
    lib = ctypes.CDLL(str(_compile_library()))
    lib.hs_query64.argtypes = [
        POINTER(_HsKernelStruct), c_uint64, c_int64, c_int64,
        c_void_p, c_int64, POINTER(c_int64),
    ]
    lib.hs_query64.restype = c_int64
    lib.hs_query_batch64.argtypes = [
        POINTER(_HsKernelStruct), c_void_p, c_int64, c_int64, c_int64,
        c_void_p, c_int64, c_void_p, POINTER(c_int64),
    ]
    lib.hs_query_batch64.restype = c_int64
    for name in ("hs_count64", "hs_contains64"):
        fn = getattr(lib, name)
        fn.argtypes = [POINTER(_HsKernelStruct), c_uint64, c_int64]
        fn.restype = c_int64
    _smoke_cc(lib)
    return lib


def _smoke_arrays():
    """A one-leaf kernel (code 0b0, id 7) for backend validation."""
    return {
        "bits": np.zeros(1, dtype=np.uint64),
        "masks": np.full(1, np.uint64(0xFFFFFFFFFFFFFFFF)),
        "unc": np.zeros(1, dtype=np.int64),
        "is_leaf": np.ones(1, dtype=np.uint8),
        "child_first": np.zeros(1, dtype=np.int64),
        "child_count": np.zeros(1, dtype=np.int64),
        "leaf_lo": np.zeros(1, dtype=np.int64),
        "leaf_hi": np.ones(1, dtype=np.int64),
        "id_offsets": np.array([0, 1], dtype=np.int64),
        "ids_flat": np.array([7], dtype=np.int64),
        "frequency": np.ones(1, dtype=np.int64),
    }


def _smoke_cc(lib) -> None:
    arrays = _smoke_arrays()
    scratch = [np.zeros(2, dtype=np.int64) for _ in range(4)]
    struct = _HsKernelStruct(
        **{name: c_void_p(arr.ctypes.data) for name, arr in arrays.items()},
        top_count=1,
        leaf_level_start=0,
        simple=1,
        run_first=c_void_p(scratch[0].ctypes.data),
        run_count=c_void_p(scratch[1].ctypes.data),
        next_first=c_void_p(scratch[2].ctypes.data),
        next_count=c_void_p(scratch[3].ctypes.data),
    )
    out = np.zeros(4, dtype=np.int64)
    ops = c_int64(0)
    written = lib.hs_query64(
        byref(struct), 0, 0, 0, out.ctypes.data, out.size, byref(ops)
    )
    if written != 1 or out[0] != 7 or ops.value != 1:
        raise RuntimeError("cc kernel smoke check failed")


# -- the numba tier ---------------------------------------------------------


def _load_numba():
    """``@njit`` mirrors of the C entry points (lazy; optional dep).

    The SWAR popcount uses explicit ``uint64`` constants so type
    inference never widens; everything else is a line-for-line port of
    the run-based C sweep, so visit order, emissions and op counts are
    identical across all three tiers.
    """
    from numba import njit  # deliberate ImportError when absent

    u64 = np.uint64
    m1 = u64(0x5555555555555555)
    m2 = u64(0x3333333333333333)
    m4 = u64(0x0F0F0F0F0F0F0F0F)
    h01 = u64(0x0101010101010101)
    s1, s2, s4, s56 = u64(1), u64(2), u64(4), u64(56)

    @njit(nogil=True)
    def popcnt(x):
        x = x - ((x >> s1) & m1)
        x = (x & m2) + ((x >> s2) & m2)
        x = (x + (x >> s4)) & m4
        return np.int64((x * h01) >> s56)

    @njit(nogil=True)
    def query(bits, masks, unc, is_leaf, child_first, child_count,
              leaf_lo, leaf_hi, id_offsets, ids_flat,
              top_count, leaf_level_start, simple,
              query_word, threshold, mode, rf, rc, nf, nc, out):
        nruns = 0
        if top_count > 0:
            rf[0] = 0
            rc[0] = top_count
            nruns = 1
        ops = 0
        written = 0
        cap = out.shape[0]
        while nruns > 0:
            if rf[0] >= leaf_level_start:
                for r in range(nruns):
                    a = rf[r]
                    b = a + rc[r]
                    ops += rc[r]
                    for s in range(a, b):
                        if popcnt(bits[s] ^ query_word) <= threshold:
                            if mode == 0:
                                lo = id_offsets[leaf_lo[s]]
                                hi = id_offsets[leaf_hi[s]]
                                if written + (hi - lo) > cap:
                                    return (-1, 0)
                                for p in range(lo, hi):
                                    out[written] = ids_flat[p]
                                    written += 1
                            else:
                                lo = leaf_lo[s]
                                hi = leaf_hi[s]
                                if written + (hi - lo) > cap:
                                    return (-1, 0)
                                for p in range(lo, hi):
                                    out[written] = p
                                    written += 1
                break
            nnext = 0
            for r in range(nruns):
                a = rf[r]
                b = a + rc[r]
                ops += rc[r]
                for s in range(a, b):
                    d = popcnt((bits[s] ^ query_word) & masks[s])
                    cover = d + unc[s] <= threshold
                    if simple == 0 and not cover:
                        cover = d <= threshold and is_leaf[s] != 0
                    if cover:
                        if mode == 0:
                            lo = id_offsets[leaf_lo[s]]
                            hi = id_offsets[leaf_hi[s]]
                            if written + (hi - lo) > cap:
                                return (-1, 0)
                            for p in range(lo, hi):
                                out[written] = ids_flat[p]
                                written += 1
                        else:
                            lo = leaf_lo[s]
                            hi = leaf_hi[s]
                            if written + (hi - lo) > cap:
                                return (-1, 0)
                            for p in range(lo, hi):
                                out[written] = p
                                written += 1
                    elif d <= threshold and child_count[s] > 0:
                        nf[nnext] = child_first[s]
                        nc[nnext] = child_count[s]
                        nnext += 1
            t = rf
            rf = nf
            nf = t
            t = rc
            rc = nc
            nc = t
            nruns = nnext
        return (written, ops)

    @njit(nogil=True)
    def query_batch(bits, masks, unc, is_leaf, child_first, child_count,
                    leaf_lo, leaf_hi, id_offsets, ids_flat,
                    top_count, leaf_level_start, simple,
                    queries, threshold, mode, rf, rc, nf, nc,
                    out, counts):
        total = 0
        ops_total = 0
        for i in range(queries.shape[0]):
            written, ops = query(
                bits, masks, unc, is_leaf, child_first, child_count,
                leaf_lo, leaf_hi, id_offsets, ids_flat,
                top_count, leaf_level_start, simple,
                queries[i], threshold, mode, rf, rc, nf, nc,
                out[total:],
            )
            if written < 0:
                return (-1, 0)
            counts[i] = written
            total += written
            ops_total += ops
        return (total, ops_total)

    @njit(nogil=True)
    def count(bits, masks, unc, is_leaf, child_first, child_count,
              frequency, top_count, leaf_level_start, simple,
              query_word, threshold, rf, rc, nf, nc):
        nruns = 0
        if top_count > 0:
            rf[0] = 0
            rc[0] = top_count
            nruns = 1
        total = 0
        while nruns > 0:
            if rf[0] >= leaf_level_start:
                for r in range(nruns):
                    a = rf[r]
                    b = a + rc[r]
                    for s in range(a, b):
                        if popcnt(bits[s] ^ query_word) <= threshold:
                            total += frequency[s]
                break
            nnext = 0
            for r in range(nruns):
                a = rf[r]
                b = a + rc[r]
                for s in range(a, b):
                    d = popcnt((bits[s] ^ query_word) & masks[s])
                    settle = d + unc[s] <= threshold
                    if simple == 0 and not settle:
                        settle = d <= threshold and is_leaf[s] != 0
                    if settle:
                        total += frequency[s]
                    elif d <= threshold and child_count[s] > 0:
                        nf[nnext] = child_first[s]
                        nc[nnext] = child_count[s]
                        nnext += 1
            t = rf
            rf = nf
            nf = t
            t = rc
            rc = nc
            nc = t
            nruns = nnext
        return total

    @njit(nogil=True)
    def contains(bits, masks, unc, is_leaf, child_first, child_count,
                 top_count, leaf_level_start, simple,
                 query_word, threshold, rf, rc, nf, nc):
        nruns = 0
        if top_count > 0:
            rf[0] = 0
            rc[0] = top_count
            nruns = 1
        while nruns > 0:
            if rf[0] >= leaf_level_start:
                for r in range(nruns):
                    a = rf[r]
                    b = a + rc[r]
                    for s in range(a, b):
                        if popcnt(bits[s] ^ query_word) <= threshold:
                            return True
                return False
            nnext = 0
            for r in range(nruns):
                a = rf[r]
                b = a + rc[r]
                for s in range(a, b):
                    d = popcnt((bits[s] ^ query_word) & masks[s])
                    hit = d + unc[s] <= threshold
                    if simple == 0 and not hit:
                        hit = d <= threshold and is_leaf[s] != 0
                    if hit:
                        return True
                    if d <= threshold and child_count[s] > 0:
                        nf[nnext] = child_first[s]
                        nc[nnext] = child_count[s]
                        nnext += 1
            t = rf
            rf = nf
            nf = t
            t = rc
            rc = nc
            nc = t
            nruns = nnext
        return False

    funcs = {
        "query": query,
        "query_batch": query_batch,
        "count": count,
        "contains": contains,
    }
    _smoke_numba(funcs)
    return funcs


def _smoke_numba(funcs) -> None:
    arrays = _smoke_arrays()
    scratch = [np.zeros(2, dtype=np.int64) for _ in range(4)]
    out = np.zeros(4, dtype=np.int64)
    written, ops = funcs["query"](
        arrays["bits"], arrays["masks"], arrays["unc"],
        arrays["is_leaf"], arrays["child_first"], arrays["child_count"],
        arrays["leaf_lo"], arrays["leaf_hi"], arrays["id_offsets"],
        arrays["ids_flat"], 1, 0, 1,
        np.uint64(0), 0, 0, *scratch, out,
    )
    if written != 1 or out[0] != 7 or ops != 1:
        raise RuntimeError("numba kernel smoke check failed")


# -- per-index execution state ----------------------------------------------


class _StateBase:
    """Contiguous tree-array bindings shared by both compiled tiers.

    Keeps its own references to every bound array so the memory can
    never be collected while a raw pointer (or a numba call) is
    outstanding.  ``lock`` serializes access to the scratch run
    buffers — both tiers release the GIL while sweeping.
    """

    backend = "none"

    def __init__(self, flat: "FlatHAIndex") -> None:
        self.lock = threading.Lock()
        self.bits = np.ascontiguousarray(flat._bits1)
        self.masks = np.ascontiguousarray(flat._masks1)
        self.unc = np.ascontiguousarray(flat._uncovered)
        self.is_leaf = np.ascontiguousarray(flat._is_leaf).view(np.uint8)
        self.child_first = np.ascontiguousarray(flat._child_first)
        self.child_count = np.ascontiguousarray(flat._child_count)
        self.leaf_lo = np.ascontiguousarray(flat._leaf_lo)
        self.leaf_hi = np.ascontiguousarray(flat._leaf_hi)
        self.id_offsets = np.ascontiguousarray(flat._id_offsets)
        self.ids_flat = np.ascontiguousarray(flat._ids_flat)
        self.frequency = np.ascontiguousarray(flat._frequency)
        self.top_count = int(flat._top_slots.size)
        self.leaf_level_start = int(flat._leaf_level_start)
        self.simple = int(flat._cover_is_collect)
        scratch_len = flat.num_nodes + 1
        self.scratch = [
            np.empty(scratch_len, dtype=np.int64) for _ in range(4)
        ]
        # Taken nodes have disjoint leaf ranges (a covered node is
        # never expanded), so one query emits at most every id / leaf
        # position once: this buffer provably never overflows for
        # single-query calls.
        self.out_cap = max(
            int(self.ids_flat.size), int(self.id_offsets.size), 256
        )
        self.out = np.empty(self.out_cap, dtype=np.int64)

    def _run_single(self, query: int, threshold: int, mode: int):
        raise NotImplementedError

    def _run_batch(self, queries, threshold, mode, out, counts):
        raise NotImplementedError

    def sweep(self, query: int, threshold: int, mode: int):
        """One query; returns (emitted int64 array, ops)."""
        with self.lock:
            written, ops = self._run_single(query, threshold, mode)
            if written < 0:  # pragma: no cover - capacity is provable
                raise IndexStateError("native sweep output overflow")
            return self.out[:written].copy(), ops

    def sweep_batch(self, queries: np.ndarray, threshold: int, mode: int):
        """A query batch; returns (emitted, per-query counts, ops)."""
        nq = int(queries.size)
        counts = np.empty(nq, dtype=np.int64)
        cap = self.out_cap
        hard_cap = max(self.out_cap * max(nq, 1), cap)
        while True:
            out = np.empty(cap, dtype=np.int64)
            with self.lock:
                total, ops = self._run_batch(
                    queries, threshold, mode, out, counts
                )
            if total >= 0:
                return out[:total], counts, ops
            if cap >= hard_cap:  # pragma: no cover - capacity is provable
                raise IndexStateError("native sweep output overflow")
            cap = min(cap * 2, hard_cap)

    def count(self, query: int, threshold: int) -> int:
        raise NotImplementedError

    def contains(self, query: int, threshold: int) -> bool:
        raise NotImplementedError


class _CcState(_StateBase):
    backend = "cc"

    def __init__(self, lib, flat: "FlatHAIndex") -> None:
        super().__init__(flat)
        self._lib = lib
        self._struct = _HsKernelStruct(
            bits=c_void_p(self.bits.ctypes.data),
            masks=c_void_p(self.masks.ctypes.data),
            unc=c_void_p(self.unc.ctypes.data),
            is_leaf=c_void_p(self.is_leaf.ctypes.data),
            child_first=c_void_p(self.child_first.ctypes.data),
            child_count=c_void_p(self.child_count.ctypes.data),
            leaf_lo=c_void_p(self.leaf_lo.ctypes.data),
            leaf_hi=c_void_p(self.leaf_hi.ctypes.data),
            id_offsets=c_void_p(self.id_offsets.ctypes.data),
            ids_flat=c_void_p(self.ids_flat.ctypes.data),
            frequency=c_void_p(self.frequency.ctypes.data),
            top_count=self.top_count,
            leaf_level_start=self.leaf_level_start,
            simple=self.simple,
            run_first=c_void_p(self.scratch[0].ctypes.data),
            run_count=c_void_p(self.scratch[1].ctypes.data),
            next_first=c_void_p(self.scratch[2].ctypes.data),
            next_count=c_void_p(self.scratch[3].ctypes.data),
        )

    def _run_single(self, query: int, threshold: int, mode: int):
        ops = c_int64(0)
        written = self._lib.hs_query64(
            byref(self._struct), query, threshold, mode,
            self.out.ctypes.data, self.out_cap, byref(ops),
        )
        return written, int(ops.value)

    def _run_batch(self, queries, threshold, mode, out, counts):
        ops = c_int64(0)
        total = self._lib.hs_query_batch64(
            byref(self._struct), queries.ctypes.data, queries.size,
            threshold, mode, out.ctypes.data, out.size,
            counts.ctypes.data, byref(ops),
        )
        return total, int(ops.value)

    def count(self, query: int, threshold: int) -> int:
        with self.lock:
            return int(
                self._lib.hs_count64(byref(self._struct), query, threshold)
            )

    def contains(self, query: int, threshold: int) -> bool:
        with self.lock:
            return bool(
                self._lib.hs_contains64(
                    byref(self._struct), query, threshold
                )
            )


class _NumbaState(_StateBase):
    backend = "numba"

    def __init__(self, funcs, flat: "FlatHAIndex") -> None:
        super().__init__(flat)
        self._funcs = funcs

    def _tree_args(self):
        return (
            self.bits, self.masks, self.unc, self.is_leaf,
            self.child_first, self.child_count, self.leaf_lo,
            self.leaf_hi, self.id_offsets, self.ids_flat,
            self.top_count, self.leaf_level_start, self.simple,
        )

    def _run_single(self, query: int, threshold: int, mode: int):
        return self._funcs["query"](
            *self._tree_args(), np.uint64(query), threshold, mode,
            *self.scratch, self.out,
        )

    def _run_batch(self, queries, threshold, mode, out, counts):
        return self._funcs["query_batch"](
            *self._tree_args(), queries, threshold, mode,
            *self.scratch, out, counts,
        )

    def count(self, query: int, threshold: int) -> int:
        with self.lock:
            return int(
                self._funcs["count"](
                    self.bits, self.masks, self.unc, self.is_leaf,
                    self.child_first, self.child_count, self.frequency,
                    self.top_count, self.leaf_level_start, self.simple,
                    np.uint64(query), threshold, *self.scratch,
                )
            )

    def contains(self, query: int, threshold: int) -> bool:
        with self.lock:
            return bool(
                self._funcs["contains"](
                    self.bits, self.masks, self.unc, self.is_leaf,
                    self.child_first, self.child_count,
                    self.top_count, self.leaf_level_start, self.simple,
                    np.uint64(query), threshold, *self.scratch,
                )
            )
