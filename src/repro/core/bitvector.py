"""Binary codes and Hamming-distance primitives.

The paper (Section 3) represents every tuple by a fixed-length binary code
``U`` produced by a learned similarity hash.  This module provides the two
representations the rest of the library builds on:

* single codes as plain Python ints (arbitrary length, cheap
  ``int.bit_count()`` popcounts), always paired with an explicit bit
  length, and
* batches of codes as numpy ``uint64`` arrays for the vectorized
  linear-scan baseline and for bulk index construction.

Bit position 0 is the most significant bit of the code string, matching
the paper's left-to-right examples (``"101100010"`` has bit 0 = 1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.errors import CodeLengthError, InvalidParameterError

#: Maximum code length representable in a packed ``uint64`` batch.
MAX_PACKED_LENGTH = 64

#: ``np.bitwise_count`` landed in numpy 2.0; the table fallback below
#: keeps the declared ``numpy>=1.24`` floor honest.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Per-byte popcounts for the pre-2.0 fallback kernel.
_POPCOUNT_TABLE = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount64(array: np.ndarray) -> np.ndarray:
    """Per-element popcount of a ``uint64`` array (any shape).

    Dispatches to ``np.bitwise_count`` on numpy >= 2.0; older numpy
    gets an exact byte-table kernel (view each word as 8 bytes, look
    up per-byte counts, sum).  Both paths return ``uint8`` counts.
    """
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(array)
    contiguous = np.ascontiguousarray(array)
    return (
        _POPCOUNT_TABLE[contiguous.view(np.uint8)]
        .reshape(contiguous.shape + (8,))
        .sum(axis=-1, dtype=np.uint8)
    )


def hamming_distance(code_a: int, code_b: int) -> int:
    """Return the Hamming distance between two codes of equal length.

    This is the XOR-then-popcount kernel from Section 1 of the paper.
    Lengths are not checked here (hot path); callers compare codes drawn
    from the same :class:`CodeSet` or index.
    """
    return (code_a ^ code_b).bit_count()


def code_from_string(bits: str) -> int:
    """Parse a code written as a string of ``0``/``1`` characters.

    Spaces are ignored, so the paper's grouped notation
    ``"001 001 010"`` parses directly.

    >>> code_from_string("001 001 010")
    74
    """
    compact = bits.replace(" ", "")
    if not compact or any(ch not in "01" for ch in compact):
        raise InvalidParameterError(f"not a binary string: {bits!r}")
    return int(compact, 2)


def code_to_string(code: int, length: int) -> str:
    """Render ``code`` as a ``length``-character string of 0s and 1s."""
    _check_code(code, length)
    return format(code, f"0{length}b")


def bit_at(code: int, position: int, length: int) -> int:
    """Return the bit of ``code`` at ``position`` (0 = most significant)."""
    if not 0 <= position < length:
        raise InvalidParameterError(
            f"bit position {position} out of range for length {length}"
        )
    return (code >> (length - 1 - position)) & 1


def _check_code(code: int, length: int) -> None:
    if code < 0:
        raise InvalidParameterError("binary codes are non-negative")
    if code >> length:
        raise CodeLengthError(
            f"code {code:#x} does not fit in {length} bits"
        )


def pack_codes(codes: Iterable[int], length: int) -> np.ndarray:
    """Pack codes into a ``uint64`` array for vectorized operations.

    Raises :class:`CodeLengthError` if any code does not fit in ``length``
    bits or ``length`` exceeds :data:`MAX_PACKED_LENGTH`.
    """
    if not 1 <= length <= MAX_PACKED_LENGTH:
        raise InvalidParameterError(
            f"packed length must be in [1, {MAX_PACKED_LENGTH}], got {length}"
        )
    values = list(codes)
    for value in values:
        _check_code(value, length)
    return np.asarray(values, dtype=np.uint64)


def pack_codes_wide(codes: Iterable[int], length: int) -> np.ndarray:
    """Pack codes of any length into an (n, words) ``uint64`` matrix.

    Word 0 holds the least-significant 64 bits.  Complements
    :func:`pack_codes` for code lengths above 64 (e.g. 128-bit GIST
    signatures); :func:`batch_hamming_wide` consumes the result.
    """
    if length < 1:
        raise InvalidParameterError("length must be positive")
    values = list(codes)
    for value in values:
        _check_code(value, length)
    words = (length + 63) // 64
    packed = np.empty((len(values), words), dtype=np.uint64)
    if not values:
        return packed
    # Shift/mask the whole column at once: the per-word loop runs
    # ``words`` times (2 for 128-bit codes), not ``rows * words``.
    column = np.array(values, dtype=object)
    mask = (1 << 64) - 1
    for word in range(words):
        packed[:, word] = ((column >> (word * 64)) & mask).astype(np.uint64)
    return packed


def _query_words(query: int, words: int) -> np.ndarray:
    mask = (1 << 64) - 1
    return np.asarray(
        [(query >> (word * 64)) & mask for word in range(words)],
        dtype=np.uint64,
    )


def batch_hamming_wide(packed: np.ndarray, query: int) -> np.ndarray:
    """Vectorized distances for wide (multi-word) packed codes."""
    xor = np.bitwise_xor(packed, _query_words(query, packed.shape[1]))
    return popcount64(xor).sum(axis=1).astype(np.uint16)


def batch_hamming(packed: np.ndarray, query: int) -> np.ndarray:
    """Vectorized Hamming distances from every packed code to ``query``.

    Returns a ``uint8`` array of distances; the core of the honest
    nested-loops baseline (Section 6, "Nested-Loops").
    """
    xor = np.bitwise_xor(packed, np.uint64(query))
    return popcount64(xor).astype(np.uint8)


def batch_select(packed: np.ndarray, query: int, threshold: int) -> np.ndarray:
    """Indices of packed codes within ``threshold`` of ``query``."""
    return np.flatnonzero(batch_hamming(packed, query) <= threshold)


class CodeSet:
    """An immutable, length-checked collection of binary codes.

    ``CodeSet`` is the interchange type between the hashing layer (which
    produces codes), the indexes (which consume them), and the MapReduce
    jobs (which shuffle them).  Tuple identifiers are positional: code ``i``
    belongs to tuple ``i`` of the originating dataset unless explicit
    ``ids`` are supplied.

    ``weights`` optionally attaches a per-bit weight vector (one
    non-negative float per bit position, position 0 = most significant)
    for the weighted query plane (:mod:`repro.core.weighted`).  Weights
    are carried metadata: they survive :meth:`subset`/:meth:`with_ids`
    and pickling but do not participate in equality or hashing, so a
    weighted set still compares equal to its unweighted twin.
    """

    __slots__ = (
        "_codes", "_length", "_ids", "_weights", "_packed", "_packed_wide"
    )

    def __init__(
        self,
        codes: Sequence[int],
        length: int,
        ids: Sequence[int] | None = None,
        weights: Sequence[float] | None = None,
    ) -> None:
        if length < 1:
            raise InvalidParameterError("code length must be positive")
        for code in codes:
            _check_code(code, length)
        if ids is not None and len(ids) != len(codes):
            raise InvalidParameterError(
                f"{len(ids)} ids supplied for {len(codes)} codes"
            )
        if weights is not None:
            weights = tuple(float(w) for w in weights)
            if len(weights) != length:
                raise InvalidParameterError(
                    f"{len(weights)} weights supplied for "
                    f"{length}-bit codes"
                )
            if any(w < 0 or w != w for w in weights):
                raise InvalidParameterError(
                    "bit weights must be non-negative and finite"
                )
        self._codes = tuple(codes)
        self._length = length
        self._ids = tuple(ids) if ids is not None else None
        self._weights = weights
        self._packed: np.ndarray | None = None
        self._packed_wide: np.ndarray | None = None

    @property
    def length(self) -> int:
        """Bit length shared by every code in the set."""
        return self._length

    @property
    def codes(self) -> tuple[int, ...]:
        return self._codes

    @property
    def ids(self) -> tuple[int, ...]:
        if self._ids is not None:
            return self._ids
        return tuple(range(len(self._codes)))

    @property
    def weights(self) -> tuple[float, ...] | None:
        """Attached per-bit weights, or ``None`` (uniform semantics)."""
        return self._weights

    def __len__(self) -> int:
        return len(self._codes)

    def __iter__(self):
        return iter(self._codes)

    def __getitem__(self, index: int) -> int:
        return self._codes[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CodeSet):
            return NotImplemented
        return (
            self._length == other._length
            and self._codes == other._codes
            and self.ids == other.ids
        )

    def __hash__(self) -> int:
        return hash((self._length, self._codes, self.ids))

    def __repr__(self) -> str:
        return f"CodeSet(n={len(self)}, length={self._length})"

    def packed(self) -> np.ndarray:
        """The codes as a ``uint64`` numpy array (length must be <= 64).

        The array is computed once, cached (the set is immutable) and
        returned read-only, so select/join/validation callers packing
        the same set repeatedly share one packing pass.
        """
        if self._packed is None:
            packed = pack_codes(self._codes, self._length)
            packed.setflags(write=False)
            self._packed = packed
        return self._packed

    def packed_wide(self) -> np.ndarray:
        """The codes as an (n, words) ``uint64`` matrix, any length.

        Cached and read-only, like :meth:`packed`.
        """
        if self._packed_wide is None:
            packed = pack_codes_wide(self._codes, self._length)
            packed.setflags(write=False)
            self._packed_wide = packed
        return self._packed_wide

    def __reduce__(self):
        # Pickle the logical content only; packed caches are rebuilt
        # on demand instead of shipped across process boundaries.
        return (
            type(self),
            (self._codes, self._length, self._ids, self._weights),
        )

    def with_ids(self, ids: Sequence[int]) -> "CodeSet":
        """A copy of this set carrying explicit tuple identifiers."""
        return CodeSet(
            self._codes, self._length, ids=ids, weights=self._weights
        )

    def with_weights(
        self, weights: Sequence[float] | None
    ) -> "CodeSet":
        """A copy carrying the given per-bit weights (``None`` clears)."""
        return CodeSet(
            self._codes, self._length, ids=self._ids, weights=weights
        )

    def subset(self, indices: Sequence[int]) -> "CodeSet":
        """A new ``CodeSet`` of the rows at ``indices`` (ids preserved)."""
        own_ids = self.ids
        return CodeSet(
            [self._codes[i] for i in indices],
            self._length,
            ids=[own_ids[i] for i in indices],
            weights=self._weights,
        )

    @classmethod
    def from_strings(cls, strings: Iterable[str]) -> "CodeSet":
        """Build a set from equal-length ``0``/``1`` strings.

        >>> CodeSet.from_strings(["001001010", "001011101"]).length
        9
        """
        parsed = [s.replace(" ", "") for s in strings]
        if not parsed:
            raise InvalidParameterError("cannot infer length of empty set")
        lengths = {len(s) for s in parsed}
        if len(lengths) != 1:
            raise CodeLengthError(f"mixed code lengths: {sorted(lengths)}")
        return cls([code_from_string(s) for s in parsed], lengths.pop())
