"""Gray-code ordering of binary codes (Definition 5, Proposition 2).

The Dynamic HA-Index sorts binary codes "according to the Gray order"
before windowed pattern extraction.  Consecutive Gray codewords differ in
exactly one bit, so sorting codes by their *Gray rank* — the integer whose
Gray encoding equals the code — clusters codes with small mutual Hamming
distance (Faloutsos, SIGMOD '86).  The same ordering drives the pivot
selection for balanced MapReduce partitioning (Section 5.1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.bitvector import CodeSet


def to_gray(value: int) -> int:
    """Gray encoding of ``value``: ``g = b ^ (b >> 1)``."""
    return value ^ (value >> 1)


def from_gray(gray: int) -> int:
    """Inverse of :func:`to_gray` — the rank of ``gray`` in Gray order."""
    value = 0
    while gray:
        value ^= gray
        gray >>= 1
    return value


def gray_rank(code: int) -> int:
    """Rank of a binary code in the Gray order (alias of :func:`from_gray`).

    Sorting codes by this key realizes the paper's "sort based on the
    non-decreasing Gray order of the tuples' binary codes" (Algorithm 1,
    line 1).
    """
    return from_gray(code)


def gray_sort_indices(codes: Sequence[int]) -> list[int]:
    """Indices that sort ``codes`` into non-decreasing Gray order.

    The sort is stable, so ties (duplicate codes) keep their original
    relative order — this keeps H-Build deterministic.
    """
    return sorted(range(len(codes)), key=lambda i: gray_rank(codes[i]))


def gray_sort(codeset: CodeSet) -> CodeSet:
    """A copy of ``codeset`` in Gray order, tuple ids carried along."""
    return codeset.subset(gray_sort_indices(codeset.codes))


def gray_rank_array(packed: np.ndarray) -> np.ndarray:
    """Vectorized Gray ranks for a packed ``uint64`` code array.

    The inverse Gray transform is a parallel prefix XOR, computed here with
    log2(64) shift/XOR rounds.
    """
    ranks = packed.astype(np.uint64).copy()
    shift = np.uint64(1)
    while shift < np.uint64(64):
        ranks ^= ranks >> shift
        shift <<= np.uint64(1)
    return ranks


def adjacent_hamming_distances(sorted_codes: Iterable[int]) -> list[int]:
    """Hamming distances between consecutive codes of an iterable.

    Used by tests and benches to confirm the clustering property
    (Proposition 2): Gray-sorted codes have small adjacent distances
    compared to a random permutation.
    """
    distances = []
    iterator = iter(sorted_codes)
    try:
        previous = next(iterator)
    except StopIteration:
        return distances
    for code in iterator:
        distances.append((previous ^ code).bit_count())
        previous = code
    return distances
