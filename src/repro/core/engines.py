"""Central registry of every query engine the library ships.

One :class:`EngineSpec` per engine, keyed by a short CLI-friendly name.
The registry is the single source of truth consumed by the select/join
front-ends, the ``--engine`` flags of the CLI, and the service planes —
previously ``core/select.py`` and ``cli.py`` each hard-coded their own
builder tables.  ``INDEX_FAMILIES`` (the paper's Table 4 names) is now
derived from the entries that carry a ``paper_name``.

Engines fall into four groups:

* the paper's seven Table 4 approaches (``nested-loops`` .. ``dha``);
* ``flat`` — the compiled vectorized plane of the Dynamic HA-Index;
* ``mih`` — Multi-Index Hashing (:mod:`repro.engines.mih`), the
  substring-table competitor with native progressive-radius kNN;
* ``weighted`` — the weighted Hamming plane
  (:mod:`repro.core.weighted`): thresholds are weighted distances
  under a per-bit weight vector (the codes' own, or ``weights=``
  passed to the builder; uniform weights reproduce the unweighted
  engines exactly).

Builders import their index modules lazily so importing the registry
stays cheap and cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.bitvector import CodeSet
from repro.core.errors import InvalidParameterError
from repro.core.index_base import HammingIndex


@dataclass(frozen=True)
class EngineSpec:
    """One registered engine.

    Attributes:
        name: canonical registry key (also the CLI ``--engine`` value).
        description: one-line summary shown by ``repro info``.
        builder: ``builder(codes, **params) -> HammingIndex``.
        paper_name: Table 4 name when the engine is one of the paper's
            seven compared approaches (feeds ``INDEX_FAMILIES``).
        aliases: alternative names accepted wherever engines are named.
        batched: the built index offers ``search_batch`` /
            ``search_codes_batch`` multi-query entry points.
        mutable: the built index supports ``insert``/``delete``
            (the compiled kernels are read-only: mutate the source
            DHA-Index and recompile).
        weighted: thresholds are *weighted* Hamming distances under
            the engine's per-bit weight vector
            (:mod:`repro.core.weighted`).

    The capability fields feed the generated engine tables in
    ``docs/engines.md``/``docs/api.md`` (``repro docs-gen``), so a new
    engine documents itself by registering here.
    """

    name: str
    description: str
    builder: Callable[..., HammingIndex]
    paper_name: str | None = None
    aliases: tuple[str, ...] = field(default=())
    batched: bool = False
    mutable: bool = True
    weighted: bool = False


def _build_nested_loops(codes: CodeSet, **params) -> HammingIndex:
    from repro.baselines.nested_loops import NestedLoopsIndex

    return NestedLoopsIndex.build(codes, **params)


def _build_mh4(codes: CodeSet, **params) -> HammingIndex:
    from repro.baselines.multi_hash import MultiHashTableIndex

    params.setdefault("num_tables", 4)
    return MultiHashTableIndex.build(codes, **params)


def _build_mh10(codes: CodeSet, **params) -> HammingIndex:
    from repro.baselines.multi_hash import MultiHashTableIndex

    params.setdefault("num_tables", 10)
    return MultiHashTableIndex.build(codes, **params)


def _build_hengine(codes: CodeSet, **params) -> HammingIndex:
    from repro.baselines.hengine import HEngineIndex

    return HEngineIndex.build(codes, **params)


def _build_radix(codes: CodeSet, **params) -> HammingIndex:
    from repro.core.radix_tree import RadixTreeIndex

    return RadixTreeIndex.build(codes, **params)


def _build_sha(codes: CodeSet, **params) -> HammingIndex:
    from repro.core.static_ha import StaticHAIndex

    return StaticHAIndex.build(codes, **params)


def _build_dha(codes: CodeSet, **params) -> HammingIndex:
    from repro.core.dynamic_ha import DynamicHAIndex

    return DynamicHAIndex.build(codes, **params)


def _build_flat(codes: CodeSet, **params) -> HammingIndex:
    from repro.core.dynamic_ha import DynamicHAIndex

    return DynamicHAIndex.build(codes, **params).compile()


def _build_native(codes: CodeSet, **params) -> HammingIndex:
    from repro.core.dynamic_ha import DynamicHAIndex

    return DynamicHAIndex.build(codes, **params).compile_native()


def _build_mih(codes: CodeSet, **params) -> HammingIndex:
    from repro.engines.mih import MIHIndex

    return MIHIndex.build(codes, **params)


def _build_weighted(codes: CodeSet, **params) -> HammingIndex:
    from repro.core.weighted import WeightedHammingIndex

    return WeightedHammingIndex.build(codes, **params)


#: Every registered engine, in Table 4 order first.
ENGINES: dict[str, EngineSpec] = {
    spec.name: spec
    for spec in (
        EngineSpec(
            "nested-loops",
            "vectorized linear scan (the paper's cost yardstick)",
            _build_nested_loops,
            paper_name="Nested-Loops",
        ),
        EngineSpec(
            "mh4",
            "Manku MultiHashTable, 4 tables (single-block keys)",
            _build_mh4,
            paper_name="MH-4",
        ),
        EngineSpec(
            "mh10",
            "Manku MultiHashTable, 10 tables (pair keys)",
            _build_mh10,
            paper_name="MH-10",
        ),
        EngineSpec(
            "hengine",
            "HEngine signature-segmentation baseline",
            _build_hengine,
            paper_name="HEngine",
        ),
        EngineSpec(
            "radix",
            "plain radix (bit-trie) index",
            _build_radix,
            paper_name="Radix-Tree",
        ),
        EngineSpec(
            "sha",
            "Static HA-Index (memoized segment sharing)",
            _build_sha,
            paper_name="SHA-Index",
        ),
        EngineSpec(
            "dha",
            "Dynamic HA-Index, Python node walk",
            _build_dha,
            paper_name="DHA-Index",
            aliases=("nodes",),
        ),
        EngineSpec(
            "flat",
            "Dynamic HA-Index compiled to the vectorized flat kernel",
            _build_flat,
            batched=True,
            mutable=False,
        ),
        EngineSpec(
            "native",
            "flat kernel swept by compiled backends (numba/cc, "
            "numpy fallback)",
            _build_native,
            aliases=("jit", "compiled"),
            batched=True,
            mutable=False,
        ),
        EngineSpec(
            "mih",
            "Multi-Index Hashing: substring tables + progressive kNN",
            _build_mih,
            batched=True,
        ),
        EngineSpec(
            "weighted",
            "weighted Hamming plane over the DHA kernel "
            "(native sweep + exact re-rank)",
            _build_weighted,
            aliases=("wha",),
            batched=True,
            weighted=True,
        ),
    )
}

_ALIASES: dict[str, str] = {
    alias: spec.name for spec in ENGINES.values() for alias in spec.aliases
}


def engine_names() -> list[str]:
    """Canonical engine names, registry order."""
    return list(ENGINES)


def engine_choices() -> list[str]:
    """Every accepted engine name (canonical + aliases), sorted.

    The CLI ``--engine`` flags list exactly this, so a newly registered
    engine shows up everywhere without touching the parser.
    """
    return sorted([*ENGINES, *_ALIASES])


def get_engine(name: str) -> EngineSpec:
    """Resolve an engine name (or alias) to its spec."""
    spec = ENGINES.get(_ALIASES.get(name, name))
    if spec is None:
        raise InvalidParameterError(
            f"unknown engine {name!r}; expected one of "
            f"{', '.join(engine_choices())}"
        )
    return spec


def build_index(name: str, codes: CodeSet, **params) -> HammingIndex:
    """Build the named engine's index over ``codes``."""
    return get_engine(name).builder(codes, **params)


def paper_families() -> dict[str, Callable[[CodeSet], HammingIndex]]:
    """Table 4 builders keyed by the paper's names, paper order."""
    return {
        spec.paper_name: spec.builder
        for spec in ENGINES.values()
        if spec.paper_name is not None
    }
