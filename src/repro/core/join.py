"""Centralized Hamming-join (Definition 2).

``h-join(R, S)`` pairs every ``r`` in ``R`` with every ``s`` in ``S``
whose codes lie within the threshold.  The index-based plan follows
Section 5's opening: build an HA-Index over the smaller input and run
H-Search once per tuple of the larger one.  The quadratic nested-loops
plan is kept as ground truth for tests and as the cost yardstick the
paper's introduction argues against.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bitvector import CodeSet, batch_hamming
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.index_base import HammingIndex


def nested_loops_join(
    left: CodeSet, right: CodeSet, threshold: int
) -> list[tuple[int, int]]:
    """Exact quadratic join; vectorized on the inner table."""
    pairs: list[tuple[int, int]] = []
    right_packed = right.packed()
    right_ids = right.ids
    for code, left_id in zip(left.codes, left.ids):
        distances = batch_hamming(right_packed, code)
        for position in (distances <= threshold).nonzero()[0]:
            pairs.append((left_id, right_ids[position]))
    return pairs


def hamming_join(
    left: CodeSet,
    right: CodeSet,
    threshold: int,
    index_builder: Callable[[CodeSet], HammingIndex] | None = None,
) -> list[tuple[int, int]]:
    """Index-based ``h-join``: index the smaller side, probe the larger.

    Returns (left id, right id) pairs regardless of which side was
    indexed, so the result is directly comparable with
    :func:`nested_loops_join`.  The default index is the Dynamic
    HA-Index.
    """
    if index_builder is None:
        index_builder = DynamicHAIndex.build
    swap = len(left) > len(right)
    build_side, probe_side = (right, left) if swap else (left, right)
    index = index_builder(build_side)
    pairs: list[tuple[int, int]] = []
    for code, probe_id in zip(probe_side.codes, probe_side.ids):
        for build_id in index.search(code, threshold):
            if swap:
                pairs.append((probe_id, build_id))
            else:
                pairs.append((build_id, probe_id))
    return pairs


def self_join(codes: CodeSet, threshold: int) -> list[tuple[int, int]]:
    """``h-join(S, S)`` without the trivial (x, x) pairs, each pair once.

    The MapReduce experiments of Section 6.2 evaluate self-joins.  The
    implementation exploits duplicate codes: H-Search runs once per
    *distinct* code, and the id pairs are expanded from the duplicate
    groups — on hashed real data (many near-duplicates) this saves most
    of the probing.
    """
    index = DynamicHAIndex.build(codes)
    grouped: dict[int, list[int]] = {}
    for code, tuple_id in zip(codes.codes, codes.ids):
        grouped.setdefault(code, []).append(tuple_id)
    pairs: list[tuple[int, int]] = []
    for code, left_ids in grouped.items():
        # Pairs among duplicates of this code (distance 0).
        for position, left_id in enumerate(left_ids):
            for right_id in left_ids[position + 1 :]:
                pairs.append(_ordered(left_id, right_id))
        # Pairs against other qualifying codes, counted once by
        # restricting to strictly larger code values.
        for other in index.search_codes(code, threshold):
            if other <= code:
                continue
            for left_id in left_ids:
                for right_id in grouped[other]:
                    pairs.append(_ordered(left_id, right_id))
    return pairs


def _ordered(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)
