"""Centralized Hamming-join (Definition 2).

``h-join(R, S)`` pairs every ``r`` in ``R`` with every ``s`` in ``S``
whose codes lie within the threshold.  The index-based plan follows
Section 5's opening: build an HA-Index over the smaller input and run
H-Search once per tuple of the larger one.  The quadratic nested-loops
plan is kept as ground truth for tests — including the parallel-join
tests, which compare every engine/worker combination against it — and
as the cost yardstick the paper's introduction argues against.

The probe engine is any name from the central registry
(:mod:`repro.core.engines`):

* ``engine="nodes"``/``"dha"`` (default) walks the Python node tree per
  probe code, exactly as before;
* ``engine="flat"`` compiles the index (:class:`FlatHAIndex`) and
  probes it in chunks through ``search_batch``, one vectorized frontier
  sweep per chunk;
* ``engine="native"`` does the same through the compiled native plane
  (:class:`NativeHAIndex`: numba or the cc kernel, numpy fallback);
* ``engine="mih"`` indexes the build side with Multi-Index Hashing and
  probes through its batched substring sweeps;
* any other registered engine (``mh4``, ``hengine``, ...) is probed
  per code through its ``search`` entry point.

``parallel=True`` additionally fans the probe chunks out over a
``concurrent.futures`` process pool (the compiled kernel is a bundle of
numpy arrays, so it pickles cheaply into the workers), falling back to
threads when process pools are unavailable in the host environment.
"""

from __future__ import annotations

import itertools
from typing import Callable, Sequence

import numpy as np

from repro.core.bitvector import (
    MAX_PACKED_LENGTH,
    CodeSet,
    batch_hamming,
    batch_hamming_wide,
)
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.engines import get_engine
from repro.core.errors import InvalidParameterError
from repro.core.index_base import HammingIndex
from repro.obs import maybe_trace
from repro.obs.trace import trace_span

#: Probe codes handled per ``search_batch`` call (and per parallel task).
PROBE_CHUNK = 512

#: Compiled kernel installed in each pool worker by the initializer.
_WORKER_FLAT = None


def nested_loops_join(
    left: CodeSet, right: CodeSet, threshold: int
) -> list[tuple[int, int]]:
    """Exact quadratic join, vectorized on the inner table.

    One ``batch_hamming`` pass per outer tuple, with the qualifying
    inner ids gathered through ``np.flatnonzero`` and appended in bulk.
    Handles any code length (wide codes use the multi-word kernel).
    This is the documented oracle for the index-based and parallel
    join paths: every other plan must reproduce its pairs exactly.
    """
    pairs: list[tuple[int, int]] = []
    wide = right.length > MAX_PACKED_LENGTH
    right_packed = right.packed_wide() if wide else right.packed()
    distances_to = batch_hamming_wide if wide else batch_hamming
    right_ids = np.asarray(right.ids, dtype=np.int64)
    for code, left_id in zip(left.codes, left.ids):
        matches = np.flatnonzero(
            distances_to(right_packed, code) <= threshold
        )
        if matches.size:
            pairs.extend(
                zip(
                    itertools.repeat(left_id),
                    right_ids[matches].tolist(),
                )
            )
    return pairs


def _init_probe_worker(flat) -> None:
    """Pool initializer: unpickle the compiled kernel once per worker."""
    global _WORKER_FLAT
    _WORKER_FLAT = flat


def _probe_ids_chunk(payload: tuple[Sequence[int], int]) -> list[list[int]]:
    codes, threshold = payload
    return _WORKER_FLAT.search_batch(codes, threshold)


def _probe_codes_chunk(payload: tuple[Sequence[int], int]) -> list[list[int]]:
    codes, threshold = payload
    return _WORKER_FLAT.search_codes_batch(codes, threshold)


def _chunked(codes: Sequence[int]) -> list[Sequence[int]]:
    return [
        codes[i:i + PROBE_CHUNK] for i in range(0, len(codes), PROBE_CHUNK)
    ]


def _parallel_probe(
    flat,
    codes: Sequence[int],
    threshold: int,
    workers: int | None,
    probe_fn: Callable,
) -> list[list[int]]:
    """Fan probe chunks over a process pool; threads as a fallback.

    ``pool.map`` preserves chunk order, so the flattened result lines
    up with ``codes``.  Pool-infrastructure failures (fork not
    available, broken pool, unpicklable state) degrade to a thread
    pool — same results, no crash — since the point of the process
    pool is only to sidestep the GIL for the numpy sweeps.
    """
    import concurrent.futures as futures

    chunks = _chunked(codes)
    payloads = [(chunk, threshold) for chunk in chunks]
    try:
        with futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_probe_worker,
            initargs=(flat,),
        ) as pool:
            per_chunk = list(pool.map(probe_fn, payloads))
    except (OSError, ValueError, RuntimeError, futures.BrokenExecutor):
        with futures.ThreadPoolExecutor(
            max_workers=workers,
            initializer=_init_probe_worker,
            initargs=(flat,),
        ) as pool:
            per_chunk = list(pool.map(probe_fn, payloads))
    return [result for chunk in per_chunk for result in chunk]


def _flat_probe(
    flat,
    codes: Sequence[int],
    threshold: int,
    parallel: bool,
    workers: int | None,
    probe_fn_name: str,
) -> list[list[int]]:
    if parallel:
        probe_fn = (
            _probe_ids_chunk
            if probe_fn_name == "search_batch"
            else _probe_codes_chunk
        )
        return _parallel_probe(flat, codes, threshold, workers, probe_fn)
    batched = getattr(flat, probe_fn_name)
    results: list[list[int]] = []
    for chunk in _chunked(codes):
        results.extend(batched(chunk, threshold))
    return results


def _check_engine(engine: str) -> str:
    """Resolve ``engine`` through the registry; returns the canonical name."""
    return get_engine(engine).name


def _default_builder(
    engine: str,
) -> Callable[[CodeSet], HammingIndex]:
    """Build-side index constructor for a canonical engine name.

    ``flat`` and ``native`` build the plain Dynamic HA-Index — the
    probe phase compiles it once (the historical behavior); everything
    else builds through its registry spec.
    """
    if engine in ("flat", "native"):
        return DynamicHAIndex.build
    return get_engine(engine).builder


def _probe_kernel(index: HammingIndex, engine: str, parallel: bool):
    """Batched probe target for the join, or ``None`` for per-code walks.

    The default DHA engine keeps its per-code node walk unless the
    caller asked for parallelism.  Otherwise prefer the compiled
    kernel when the index offers one, then the index's own batched
    entry points (MIH), and fall back to ``None`` for engines that
    only expose single-query ``search``.
    """
    if engine in ("dha",) and not parallel:
        return None
    if engine == "native":
        compile_native = getattr(index, "compile_native", None)
        if compile_native is not None:
            return compile_native()
    compile_index = getattr(index, "compile", None)
    if compile_index is not None:
        return compile_index()
    if hasattr(index, "search_batch"):
        return index
    return None


def hamming_join(
    left: CodeSet,
    right: CodeSet,
    threshold: int,
    index_builder: Callable[[CodeSet], HammingIndex] | None = None,
    *,
    engine: str = "nodes",
    parallel: bool = False,
    workers: int | None = None,
    weights: Sequence[float] | None = None,
    profile: bool = False,
) -> list[tuple[int, int]]:
    """Index-based ``h-join``: index the smaller side, probe the larger.

    Returns (left id, right id) pairs regardless of which side was
    indexed, so the result is directly comparable with
    :func:`nested_loops_join`.  ``engine`` is any registry name;
    ``engine="flat"`` (implied by ``parallel=True``) probes the
    compiled kernel in batches, ``engine="mih"`` probes its own
    batched sweeps, and ``workers`` bounds the pool size when
    parallel.  Custom ``index_builder`` indexes without batched entry
    points fall back to the per-code walk.  ``profile=True`` runs the
    join under an ``h_join`` trace (build/probe phase spans;
    :func:`repro.obs.last_trace`).

    With ``weights`` (one non-negative float per bit; the distance
    measure is symmetric, so one vector covers both sides) the join
    pairs every ``r`` and ``s`` within *weighted* Hamming distance
    ``threshold``: the build side is wrapped in the weighted plane
    (:class:`~repro.core.weighted.WeightedHammingIndex`) and probed
    through its batched weighted sweeps.
    """
    engine = _check_engine(engine)
    if weights is not None:
        return _weighted_join(
            left, right, threshold, weights,
            engine=engine, profile=profile,
        )
    if index_builder is None:
        index_builder = _default_builder(engine)
    with maybe_trace(
        "h_join", profile,
        threshold=threshold, engine=engine, parallel=parallel,
    ):
        swap = len(left) > len(right)
        build_side, probe_side = (right, left) if swap else (left, right)
        with trace_span("h_join.build", side_size=len(build_side)):
            index = index_builder(build_side)
        pairs: list[tuple[int, int]] = []
        kernel = _probe_kernel(index, engine, parallel)
        if kernel is not None:
            with trace_span("h_join.probe", probes=len(probe_side)):
                id_lists = _flat_probe(
                    kernel,
                    list(probe_side.codes),
                    threshold,
                    parallel,
                    workers,
                    "search_batch",
                )
            with trace_span("h_join.expand"):
                for probe_id, build_ids in zip(probe_side.ids, id_lists):
                    if swap:
                        pairs.extend(
                            zip(itertools.repeat(probe_id), build_ids)
                        )
                    else:
                        pairs.extend(
                            zip(build_ids, itertools.repeat(probe_id))
                        )
            return pairs
        with trace_span("h_join.probe", probes=len(probe_side)):
            for code, probe_id in zip(probe_side.codes, probe_side.ids):
                for build_id in index.search(code, threshold):
                    if swap:
                        pairs.append((probe_id, build_id))
                    else:
                        pairs.append((build_id, probe_id))
        return pairs


def _weighted_join(
    left: CodeSet,
    right: CodeSet,
    threshold: float,
    weights: Sequence[float],
    *,
    engine: str,
    profile: bool,
) -> list[tuple[int, int]]:
    """Weighted ``h-join``: weighted plane over the smaller side.

    ``engine`` names the *inner* kernel the weighted plane compiles
    (``weighted``/``nodes``/``flat``/``native`` all resolve to the
    DHA kernel); probing runs through the plane's batched weighted
    sweeps in the same chunks as the unweighted fast path.
    """
    from repro.core.weighted import WeightedHammingIndex, as_weights

    resolved = as_weights(weights, left.length)
    # Every engine name funnels to the DHA kernel here: the weighted
    # plane sweeps the compiled flat arrays regardless of which
    # spelling (nodes/flat/native/weighted) the caller asked for.
    inner = "dha"
    with maybe_trace(
        "h_join", profile,
        threshold=threshold, engine="weighted", parallel=False,
    ):
        swap = len(left) > len(right)
        build_side, probe_side = (right, left) if swap else (left, right)
        with trace_span("h_join.build", side_size=len(build_side)):
            index = WeightedHammingIndex.build(
                build_side, weights=resolved, engine=inner
            )
        pairs: list[tuple[int, int]] = []
        with trace_span("h_join.probe", probes=len(probe_side)):
            id_lists: list[list[int]] = []
            for chunk in _chunked(list(probe_side.codes)):
                id_lists.extend(index.search_batch(chunk, threshold))
        with trace_span("h_join.expand"):
            for probe_id, build_ids in zip(probe_side.ids, id_lists):
                if swap:
                    pairs.extend(
                        zip(itertools.repeat(probe_id), build_ids)
                    )
                else:
                    pairs.extend(
                        zip(build_ids, itertools.repeat(probe_id))
                    )
        return pairs


def _duplicate_pairs(group: np.ndarray) -> list[tuple[int, int]]:
    """All unordered id pairs inside one duplicate-code group."""
    rows, cols = np.triu_indices(group.size, k=1)
    a = group[rows]
    b = group[cols]
    return list(
        zip(np.minimum(a, b).tolist(), np.maximum(a, b).tolist())
    )


def _cross_pairs(
    left_ids: np.ndarray, right_ids: np.ndarray
) -> list[tuple[int, int]]:
    """All ordered id pairs between two distinct-code groups."""
    lows = np.minimum.outer(left_ids, right_ids).ravel()
    highs = np.maximum.outer(left_ids, right_ids).ravel()
    return list(zip(lows.tolist(), highs.tolist()))


def self_join(
    codes: CodeSet,
    threshold: int,
    *,
    engine: str = "nodes",
    parallel: bool = False,
    workers: int | None = None,
    profile: bool = False,
) -> list[tuple[int, int]]:
    """``h-join(S, S)`` without the trivial (x, x) pairs, each pair once.

    The MapReduce experiments of Section 6.2 evaluate self-joins.  The
    implementation exploits duplicate codes: H-Search runs once per
    *distinct* code, and the id pairs are expanded from the duplicate
    groups (``np.triu_indices`` within a group, outer min/max across
    groups) — on hashed real data (many near-duplicates) this saves
    most of the probing.  ``engine``/``parallel``/``workers`` choose
    the probe plan exactly as in :func:`hamming_join` (the engine must
    expose ``search_codes``: DHA, flat, or MIH), and ``profile=True``
    traces the phases the same way.
    """
    engine = _check_engine(engine)
    with maybe_trace(
        "h_join", profile,
        threshold=threshold, engine=engine, parallel=parallel, self=True,
    ):
        with trace_span("h_join.build", side_size=len(codes)):
            index = _default_builder(engine)(codes)
            grouped: dict[int, list[int]] = {}
            for code, tuple_id in zip(codes.codes, codes.ids):
                grouped.setdefault(code, []).append(tuple_id)
            groups = {
                code: np.asarray(ids, dtype=np.int64)
                for code, ids in grouped.items()
            }
        pairs: list[tuple[int, int]] = []
        for group in groups.values():
            # Pairs among duplicates of this code (distance 0).
            if group.size > 1:
                pairs.extend(_duplicate_pairs(group))
        distinct = list(groups)
        kernel = _probe_kernel(index, engine, parallel)
        with trace_span("h_join.probe", probes=len(distinct)):
            if kernel is not None:
                neighbor_lists = _flat_probe(
                    kernel,
                    distinct,
                    threshold,
                    parallel,
                    workers,
                    "search_codes_batch",
                )
            elif hasattr(index, "search_codes"):
                neighbor_lists = [
                    index.search_codes(code, threshold)
                    for code in distinct
                ]
            else:
                raise InvalidParameterError(
                    f"engine {engine!r} does not expose search_codes; "
                    "self_join needs dha, flat, or mih"
                )
        with trace_span("h_join.expand"):
            for code, neighbors in zip(distinct, neighbor_lists):
                # Pairs against other qualifying codes, counted once by
                # restricting to strictly larger code values.
                for other in neighbors:
                    if other <= code:
                        continue
                    pairs.extend(
                        _cross_pairs(groups[code], groups[other])
                    )
        return pairs


def _ordered(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)
