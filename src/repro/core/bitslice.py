"""Bit-sliced (transposed) layout for batches of binary codes.

The packed layouts in :mod:`repro.core.bitvector` store one code per
row: ``packed[i]`` holds code ``i``'s bits.  This module stores the
*transpose*: ``planes[b]`` is a ``uint64`` lane array whose bit ``j``
(lane ``j``) is bit ``b`` of code ``j``.  A batch of up to 64 codes then
occupies one machine word per bit position, so a single XOR against a
broadcast query bit operates on the whole batch at once — verification
runs *word-parallel across the batch dimension* instead of per
(code, query) pair.

Distances are accumulated bit-serially with ripple-carry adders over
counter planes: per bit position, one XOR produces the per-lane
mismatch mask, and ``O(log width)`` AND/XOR word operations add it into
the per-lane counters.  No popcount is needed anywhere, which is why
this layout is the preferred verification plane when
``np.bitwise_count`` is unavailable (numpy < 2) and per-word popcounts
fall back to the byte-table kernel — and the natural layout for SIMD
kernels, where the same counter network runs over full vector
registers.

Bit position 0 is the most significant bit, matching
:func:`repro.core.bitvector.bit_at` and the paper's left-to-right code
strings.  Lane ``j`` of word ``w`` (i.e. bit ``1 << j`` of
``planes[b, w]``) belongs to code ``64 * w + j``; ragged tails (batch
sizes not divisible by 64) leave the padding lanes zero.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bitvector import _check_code
from repro.core.errors import InvalidParameterError

_FULL = np.uint64(0xFFFFFFFFFFFFFFFF)
_ONE = np.uint64(1)


def _lane_words(n: int) -> int:
    return (n + 63) // 64


def _tail_mask(n: int) -> np.ndarray:
    """Per-word mask clearing the padding lanes beyond ``n`` codes."""
    words = _lane_words(n)
    mask = np.full(words, _FULL, dtype=np.uint64)
    tail = n % 64
    if words and tail:
        mask[-1] = np.uint64((1 << tail) - 1)
    return mask


def pack_bitplanes(codes: Sequence[int], length: int) -> np.ndarray:
    """Transpose ``codes`` into a ``(length, ceil(n / 64))`` plane matrix.

    Plane ``b`` holds bit ``b`` (MSB first) of every code, one lane per
    code.  Works for any code length; codes are length-checked exactly
    like :func:`repro.core.bitvector.pack_codes`.
    """
    if length < 1:
        raise InvalidParameterError("length must be positive")
    values = list(codes)
    for value in values:
        _check_code(value, length)
    n = len(values)
    words = _lane_words(n)
    planes = np.zeros((length, words), dtype=np.uint64)
    if not n:
        return planes
    # One row of the (n, length) bit matrix per plane, packed into
    # lanes little-bit-first so lane j is code j.
    column = np.array(values, dtype=object)
    for b in range(length):
        shift = length - 1 - b
        bits = ((column >> shift) & 1).astype(np.uint8)
        packed = np.packbits(bits, bitorder="little")
        lanes = np.zeros(words * 8, dtype=np.uint8)
        lanes[: packed.size] = packed
        planes[b] = lanes.view(np.uint64)
    return planes


def unpack_bitplanes(planes: np.ndarray, n: int, length: int) -> list[int]:
    """Invert :func:`pack_bitplanes`: the first ``n`` codes as ints."""
    if planes.shape[0] != length:
        raise InvalidParameterError(
            f"{planes.shape[0]} planes for length {length}"
        )
    if n > planes.shape[1] * 64:
        raise InvalidParameterError(
            f"{n} codes do not fit in {planes.shape[1]} lane words"
        )
    values = [0] * n
    for b in range(length):
        shift = length - 1 - b
        lanes = np.unpackbits(
            planes[b].view(np.uint8), bitorder="little"
        )[:n]
        for j in np.flatnonzero(lanes).tolist():
            values[j] |= 1 << shift
    return values


def transpose_packed(packed: np.ndarray, length: int) -> np.ndarray:
    """Bit-planes from an ``(n, words)`` row-major packed matrix.

    Equivalent to ``pack_bitplanes`` on the unpacked codes, but
    operates on the packed ``uint64`` words directly (no Python-int
    round trip), so flat-kernel arrays can be resliced cheaply.
    """
    if packed.ndim == 1:
        packed = packed[:, None]
    n = packed.shape[0]
    if length > packed.shape[1] * 64:
        raise InvalidParameterError(
            f"length {length} exceeds {packed.shape[1]} packed words"
        )
    words = _lane_words(n)
    planes = np.zeros((length, words), dtype=np.uint64)
    if not n:
        return planes
    lanes = np.zeros(words * 8, dtype=np.uint8)
    for b in range(length):
        pos = length - 1 - b  # word 0 holds the least-significant bits
        bits = (
            (packed[:, pos // 64] >> np.uint64(pos % 64)) & _ONE
        ).astype(np.uint8)
        packed_bits = np.packbits(bits, bitorder="little")
        lanes[:] = 0
        lanes[: packed_bits.size] = packed_bits
        planes[b] = lanes.view(np.uint64)
    return planes


def bitsliced_distances(
    planes: np.ndarray, n: int, query: int
) -> np.ndarray:
    """Exact Hamming distances of the ``n`` sliced codes to ``query``.

    One XOR per bit plane produces the per-lane mismatch mask; a
    ripple-carry adder over counter planes accumulates it, so the whole
    batch is scored with pure AND/XOR word operations — no popcount.
    Returns an ``int64`` array of length ``n``.
    """
    length = planes.shape[0]
    _check_code(query, length)
    keep = _tail_mask(n)
    counters: list[np.ndarray] = []
    for b in range(length):
        if (query >> (length - 1 - b)) & 1:
            carry = (planes[b] ^ _FULL) & keep
        else:
            carry = planes[b] & keep
        for counter in counters:
            if not carry.any():
                break
            lower = counter & carry
            np.bitwise_xor(counter, carry, out=counter)
            carry = lower
        else:
            if carry.any():
                counters.append(carry.copy())
    distances = np.zeros(n, dtype=np.int64)
    for k, counter in enumerate(counters):
        lanes = np.unpackbits(
            counter.view(np.uint8), bitorder="little"
        )[:n]
        distances += lanes.astype(np.int64) << k
    return distances


def bitsliced_within(
    planes: np.ndarray, n: int, query: int, threshold: int
) -> np.ndarray:
    """Boolean mask of the sliced codes within ``threshold`` of ``query``."""
    return bitsliced_distances(planes, n, query) <= threshold


class BitSlicedBatch:
    """A query batch sliced for word-parallel candidate verification.

    Slicing the *queries* (one lane per query) turns "verify candidate
    ``c`` against every query of the batch" into one
    :func:`bitsliced_distances` pass: all ``B`` per-query distances to
    ``c`` come out of ``width`` XORs plus the counter network, however
    large the batch.  This is the verification orientation the service
    micro-batch and the batched flat kernel need — candidates arrive
    one at a time (buffered inserts, probe hits), queries arrive 64 at
    a time.
    """

    __slots__ = ("_planes", "_n", "_length")

    def __init__(self, queries: Sequence[int], length: int) -> None:
        values = list(queries)
        self._planes = pack_bitplanes(values, length)
        self._n = len(values)
        self._length = length

    def __len__(self) -> int:
        return self._n

    @property
    def length(self) -> int:
        return self._length

    def distances(self, candidate: int) -> np.ndarray:
        """Per-query distances to ``candidate`` (``int64``, length B)."""
        return bitsliced_distances(self._planes, self._n, candidate)

    def matches(
        self, candidates: Sequence[int], threshold: int
    ) -> np.ndarray:
        """Boolean (candidates, B) matrix of pairs within ``threshold``.

        Row ``i`` is candidate ``i``'s per-query verification mask —
        the same shape :meth:`FlatHAIndex._batch_buffer_matches`
        produces from the broadcast popcount kernel.
        """
        out = np.empty((len(candidates), self._n), dtype=bool)
        for row, candidate in enumerate(candidates):
            out[row] = (
                bitsliced_distances(self._planes, self._n, candidate)
                <= threshold
            )
        return out
