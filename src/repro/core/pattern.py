"""Masked bit patterns: the FLSS / FLSSeq algebra (Definitions 3–4).

A *fixed-length substring* (FLSS) fixes a contiguous run of bit positions
and leaves the rest free; a *fixed-length subsequence* (FLSSeq) fixes an
arbitrary subset of positions.  Both are represented here as a
:class:`MaskedPattern` — a pair ``(bits, mask)`` where set mask bits are
the *effective* positions and ``bits`` holds their values (non-effective
bits of ``bits`` are zero).

The partial Hamming distance of a pattern to a query counts differing
bits at effective positions only, exactly the paper's
"count the bit difference in the corresponding effective bit positions".
Proposition 1 (downward closure) then makes the accumulated distance along
an HA-Index path a lower bound on the true distance, which is what makes
pruning exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.errors import CodeLengthError, InvalidParameterError

#: Character used for a free ("don't care") position in pattern strings.
FREE_CHAR = "."


@dataclass(frozen=True, slots=True)
class MaskedPattern:
    """A fixed-length bit pattern with free positions.

    Attributes:
        bits: values at effective positions; zero elsewhere.
        mask: set bits mark the effective positions.
        length: total pattern length in bits.
    """

    bits: int
    mask: int
    length: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise InvalidParameterError("pattern length must be positive")
        if self.mask >> self.length:
            raise CodeLengthError(
                f"mask {self.mask:#x} does not fit in {self.length} bits"
            )
        if self.bits & ~self.mask:
            raise InvalidParameterError(
                "pattern bits set outside the effective mask"
            )

    # -- constructors ----------------------------------------------------

    @classmethod
    def from_string(cls, pattern: str) -> "MaskedPattern":
        """Parse the paper's dotted notation, e.g. ``"...0.1.1."``.

        Spaces are ignored; ``.`` (or ``·``) marks a free position.
        """
        compact = pattern.replace(" ", "").replace("·", FREE_CHAR)
        if not compact:
            raise InvalidParameterError("empty pattern string")
        bits = 0
        mask = 0
        for ch in compact:
            bits <<= 1
            mask <<= 1
            if ch == "1":
                bits |= 1
                mask |= 1
            elif ch == "0":
                mask |= 1
            elif ch != FREE_CHAR:
                raise InvalidParameterError(
                    f"invalid pattern character {ch!r} in {pattern!r}"
                )
        return cls(bits, mask, len(compact))

    @classmethod
    def full(cls, code: int, length: int) -> "MaskedPattern":
        """A pattern with every position effective (a complete code)."""
        full_mask = (1 << length) - 1
        if code & ~full_mask:
            raise CodeLengthError(
                f"code {code:#x} does not fit in {length} bits"
            )
        return cls(code, full_mask, length)

    @classmethod
    def empty(cls, length: int) -> "MaskedPattern":
        """A pattern with no effective positions."""
        return cls(0, 0, length)

    # -- basic queries ----------------------------------------------------

    @property
    def effective_bits(self) -> int:
        """Number of effective (fixed) positions."""
        return self.mask.bit_count()

    @property
    def is_complete(self) -> bool:
        """True when every position is effective."""
        return self.mask == (1 << self.length) - 1

    def __str__(self) -> str:
        chars = []
        for position in range(self.length - 1, -1, -1):
            if (self.mask >> position) & 1:
                chars.append("1" if (self.bits >> position) & 1 else "0")
            else:
                chars.append(FREE_CHAR)
        return "".join(chars)

    # -- the FLSS / FLSSeq relations --------------------------------------

    def matches(self, code: int) -> bool:
        """True when ``code`` agrees with this pattern at effective bits.

        This is the paper's ``bitmatch`` test (Algorithm 2): the pattern is
        an FLSSeq of ``code``.
        """
        return (code ^ self.bits) & self.mask == 0

    def generalizes(self, other: "MaskedPattern") -> bool:
        """True when every code matching ``other`` also matches ``self``.

        Equivalent to: ``self``'s effective positions are a subset of
        ``other``'s and the two agree there.
        """
        if self.length != other.length:
            return False
        if self.mask & ~other.mask:
            return False
        return (self.bits ^ other.bits) & self.mask == 0

    def is_contiguous(self) -> bool:
        """True when the effective positions form one contiguous run.

        Distinguishes an FLSS (Definition 3) from a general FLSSeq
        (Definition 4).  The empty pattern counts as contiguous.
        """
        if self.mask == 0:
            return True
        shifted = self.mask >> ((self.mask & -self.mask).bit_length() - 1)
        return (shifted & (shifted + 1)) == 0

    # -- distance and composition ------------------------------------------

    def distance(self, code: int) -> int:
        """Partial Hamming distance to ``code`` over effective positions."""
        return ((code ^ self.bits) & self.mask).bit_count()

    def distance_to_pattern(self, other: "MaskedPattern") -> int:
        """Partial distance over positions effective in *both* patterns."""
        if self.length != other.length:
            raise CodeLengthError("pattern lengths differ")
        return ((self.bits ^ other.bits) & self.mask & other.mask).bit_count()

    def combine(self, other: "MaskedPattern") -> "MaskedPattern":
        """Union of two patterns with disjoint effective positions.

        This is the ``combine`` step of H-Search (Algorithm 3, line 15):
        a parent pattern and a child residual merge into the pattern of the
        path so far.  Overlapping masks indicate a construction bug, so
        they raise.
        """
        if self.length != other.length:
            raise CodeLengthError("pattern lengths differ")
        if self.mask & other.mask:
            raise InvalidParameterError(
                "combine requires disjoint effective positions"
            )
        return MaskedPattern(
            self.bits | other.bits, self.mask | other.mask, self.length
        )

    def residual(self, code: int) -> "MaskedPattern":
        """The part of ``code`` not covered by this pattern.

        ``pattern.combine(pattern.residual(code))`` reconstructs the full
        code; used by H-Build to store child bits relative to a parent.
        """
        full_mask = (1 << self.length) - 1
        free = full_mask & ~self.mask
        return MaskedPattern(code & free, free, self.length)


def common_pattern(
    codes: Sequence[int], length: int
) -> MaskedPattern:
    """Maximal FLSSeq shared by all ``codes`` (the agreement pattern).

    Effective positions are exactly those where every code agrees; this is
    the maximal common fixed-length subsequence extracted by H-Build's
    ``extractFLSSeq`` (Algorithm 1, line 5).  Raises on an empty input.
    """
    if not codes:
        raise InvalidParameterError("common_pattern of no codes")
    ones = codes[0]
    zeros = ~codes[0]
    for code in codes[1:]:
        ones &= code
        zeros &= ~code
    full_mask = (1 << length) - 1
    mask = (ones | zeros) & full_mask
    return MaskedPattern(ones & mask, mask, length)


def common_of_patterns(
    patterns: Iterable[MaskedPattern],
) -> MaskedPattern:
    """Maximal FLSSeq shared by all ``patterns``.

    A position is effective in the result when it is effective in every
    input pattern and all inputs agree on its value.  This is the upper-
    level merge step of H-Build (Algorithm 1, lines 21-24), where the
    "codes" being merged are themselves partial patterns.
    """
    iterator = iter(patterns)
    try:
        first = next(iterator)
    except StopIteration:
        raise InvalidParameterError("common_of_patterns of no patterns")
    mask = first.mask
    ones = first.bits
    zeros = ~first.bits & first.mask
    length = first.length
    for pattern in iterator:
        if pattern.length != length:
            raise CodeLengthError("pattern lengths differ")
        mask &= pattern.mask
        ones &= pattern.bits
        zeros &= ~pattern.bits & pattern.mask
    mask &= ones | zeros
    return MaskedPattern(ones & mask, mask, length)
