"""Dynamic HA-Index (Sections 4.4–4.6): Gray-ordered FLSSeq sharing.

H-Build (Algorithm 1) sorts the distinct codes in Gray order, slides a
window of ``w`` slots over them and turns each window's maximal common
FLSSeq into a parent node; levels are merged the same way up to a target
depth.  Every node stores an *absolute* masked pattern — the bits it knows
about all its descendants.  Because a parent's pattern generalizes each
child's, the partial distance to the query grows monotonically down any
path, so H-Search (Algorithm 3) can prune a whole subtree as soon as a
node's partial distance exceeds the threshold (Proposition 1) and is exact
at the leaves, whose patterns are complete codes.

Equivalence with the paper's formulation: Algorithm 3 carries residual
patterns down the path and ``combine``-s them; since the residual masks
along a path are disjoint, the combined distance equals the absolute
pattern distance computed here, and the per-query memo table plays the
role of the paper's per-node *visited flag* — a node's distance is
computed once per query no matter how many paths reach it.

Leaves are one node per *distinct* code carrying the tuple-id hash table
("we build a hash table for the bottom node ... key is the leaf node's
binary codes, value is the tuple's ID").  Constructing the index with
``keep_ids=False`` drops the id payload — the paper's leaf-less variant
broadcast by the MapReduce Hamming-join Option B — in which case
:meth:`search_codes` still answers exactly over codes.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.bitvector import CodeSet
from repro.core.errors import IndexStateError, InvalidParameterError
from repro.core.gray import gray_rank
from repro.core.index_base import HammingIndex, IndexStats
from repro.core.pattern import MaskedPattern, common_of_patterns
from repro.obs import note_search
from repro.obs.trace import record_span, trace_span, tracing

#: Default sliding-window slots (paper Figure 8 sweeps 0.005n .. 0.04n).
DEFAULT_WINDOW = 8
#: Default index depth (paper Figure 8 sweeps depths 4..7).
DEFAULT_MAX_DEPTH = 6
#: Inserted codes buffered before an H-Build-style merge (Section 4.5).
DEFAULT_REBUILD_BUFFER = 256


class _DhaNode:
    """One HA-Index node: an absolute pattern plus children or ids.

    ``bits``/``mask`` mirror ``pattern`` so the H-Search hot loop can
    compute partial distances without attribute chains, and ``epoch`` is
    the per-query visited stamp (the paper's visited flag).
    """

    __slots__ = (
        "pattern", "bits", "mask", "children", "ids", "frequency",
        "parent", "epoch",
    )

    def __init__(self, pattern: MaskedPattern) -> None:
        self.pattern = pattern
        self.bits = pattern.bits
        self.mask = pattern.mask
        self.children: list[_DhaNode] = []
        self.ids: list[int] = []
        self.frequency = 0
        self.parent: _DhaNode | None = None
        self.epoch = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children


@dataclass(frozen=True, slots=True)
class SearchStep:
    """One node examination in a traced H-Search (see Table 3).

    Attributes:
        pattern: the node's FLSSeq in dotted notation.
        distance: partial Hamming distance of the pattern to the query.
        depth: node depth from the top level (0 = top).
        action: ``"expanded"``, ``"pruned"`` or ``"matched"`` (a
            qualifying leaf).
    """

    pattern: str
    distance: int
    depth: int
    action: str


def _step_action(node: "_DhaNode", qualified: bool) -> str:
    if not qualified:
        return "pruned"
    return "matched" if node.is_leaf else "expanded"


def _node_depth(node: "_DhaNode") -> int:
    depth = 0
    current = node.parent
    while current is not None:
        depth += 1
        current = current.parent
    return depth


class DynamicHAIndex(HammingIndex):
    """The paper's Dynamic HA-Index.

    Args:
        code_length: bit length of indexed codes.
        window: sliding-window slots ``w`` of H-Build.
        max_depth: number of pattern levels built above the leaves.
        rebuild_buffer: inserted codes buffered before a rebuild merge.
        keep_ids: store tuple ids at the leaves (``False`` gives the
            leaf-less broadcast variant used by MapReduce Option B).
        gray_order: sort codes by Gray rank before the windowed merge
            (Algorithm 1, line 1).  ``False`` sorts by plain numeric
            value instead — an ablation knob showing how much of the
            FLSSeq sharing the Gray clustering property buys.
    """

    def __init__(
        self,
        code_length: int,
        window: int = DEFAULT_WINDOW,
        max_depth: int = DEFAULT_MAX_DEPTH,
        rebuild_buffer: int = DEFAULT_REBUILD_BUFFER,
        keep_ids: bool = True,
        gray_order: bool = True,
    ) -> None:
        super().__init__(code_length)
        if window < 2:
            raise InvalidParameterError("window must hold at least 2 slots")
        if max_depth < 1:
            raise InvalidParameterError("max_depth must be positive")
        if rebuild_buffer < 1:
            raise InvalidParameterError("rebuild_buffer must be positive")
        self._window = window
        self._max_depth = max_depth
        self._rebuild_buffer = rebuild_buffer
        self._keep_ids = keep_ids
        self._gray_order = gray_order
        self._top: list[_DhaNode] = []
        self._leaf_by_code: dict[int, _DhaNode] = {}
        self._buffer: list[tuple[int, int]] = []
        self._frozen = False
        self._compiled = None
        self._compiled_mutations = -1
        self._compiled_tree_version = -1
        self._compiled_native = None
        self._compiled_native_mutations = -1
        self._compiled_native_tree_version = -1
        self._tree_version = 0

    @property
    def window(self) -> int:
        return self._window

    @property
    def max_depth(self) -> int:
        return self._max_depth

    @property
    def keeps_ids(self) -> bool:
        return self._keep_ids

    @property
    def num_distinct_codes(self) -> int:
        return len(self._leaf_by_code) + len(
            {code for code, _ in self._buffer}
        )

    # -- H-Build (Algorithm 1) ----------------------------------------------

    def _bulk_load(self, codes: CodeSet) -> None:
        grouped: dict[int, list[int]] = {}
        for code, tuple_id in zip(codes.codes, codes.ids):
            grouped.setdefault(code, []).append(tuple_id)
        self._rebuild(grouped)

    def _rebuild(self, grouped: dict[int, list[int]]) -> None:
        """(Re)run H-Build over distinct codes and their id lists."""
        self._compiled = None
        self._compiled_mutations = -1
        self._compiled_native = None
        self._compiled_native_mutations = -1
        self._tree_version += 1
        self._top = []
        self._leaf_by_code = {}
        self._buffer = []
        self._size = sum(len(ids) for ids in grouped.values())
        if not grouped:
            return
        sort_key = gray_rank if self._gray_order else None
        leaves = []
        for code in sorted(grouped, key=sort_key):
            leaf = _DhaNode(MaskedPattern.full(code, self._code_length))
            if self._keep_ids:
                leaf.ids = list(grouped[code])
            leaf.frequency = len(grouped[code])
            self._leaf_by_code[code] = leaf
            leaves.append(leaf)
        level = leaves
        top: list[_DhaNode] = []
        for _ in range(self._max_depth):
            if len(level) <= 1:
                break
            level = self._build_level(level, top)
        top.extend(level)
        self._top = top

    def _build_level(
        self, level: list[_DhaNode], top: list[_DhaNode]
    ) -> list[_DhaNode]:
        """One windowed merge pass; unshareable nodes go to ``top``."""
        next_level: list[_DhaNode] = []
        consolidated: dict[MaskedPattern, _DhaNode] = {}
        for start in range(0, len(level), self._window):
            window_nodes = level[start : start + self._window]
            if len(window_nodes) == 1:
                # A lone trailing node cannot share; carry it upward.
                next_level.append(window_nodes[0])
                continue
            agreement = common_of_patterns(
                node.pattern for node in window_nodes
            )
            if agreement.mask == 0:
                # No common FLSSeq: link these nodes to the top level
                # (Algorithm 1, line 16).
                top.extend(
                    node for node in window_nodes if node.parent is None
                )
                continue
            parent = consolidated.get(agreement)
            if parent is None:
                parent = _DhaNode(agreement)
                consolidated[agreement] = parent
                next_level.append(parent)
            for node in window_nodes:
                node.parent = parent
                parent.children.append(node)
                parent.frequency += node.frequency
        return next_level

    # -- H-Search (Algorithm 3) ----------------------------------------------

    _search_epoch = 0

    def _search_nodes(self, query: int, threshold: int) -> list[_DhaNode]:
        """Qualifying leaves of the pattern DAG, each exactly once.

        Breadth-first over the node levels; the per-query epoch stamp is
        the paper's per-node visited flag, so a node reachable through
        several qualifying parents is expanded once.
        """
        if tracing():
            return self._search_nodes_traced(query, threshold)
        DynamicHAIndex._search_epoch += 1
        epoch = DynamicHAIndex._search_epoch
        length = self._code_length
        queue: list[_DhaNode] = []
        leaves: list[_DhaNode] = []
        ops = 0
        for node in self._top:
            ops += 1
            distance = ((node.bits ^ query) & node.mask).bit_count()
            if distance <= threshold:
                node.epoch = epoch
                if distance + length - node.mask.bit_count() <= threshold:
                    # The cover shortcut applies at every level, the
                    # top included (deep tuple chains surface heavily
                    # masked patterns here): collect without testing
                    # the subtree.  Keeps the op accounting identical
                    # to the flat kernel's uniform per-level test.
                    self._collect_leaves(node, epoch, leaves)
                else:
                    queue.append(node)
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            children = node.children
            if not children:
                leaves.append(node)
                continue
            for child in children:
                if child.epoch != epoch:
                    ops += 1
                    distance = (
                        (child.bits ^ query) & child.mask
                    ).bit_count()
                    if distance <= threshold:
                        child.epoch = epoch
                        if (
                            distance + length - child.mask.bit_count()
                            <= threshold
                        ):
                            # Even if every uncovered bit differs, the
                            # whole subtree qualifies: collect its
                            # leaves without further distance tests.
                            self._collect_leaves(child, epoch, leaves)
                        else:
                            queue.append(child)
        self.last_search_ops = ops + len(self._buffer)
        return leaves

    def _search_nodes_traced(
        self, query: int, threshold: int
    ) -> list[_DhaNode]:
        """`_search_nodes` with per-level span attribution.

        Level-synchronous replay of the same breadth-first walk (a FIFO
        queue visits nodes in level order, so examination order, epoch
        stamping and therefore the op count are identical).  Each BFS
        level becomes one ``h_search.level`` span and the insert-buffer
        charge one ``h_search.buffer`` span, so the trace's ops sum to
        ``last_search_ops`` exactly.
        """
        DynamicHAIndex._search_epoch += 1
        epoch = DynamicHAIndex._search_epoch
        length = self._code_length
        leaves: list[_DhaNode] = []
        total_ops = 0
        expanded: list[_DhaNode] = []
        with trace_span("h_search.level", depth=0) as span:
            ops = 0
            for node in self._top:
                ops += 1
                distance = (
                    (node.bits ^ query) & node.mask
                ).bit_count()
                if distance <= threshold:
                    node.epoch = epoch
                    if (
                        distance + length - node.mask.bit_count()
                        <= threshold
                    ):
                        # Same top-level cover shortcut as the untraced
                        # walk; a covered top never joins the frontier.
                        self._collect_leaves(node, epoch, leaves)
                    elif node.children:
                        expanded.append(node)
                    else:
                        leaves.append(node)
            span.add_ops(ops)
            span.annotate(examined=ops, expanded=len(expanded))
            total_ops += ops
        depth = 1
        while expanded:
            candidates = [
                child for node in expanded for child in node.children
            ]
            with trace_span("h_search.level", depth=depth) as span:
                ops = 0
                expanded = []
                for child in candidates:
                    if child.epoch == epoch:
                        continue
                    ops += 1
                    distance = (
                        (child.bits ^ query) & child.mask
                    ).bit_count()
                    if distance <= threshold:
                        child.epoch = epoch
                        if (
                            distance + length - child.mask.bit_count()
                            <= threshold
                        ):
                            self._collect_leaves(child, epoch, leaves)
                        else:
                            expanded.append(child)
                span.add_ops(ops)
                span.annotate(examined=ops, expanded=len(expanded))
                total_ops += ops
            depth += 1
        record_span("h_search.buffer", 0.0, ops=len(self._buffer))
        self.last_search_ops = total_ops + len(self._buffer)
        return leaves

    @staticmethod
    def _collect_leaves(
        root: _DhaNode, epoch: int, leaves: list[_DhaNode]
    ) -> None:
        """Append every leaf under ``root``, stamping epochs (no XORs)."""
        stack = [root]
        while stack:
            node = stack.pop()
            if not node.children:
                leaves.append(node)
                continue
            for child in node.children:
                if child.epoch != epoch:
                    child.epoch = epoch
                    stack.append(child)

    def trace_search(
        self, query: int, threshold: int
    ) -> list["SearchStep"]:
        """H-Search with a step-by-step trace (the paper's Table 3).

        Returns one :class:`SearchStep` per node examination in BFS
        order, recording the node's pattern, its partial distance and
        whether it was expanded, pruned, or reported as a qualifying
        leaf.  Slower than :meth:`search`; intended for teaching,
        debugging and tests.
        """
        self._check_query(query, threshold)
        steps: list[SearchStep] = []
        queue: list[_DhaNode] = []
        seen: set[int] = set()
        for node in self._top:
            distance = node.pattern.distance(query)
            qualified = distance <= threshold
            steps.append(
                SearchStep(str(node.pattern), distance, 0,
                           _step_action(node, qualified))
            )
            if qualified:
                seen.add(id(node))
                queue.append(node)
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            if node.is_leaf:
                continue
            depth = _node_depth(node)
            for child in node.children:
                if id(child) in seen:
                    continue
                distance = child.pattern.distance(query)
                qualified = distance <= threshold
                steps.append(
                    SearchStep(str(child.pattern), distance, depth + 1,
                               _step_action(child, qualified))
                )
                if qualified:
                    seen.add(id(child))
                    queue.append(child)
        return steps

    def search(self, query: int, threshold: int) -> list[int]:
        if not self._keep_ids:
            raise IndexStateError(
                "index built with keep_ids=False; use search_codes()"
            )
        self._check_query(query, threshold)
        with trace_span("h_search", engine="nodes", threshold=threshold):
            results: list[int] = []
            for leaf in self._search_nodes(query, threshold):
                results.extend(leaf.ids)
            for code, tuple_id in self._buffer:
                if (code ^ query).bit_count() <= threshold:
                    results.append(tuple_id)
        note_search("nodes", self.last_search_ops)
        return results

    def count_within(self, query: int, threshold: int) -> int:
        """Number of tuples within ``threshold`` of ``query``.

        Cheaper than ``len(search(...))``: when a node's partial
        distance plus its number of *uncovered* bits is already within
        the threshold, every descendant qualifies regardless of its
        free bits, so the node's frequency counter (maintained by
        build/insert/delete) is added without descending — the payoff
        of Algorithm 1's per-node frequencies.
        """
        self._check_query(query, threshold)
        length = self._code_length
        count = sum(
            1
            for code, _ in self._buffer
            if (code ^ query).bit_count() <= threshold
        )
        stack = list(self._top)
        DynamicHAIndex._search_epoch += 1
        epoch = DynamicHAIndex._search_epoch
        for node in stack:
            node.epoch = epoch
        while stack:
            node = stack.pop()
            mask = node.mask
            distance = ((node.bits ^ query) & mask).bit_count()
            if distance > threshold:
                continue
            uncovered = length - mask.bit_count()
            if distance + uncovered <= threshold:
                # Even if every free bit differs, the subtree qualifies.
                count += node.frequency
                continue
            if not node.children:
                count += node.frequency
                continue
            for child in node.children:
                if child.epoch != epoch:
                    child.epoch = epoch
                    stack.append(child)
        return count

    def contains_within(self, query: int, threshold: int) -> bool:
        """True iff any indexed code lies within ``threshold``.

        Early-exits on the first qualifying leaf — the existence probe
        behind the similarity semi-join (``hamming_intersect``), which
        never needs the full match set.
        """
        self._check_query(query, threshold)
        for code, _ in self._buffer:
            if (code ^ query).bit_count() <= threshold:
                return True
        DynamicHAIndex._search_epoch += 1
        epoch = DynamicHAIndex._search_epoch
        queue: list[_DhaNode] = []
        for node in self._top:
            if ((node.bits ^ query) & node.mask).bit_count() <= threshold:
                if node.is_leaf:
                    return True
                node.epoch = epoch
                queue.append(node)
        head = 0
        while head < len(queue):
            node = queue[head]
            head += 1
            for child in node.children:
                if child.epoch != epoch and (
                    (child.bits ^ query) & child.mask
                ).bit_count() <= threshold:
                    if not child.children:
                        return True
                    child.epoch = epoch
                    queue.append(child)
        return False

    def search_codes(self, query: int, threshold: int) -> list[int]:
        """Distinct qualifying codes (Option B of the MapReduce join)."""
        self._check_query(query, threshold)
        with trace_span("h_search", engine="nodes", threshold=threshold):
            codes = [
                leaf.bits for leaf in self._search_nodes(query, threshold)
            ]
            buffered = {
                code
                for code, _ in self._buffer
                if (code ^ query).bit_count() <= threshold
            }
            codes.extend(buffered - set(codes))
        note_search("nodes", self.last_search_ops)
        return codes

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        """(tuple id, exact distance) pairs; used by the kNN front-end."""
        if not self._keep_ids:
            raise IndexStateError(
                "index built with keep_ids=False; use search_codes()"
            )
        self._check_query(query, threshold)
        with trace_span("h_search", engine="nodes", threshold=threshold):
            results = []
            for leaf in self._search_nodes(query, threshold):
                distance = (leaf.bits ^ query).bit_count()
                results.extend(
                    (tuple_id, distance) for tuple_id in leaf.ids
                )
            for code, tuple_id in self._buffer:
                distance = (code ^ query).bit_count()
                if distance <= threshold:
                    results.append((tuple_id, distance))
        note_search("nodes", self.last_search_ops)
        return results

    # -- compiled query plane (FlatHAIndex) ------------------------------------

    def compile(self, force: bool = False):
        """The flat, vectorized query kernel for this index state.

        Flattens the pattern tree into the array layout of
        :class:`~repro.core.flat_ha.FlatHAIndex` and caches the result
        keyed by :attr:`mutation_count`: any H-Insert/H-Delete (and any
        rebuild, including buffer merges) invalidates the cache, so a
        stale kernel is never consulted.  ``force=True`` recompiles
        unconditionally.
        """
        from repro.core.flat_ha import FlatHAIndex

        return self._compile_plane(FlatHAIndex, "_compiled", force)

    def compile_native(self, force: bool = False):
        """The native-executed query kernel for this index state.

        Same flattening and caching as :meth:`compile`, but the result
        is a :class:`~repro.core.native_ha.NativeHAIndex`, whose sweeps
        run through the tiered compiled backends
        (:mod:`repro.core.native`) with the numpy path as automatic
        fallback.  Cached independently of the flat kernel.
        """
        from repro.core.native_ha import NativeHAIndex

        return self._compile_plane(NativeHAIndex, "_compiled_native", force)

    def _compile_plane(self, kernel_cls, cache_attr: str, force: bool):
        """Shared compile cache for the flat and native planes.

        Keyed by ``mutation_count``: any H-Insert/H-Delete (and any
        rebuild, including buffer merges) invalidates the cache.  When
        only the insert buffer changed since the cached compile, the
        flattened tree arrays are reused and just the buffer is
        re-snapshotted — the cheap path that keeps batched serving
        viable under buffered-write traffic.
        """
        cached = getattr(self, cache_attr, None)
        if not force and cached is not None:
            if getattr(self, cache_attr + "_mutations", -1) == (
                self.mutation_count
            ):
                return cached
            if getattr(self, cache_attr + "_tree_version", -1) == (
                self._tree_version
            ):
                compiled = kernel_cls.rebuffered(cached, self)
                setattr(self, cache_attr, compiled)
                setattr(
                    self, cache_attr + "_mutations", self.mutation_count
                )
                return compiled
        compiled = kernel_cls(self)
        setattr(self, cache_attr, compiled)
        setattr(self, cache_attr + "_mutations", self.mutation_count)
        setattr(self, cache_attr + "_tree_version", self._tree_version)
        return compiled

    def search_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        """Vectorized H-Search for a whole query batch.

        Compiles (or reuses) the flat kernel and runs one shared
        frontier sweep; each returned id list equals the corresponding
        ``search(query, threshold)`` as a multiset.
        """
        return self.compile().search_batch(queries, threshold)

    def search_batch_arrays(self, queries: Sequence[int], threshold: int):
        """Batched H-Search returning per-query ``int64`` id arrays.

        The scatter-gather coordinator's fast path: shard results stay
        numpy until the cross-shard merge, avoiding a per-shard
        array→list→array round trip.
        """
        return self.compile().search_batch_arrays(queries, threshold)

    def search_codes_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        """Batched :meth:`search_codes` through the flat kernel."""
        return self.compile().search_codes_batch(queries, threshold)

    # -- maintenance (Section 4.5) --------------------------------------------

    def insert(self, code: int, tuple_id: int) -> None:
        """Insert one tuple.

        A code already present joins its leaf directly (frequencies bumped
        along the path); a new code goes to the temporary buffer, and the
        buffer is merged with an H-Build pass once it reaches its maximum
        size — the paper's buffered-insert strategy.
        """
        self._check_query(code, 0)
        if self._frozen:
            raise IndexStateError("merged global HA-Index is read-only")
        if not self._keep_ids:
            raise IndexStateError(
                "cannot insert into a leaf-less (keep_ids=False) index"
            )
        self._note_mutation()
        leaf = self._leaf_by_code.get(code)
        if leaf is not None:
            self._tree_version += 1
            leaf.ids.append(tuple_id)
            self._size += 1
            node: _DhaNode | None = leaf
            while node is not None:
                node.frequency += 1
                node = node.parent
            return
        self._buffer.append((code, tuple_id))
        self._size += 1
        if len(self._buffer) >= self._rebuild_buffer:
            self._merge_buffer()

    def _merge_buffer(self) -> None:
        grouped: dict[int, list[int]] = {
            code: list(leaf.ids) for code, leaf in self._leaf_by_code.items()
        }
        for code, tuple_id in self._buffer:
            grouped.setdefault(code, []).append(tuple_id)
        self._rebuild(grouped)

    def flush(self) -> None:
        """Force the buffered inserts into the index structure."""
        if self._buffer:
            self._merge_buffer()

    def delete(self, code: int, tuple_id: int) -> None:
        """H-Delete (Algorithm 2): remove a tuple, pruning empty nodes."""
        self._check_query(code, 0)
        if self._frozen:
            raise IndexStateError("merged global HA-Index is read-only")
        if not self._keep_ids:
            raise IndexStateError(
                "cannot delete from a leaf-less (keep_ids=False) index"
            )
        leaf = self._leaf_by_code.get(code)
        if leaf is not None and tuple_id in leaf.ids:
            leaf.ids.remove(tuple_id)
            self._size -= 1
            self._note_mutation()
            self._tree_version += 1
            self._decrement_path(leaf, code)
            return
        for position, (buffered_code, buffered_id) in enumerate(self._buffer):
            if buffered_code == code and buffered_id == tuple_id:
                del self._buffer[position]
                self._size -= 1
                self._note_mutation()
                return
        raise IndexStateError(
            f"tuple {tuple_id} with code {code:#x} not present"
        )

    def _decrement_path(self, leaf: _DhaNode, code: int) -> None:
        node: _DhaNode | None = leaf
        while node is not None:
            node.frequency -= 1
            parent = node.parent
            if node.frequency == 0:
                if parent is not None:
                    parent.children.remove(node)
                elif node in self._top:
                    self._top.remove(node)
                if node is leaf:
                    del self._leaf_by_code[code]
            node = parent

    # -- distributed support (Section 5.2) ---------------------------------------

    @classmethod
    def merge(cls, indexes: Sequence["DynamicHAIndex"]) -> "DynamicHAIndex":
        """Merge local HA-Indexes into one global index.

        Implements the paper's post-processing step: "non-leaf nodes with
        the same FLSSeq from the different local HA-Indexes are merged
        into one node, and the corresponding edges between the index
        nodes are relinked."  Top-level nodes with identical patterns are
        consolidated (children relinked, frequencies summed); equal leaf
        codes merge their id lists.

        The merged index answers :meth:`search` / :meth:`search_codes`
        exactly.  It is read-only: insert and delete raise, because a
        deep subtree may still be shared with a local index.
        """
        if not indexes:
            raise InvalidParameterError("merge of no indexes")
        lengths = {index.code_length for index in indexes}
        if len(lengths) != 1:
            raise IndexStateError(
                f"cannot merge indexes of code lengths {sorted(lengths)}"
            )
        first = indexes[0]
        merged = cls(
            first.code_length,
            window=first.window,
            max_depth=first.max_depth,
            keep_ids=all(index.keeps_ids for index in indexes),
        )
        merged._frozen = True
        by_pattern: dict[MaskedPattern, _DhaNode] = {}
        for index in indexes:
            if index._buffer:
                index.flush()
            for node in index._top:
                merged._adopt_top_node(node, by_pattern)
            merged._size += index._size
        return merged

    def _adopt_top_node(
        self, node: _DhaNode, by_pattern: dict[MaskedPattern, _DhaNode]
    ) -> None:
        existing = by_pattern.get(node.pattern)
        if existing is None:
            by_pattern[node.pattern] = node
            self._top.append(node)
            self._register_leaves(node)
            return
        if existing.is_leaf and node.is_leaf:
            existing.ids.extend(node.ids)
            existing.frequency += node.frequency
            return
        for child in node.children:
            child.parent = existing
            existing.children.append(child)
        existing.frequency += node.frequency
        existing.ids.extend(node.ids)
        self._register_leaves(node)

    def _register_leaves(self, root: _DhaNode) -> None:
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                code = node.pattern.bits
                known = self._leaf_by_code.get(code)
                if known is None:
                    self._leaf_by_code[code] = node
                elif known is not node:
                    # Same code under two local subtrees: fold the ids
                    # into the registered leaf so searches and
                    # ids_for_code see each tuple exactly once, moving
                    # the frequency along both ancestor chains so
                    # count_within stays exact.
                    known.ids.extend(node.ids)
                    node.ids = []
                    moved = node.frequency
                    node.frequency = 0
                    ancestor = node.parent
                    while ancestor is not None:
                        ancestor.frequency -= moved
                        ancestor = ancestor.parent
                    known.frequency += moved
                    ancestor = known.parent
                    while ancestor is not None:
                        ancestor.frequency += moved
                        ancestor = ancestor.parent
                continue
            stack.extend(node.children)

    def ids_for_code(self, code: int) -> list[int]:
        """Tuple ids stored under an exact code (empty when absent)."""
        leaf = self._leaf_by_code.get(code)
        ids = list(leaf.ids) if leaf is not None else []
        ids.extend(
            tuple_id for buffered, tuple_id in self._buffer if buffered == code
        )
        return ids

    def code_id_pairs(self) -> Iterable[tuple[int, int]]:
        """Every stored (code, tuple id) pair, leaves then buffer."""
        for code, leaf in self._leaf_by_code.items():
            for tuple_id in leaf.ids:
                yield code, tuple_id
        yield from self._buffer

    def strip_ids(self) -> "DynamicHAIndex":
        """A deep copy without leaf id payloads (Option B broadcast).

        The copy keeps the full pattern structure and the distinct leaf
        codes, so :meth:`search_codes` stays exact, but drops the
        code-to-tuple-id hash tables whose storage dominates for large R
        (Section 5.3, Option B).
        """
        clone: DynamicHAIndex = pickle.loads(pickle.dumps(self))
        clone._keep_ids = False
        clone._buffer = []
        stack = list(clone._top)
        seen: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            node.ids = []
            stack.extend(node.children)
        return clone

    # -- serialization -----------------------------------------------------------

    _FILE_MAGIC = b"HADX"
    _FILE_VERSION = 1

    def save(self, path) -> None:
        """Persist the index to ``path`` (magic + version + payload).

        The on-disk payload is the compact wire format of
        :meth:`__getstate__`, so a saved global index costs about what
        broadcasting it does.
        """
        with open(path, "wb") as stream:
            stream.write(self._FILE_MAGIC)
            stream.write(bytes([self._FILE_VERSION]))
            pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def load(cls, path) -> "DynamicHAIndex":
        """Load an index persisted by :meth:`save`; validates the header.

        Foreign, truncated, or otherwise corrupt files raise
        :class:`~repro.core.errors.IndexStateError` instead of leaking
        raw :mod:`pickle` errors.

        .. warning::
            The payload is a pickle, so ``load`` must only be pointed
            at **trusted** files (ones this process or its deployment
            wrote via :meth:`save`) — unpickling attacker-controlled
            bytes executes arbitrary code.  For an untrusted-input-safe
            on-disk format use :class:`repro.store.DurableIndexStore`,
            whose snapshots are validated numpy arrays, not pickles.
        """
        with open(path, "rb") as stream:
            magic = stream.read(len(cls._FILE_MAGIC))
            if magic != cls._FILE_MAGIC:
                raise IndexStateError(
                    f"{path!s} is not a saved HA-Index (bad magic)"
                )
            version = stream.read(1)
            if not version or version[0] != cls._FILE_VERSION:
                raise IndexStateError(
                    f"unsupported HA-Index file version in {path!s}"
                )
            try:
                index = pickle.load(stream)
            except Exception as error:
                raise IndexStateError(
                    f"truncated or corrupt HA-Index file {path!s}: {error}"
                ) from error
        if not isinstance(index, cls):
            raise IndexStateError(
                f"{path!s} does not contain a {cls.__name__}"
            )
        return index

    def __getstate__(self) -> dict:
        """Compact pickling: flat node arrays instead of an object graph.

        The broadcast cost of the global index (Section 5.4) is measured
        from its pickled size, so the wire format stores each node as
        ``(bits, mask, child slots, ids, frequency)`` — a few small ints
        per internal node, matching the paper's observation that "the
        internal nodes of the HA-Index ... introduce low overhead to
        broadcast an HA-Index to each server".
        """
        order: list[_DhaNode] = []
        slot_of: dict[int, int] = {}
        stack = list(self._top)
        while stack:
            node = stack.pop()
            if id(node) in slot_of:
                continue
            slot_of[id(node)] = len(order)
            order.append(node)
            stack.extend(node.children)
        encoded = [
            (
                node.pattern.bits,
                node.pattern.mask,
                [slot_of[id(child)] for child in node.children],
                node.ids,
                node.frequency,
            )
            for node in order
        ]
        return {
            "code_length": self._code_length,
            "window": self._window,
            "max_depth": self._max_depth,
            "rebuild_buffer": self._rebuild_buffer,
            "keep_ids": self._keep_ids,
            "gray_order": self._gray_order,
            "frozen": self._frozen,
            "size": self._size,
            "buffer": self._buffer,
            "top": [slot_of[id(node)] for node in self._top],
            "nodes": encoded,
        }

    def __setstate__(self, state: dict) -> None:
        self._code_length = state["code_length"]
        self._mutations = 0
        self.last_search_ops = 0
        self._compiled = None
        self._compiled_mutations = -1
        self._compiled_tree_version = -1
        self._compiled_native = None
        self._compiled_native_mutations = -1
        self._compiled_native_tree_version = -1
        self._tree_version = 0
        self._window = state["window"]
        self._max_depth = state["max_depth"]
        self._rebuild_buffer = state["rebuild_buffer"]
        self._keep_ids = state["keep_ids"]
        self._gray_order = state.get("gray_order", True)
        self._frozen = state["frozen"]
        self._size = state["size"]
        self._buffer = list(state["buffer"])
        nodes = [
            _DhaNode(MaskedPattern(bits, mask, self._code_length))
            for bits, mask, _, _, _ in state["nodes"]
        ]
        self._leaf_by_code = {}
        for node, (_, _, child_slots, ids, frequency) in zip(
            nodes, state["nodes"]
        ):
            node.ids = list(ids)
            node.frequency = frequency
            node.children = [nodes[slot] for slot in child_slots]
            for child in node.children:
                child.parent = node
            if not node.children and node.pattern.is_complete:
                code = node.pattern.bits
                known = self._leaf_by_code.get(code)
                # Prefer the leaf carrying ids (merged indexes may hold an
                # emptied duplicate for the same code).
                if known is None or (not known.ids and node.ids):
                    self._leaf_by_code[code] = node
        self._top = [nodes[slot] for slot in state["top"]]

    # -- accounting ------------------------------------------------------------

    def stats(self, include_leaves: bool = True) -> IndexStats:
        """Structural size; ``include_leaves=False`` counts internal
        pattern nodes only (the paper's internal-only memory figure and
        the Option B broadcast payload)."""
        nodes = 0
        edges = 0
        entries = 0
        code_bits = 0
        stack = list(self._top)
        visited: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            if node.is_leaf and not include_leaves:
                continue
            nodes += 1
            if node.is_leaf:
                entries += len(node.ids)
                code_bits += self._code_length
            else:
                edges += len(node.children)
                code_bits += node.pattern.effective_bits
                stack.extend(node.children)
        entries += len(self._buffer) if include_leaves else 0
        code_bits += (
            len(self._buffer) * self._code_length if include_leaves else 0
        )
        return IndexStats(nodes, edges, entries, code_bits)

    # -- introspection helpers (tests, benches) ---------------------------------

    def level_sizes(self) -> list[int]:
        """Node counts per depth (0 = top), for structural assertions."""
        sizes: list[int] = []
        frontier = list(self._top)
        visited: set[int] = set()
        while frontier:
            fresh = [n for n in frontier if id(n) not in visited]
            visited.update(id(n) for n in fresh)
            if not fresh:
                break
            sizes.append(len(fresh))
            frontier = [
                child for node in fresh for child in node.children
            ]
        return sizes

    def check_invariants(self) -> None:
        """Validate structural invariants; raises on violation.

        * every parent pattern generalizes each child's pattern,
        * every node's frequency equals the tuples beneath it,
        * every leaf pattern is a complete code registered in the
          code hash table.
        """
        stack = list(self._top)
        visited: set[int] = set()
        while stack:
            node = stack.pop()
            if id(node) in visited:
                continue
            visited.add(id(node))
            if node.is_leaf:
                if not node.pattern.is_complete:
                    raise IndexStateError("leaf with incomplete pattern")
                registered = self._leaf_by_code.get(node.pattern.bits)
                if registered is not node:
                    raise IndexStateError("leaf not registered by code")
                if self._keep_ids and node.frequency != len(node.ids):
                    raise IndexStateError("leaf frequency != id count")
                continue
            total = 0
            for child in node.children:
                if not node.pattern.generalizes(child.pattern):
                    raise IndexStateError(
                        "parent pattern does not generalize child"
                    )
                if child.parent is not node:
                    raise IndexStateError("broken parent pointer")
                total += child.frequency
                stack.append(child)
            if total != node.frequency:
                raise IndexStateError("internal frequency mismatch")
