"""Similarity-aware relational operators over binary codes.

The paper's concluding remark points at extending Hamming-distance
similarity to relational operators, citing the similarity-aware
intersection operator of Marri et al. (SISAP 2014).  This module
implements that extension family on top of the HA-Index:

* :func:`hamming_intersect` — tuples of ``R`` that have at least one
  ``S`` tuple within the threshold (similarity semi-join / intersection);
* :func:`hamming_difference` — tuples of ``R`` with **no** ``S`` tuple
  within the threshold (similarity anti-join);
* :func:`hamming_distinct` — a similarity-aware duplicate elimination:
  greedily keeps a tuple only when no already-kept tuple is within the
  threshold (the classic near-duplicate "canonical set").

All three build one Dynamic HA-Index over the probed side and run
H-Search per outer tuple, so they inherit the index's exactness.
"""

from __future__ import annotations

from typing import Callable

from repro.core.bitvector import CodeSet
from repro.core.dynamic_ha import DynamicHAIndex
from repro.core.errors import InvalidParameterError
from repro.core.index_base import HammingIndex


def _build_index(
    codes: CodeSet,
    index_builder: Callable[[CodeSet], HammingIndex] | None,
) -> HammingIndex:
    if index_builder is None:
        return DynamicHAIndex.build(codes)
    return index_builder(codes)


def hamming_intersect(
    left: CodeSet,
    right: CodeSet,
    threshold: int,
    index_builder: Callable[[CodeSet], HammingIndex] | None = None,
) -> list[int]:
    """Ids of ``left`` tuples with a similar tuple in ``right``.

    The similarity-aware intersection: ``t in R`` qualifies iff
    ``h-select(t, S)`` is non-empty.  Exact-duplicate semantics fall out
    at ``threshold = 0``.
    """
    if left.length != right.length:
        raise InvalidParameterError(
            f"code lengths differ: {left.length} vs {right.length}"
        )
    index = _build_index(right, index_builder)
    exists = _existence_probe(index)
    return [
        left_id
        for code, left_id in zip(left.codes, left.ids)
        if exists(code, threshold)
    ]


def _existence_probe(index: HammingIndex):
    """Early-exit membership test when the index supports it."""
    probe = getattr(index, "contains_within", None)
    if probe is not None:
        return probe
    return lambda code, threshold: bool(index.search(code, threshold))


def hamming_difference(
    left: CodeSet,
    right: CodeSet,
    threshold: int,
    index_builder: Callable[[CodeSet], HammingIndex] | None = None,
) -> list[int]:
    """Ids of ``left`` tuples with **no** similar tuple in ``right``.

    The similarity anti-join; complements :func:`hamming_intersect`, so
    the two partition ``left`` for any threshold.
    """
    if left.length != right.length:
        raise InvalidParameterError(
            f"code lengths differ: {left.length} vs {right.length}"
        )
    index = _build_index(right, index_builder)
    exists = _existence_probe(index)
    return [
        left_id
        for code, left_id in zip(left.codes, left.ids)
        if not exists(code, threshold)
    ]


def hamming_distinct(codes: CodeSet, threshold: int) -> list[int]:
    """Similarity-aware DISTINCT: a maximal near-duplicate-free prefix.

    Scans tuples in id order and keeps a tuple only when no previously
    kept tuple lies within the threshold, yielding a canonical
    representative set (every dropped tuple is within the threshold of
    some kept one).  ``threshold = 0`` is plain duplicate elimination.
    """
    if threshold < 0:
        raise InvalidParameterError("threshold must be non-negative")
    kept = DynamicHAIndex(codes.length)
    kept_ids: list[int] = []
    for code, tuple_id in zip(codes.codes, codes.ids):
        if kept.search(code, threshold):
            continue
        kept.insert(code, tuple_id)
        kept_ids.append(tuple_id)
    return kept_ids
