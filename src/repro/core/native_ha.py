"""The native (compiled) query plane of the Dynamic HA-Index.

:class:`NativeHAIndex` is a :class:`~repro.core.flat_ha.FlatHAIndex`
whose sweeps run through a compiled backend
(:mod:`repro.core.native`: numba when importable, a cc-built ctypes
kernel otherwise) instead of the vectorized numpy frontier.  The
compiled sweep replays the numpy traversal exactly — same visit order,
same emissions, same distance-computation count — so every query
answers byte-identically to the flat plane and ``last_search_ops``
still sums to the node walk's count.  Only the hot traversal moves to
native code; candidate ranking, buffered-insert comparisons, and code
dedup stay in the shared numpy helpers of the base class.

The plane degrades transparently:

* no working compiled tier (``REPRO_NATIVE=numpy``, no numba, no C
  compiler) → every call runs the inherited numpy sweeps;
* multi-word codes (length > 64) → numpy sweeps (the compiled kernel
  is single-word);
* active tracing → the instrumented numpy sweeps, so per-level
  ``h_search.level`` spans keep their exact op attribution (the same
  arrangement the node walk uses for its traced twin).

Native execution state is created lazily and never pickled: kernels
shipped into process pools (the parallel join path) or restored from
snapshots rebuild their backend state on first query in the receiving
process.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import native
from repro.core.flat_ha import FlatHAIndex
from repro.obs import note_search
from repro.obs.trace import tracing

#: Compiled sweep emission modes (must match the kernel sources).
_MODE_IDS = 0
_MODE_LEAF_POSITIONS = 1


class NativeHAIndex(FlatHAIndex):
    """Flat kernel executed through the tiered native backends."""

    ENGINE_LABEL = "native"

    #: Class-level defaults so clones built via ``__new__`` (pickle,
    #: ``from_state``, ``rebuffered``) lazily create their own state.
    _native_state = None

    @property
    def backend(self) -> str:
        """The tier answering right now: ``numba``, ``cc`` or ``numpy``."""
        state = self._route()
        return state.backend if state is not None else "numpy"

    def _route(self):
        """The native state to sweep with, or ``None`` for numpy.

        Re-resolves the backend on every call so ``force_backend`` /
        ``REPRO_NATIVE`` changes take effect immediately; the state is
        cached per resolved tier (resolution itself is a dict lookup).
        """
        if self._words != 1 or tracing():
            return None
        token = native.active_backend()
        if token == "numpy":
            return None
        state = self._native_state
        if state is None or state.backend != token:
            state = native.make_state(self)
            self._native_state = state
        return state

    def __getstate__(self):
        state = self.__dict__.copy()
        # Backend state holds ctypes pointers / jitted dispatchers;
        # receivers rebuild it lazily on first query.
        state.pop("_native_state", None)
        return state

    # -- single-query entry points ---------------------------------------

    def search(self, query: int, threshold: int) -> list[int]:
        state = self._route()
        if state is None:
            return super().search(query, threshold)
        self._require_ids()
        self._check_query(query, threshold)
        clamped = min(threshold, self._code_length)
        ids, ops = state.sweep(query, clamped, _MODE_IDS)
        self.last_search_ops = ops + len(self._buf_codes)
        results = ids.tolist()
        if self._buf_ids.size:
            near = (
                self._buffer_distances(self._query_words(query))
                <= threshold
            )
            results.extend(self._buf_ids[near].tolist())
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        return results

    def search_codes(self, query: int, threshold: int) -> list[int]:
        state = self._route()
        if state is None:
            return super().search_codes(query, threshold)
        self._check_query(query, threshold)
        clamped = min(threshold, self._code_length)
        positions, ops = state.sweep(query, clamped, _MODE_LEAF_POSITIONS)
        self.last_search_ops = ops + len(self._buf_codes)
        codes = self._codes_from_positions(
            self._query_words(query), positions, threshold
        )
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        return codes

    def search_with_distances(
        self, query: int, threshold: int
    ) -> list[tuple[int, int]]:
        state = self._route()
        if state is None:
            return super().search_with_distances(query, threshold)
        self._require_ids()
        self._check_query(query, threshold)
        clamped = min(threshold, self._code_length)
        positions, ops = state.sweep(query, clamped, _MODE_LEAF_POSITIONS)
        self.last_search_ops = ops + len(self._buf_codes)
        note_search(self.ENGINE_LABEL, self.last_search_ops)
        return self._pairs_from_positions(
            self._query_words(query), positions, threshold
        )

    def count_within(self, query: int, threshold: int) -> int:
        state = self._route()
        if state is None:
            return super().count_within(query, threshold)
        self._check_query(query, threshold)
        count = 0
        if self._buf_ids.size:
            count += int(
                (
                    self._buffer_distances(self._query_words(query))
                    <= threshold
                ).sum()
            )
        return count + state.count(query, min(threshold, self._code_length))

    def contains_within(self, query: int, threshold: int) -> bool:
        state = self._route()
        if state is None:
            return super().contains_within(query, threshold)
        self._check_query(query, threshold)
        if self._buf_ids.size and bool(
            (
                self._buffer_distances(self._query_words(query))
                <= threshold
            ).any()
        ):
            return True
        return state.contains(query, min(threshold, self._code_length))

    # -- batched entry points --------------------------------------------

    def _batch_inputs(self, queries: Sequence[int], threshold: int):
        queries = list(queries)
        for query in queries:
            self._check_query(query, threshold)
        qarr = np.array(queries, dtype=np.uint64)
        return queries, qarr

    def search_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        state = self._route()
        if state is None:
            return super().search_batch(queries, threshold)
        self._require_ids()
        queries, qarr = self._batch_inputs(queries, threshold)
        if not queries:
            return []
        batch = len(queries)
        ids, counts, ops = state.sweep_batch(
            qarr, min(threshold, self._code_length), _MODE_IDS
        )
        self.last_search_ops = ops + len(self._buf_codes) * batch
        chunks = np.split(ids, np.cumsum(counts)[:-1])
        near = self._batch_buffer_matches(qarr.reshape(-1, 1), threshold)
        if near is None:
            results = [chunk.tolist() for chunk in chunks]
        else:
            results = []
            for column, chunk in enumerate(chunks):
                merged = chunk.tolist()
                merged.extend(self._buf_ids[near[:, column]].tolist())
                results.append(merged)
        note_search(self.ENGINE_LABEL, self.last_search_ops, queries=batch)
        return results

    def search_batch_arrays(
        self, queries: Sequence[int], threshold: int
    ) -> list[np.ndarray]:
        state = self._route()
        if state is None:
            return super().search_batch_arrays(queries, threshold)
        self._require_ids()
        queries, qarr = self._batch_inputs(queries, threshold)
        if not queries:
            return []
        batch = len(queries)
        ids, counts, ops = state.sweep_batch(
            qarr, min(threshold, self._code_length), _MODE_IDS
        )
        self.last_search_ops = ops + len(self._buf_codes) * batch
        chunks = np.split(ids, np.cumsum(counts)[:-1])
        near = self._batch_buffer_matches(qarr.reshape(-1, 1), threshold)
        if near is not None:
            chunks = [
                np.concatenate([chunk, self._buf_ids[near[:, column]]])
                for column, chunk in enumerate(chunks)
            ]
        note_search(self.ENGINE_LABEL, self.last_search_ops, queries=batch)
        return chunks

    def search_codes_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[int]]:
        state = self._route()
        if state is None:
            return super().search_codes_batch(queries, threshold)
        queries, qarr = self._batch_inputs(queries, threshold)
        if not queries:
            return []
        batch = len(queries)
        positions, counts, ops = state.sweep_batch(
            qarr, min(threshold, self._code_length), _MODE_LEAF_POSITIONS
        )
        self.last_search_ops = ops + len(self._buf_codes) * batch
        per_query = np.split(positions, np.cumsum(counts)[:-1])
        near = self._batch_buffer_matches(qarr.reshape(-1, 1), threshold)
        note_search(self.ENGINE_LABEL, self.last_search_ops, queries=batch)
        return self._batch_codes_from_positions(per_query, near)

    def search_with_distances_batch(
        self, queries: Sequence[int], threshold: int
    ) -> list[list[tuple[int, int]]]:
        state = self._route()
        if state is None:
            return super().search_with_distances_batch(queries, threshold)
        self._require_ids()
        queries, qarr = self._batch_inputs(queries, threshold)
        if not queries:
            return []
        batch = len(queries)
        positions, counts, ops = state.sweep_batch(
            qarr, min(threshold, self._code_length), _MODE_LEAF_POSITIONS
        )
        self.last_search_ops = ops + len(self._buf_codes) * batch
        position_owners = np.repeat(
            np.arange(batch, dtype=np.int64), counts
        )
        return self._batch_pairs(
            qarr.reshape(-1, 1), positions, position_owners,
            batch, threshold,
        )

    # -- HammingIndex contract -------------------------------------------

    @classmethod
    def build(cls, codes, **params) -> "NativeHAIndex":
        """H-Build a Dynamic HA-Index over ``codes``, native-compiled."""
        from repro.core.dynamic_ha import DynamicHAIndex

        return DynamicHAIndex.build(codes, **params).compile_native()
